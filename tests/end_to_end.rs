//! Cross-crate integration: workloads → buffer pool → BP-wrapped
//! policies → metrics, all running together under real concurrency.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_bufferpool::{
    BufferPool, ClockManager, CoarseManager, ReplacementManager, SimDisk, WrappedManager,
};
use bpw_core::WrapperConfig;
use bpw_replacement::{PolicyKind, ReplacementPolicy};
use bpw_workloads::{Workload, WorkloadKind};

/// Drive a pool with a real workload from several threads; return
/// (hits, misses).
fn drive<M: ReplacementManager>(
    pool: &BufferPool<M>,
    workload: &dyn Workload,
    threads: usize,
    txns: usize,
) -> (u64, u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = &pool;
            let mut stream = workload.stream(t, 99);
            s.spawn(move || {
                let mut session = pool.session();
                let mut buf = Vec::new();
                for _ in 0..txns {
                    buf.clear();
                    stream.next_transaction(&mut buf);
                    for &page in &buf {
                        let pinned = session.fetch(page).expect("storage I/O failed");
                        // Verify the substrate delivered the right page.
                        pinned.read(|bytes| {
                            assert_eq!(
                                u64::from_le_bytes(bytes[..8].try_into().unwrap()),
                                page,
                                "pool returned wrong content"
                            );
                        });
                    }
                }
            });
        }
    });
    (
        pool.stats().hits.load(Ordering::Relaxed),
        pool.stats().misses.load(Ordering::Relaxed),
    )
}

#[test]
fn every_workload_through_wrapped_pool() {
    for kind in WorkloadKind::ALL {
        let workload = kind.build();
        let frames = (workload.page_universe() as usize / 8).clamp(256, 20_000);
        let pool = BufferPool::new(
            frames,
            64,
            WrappedManager::new(PolicyKind::TwoQ.build(frames), WrapperConfig::default()),
            Arc::new(SimDisk::instant()),
        );
        let (hits, misses) = drive(&pool, &*workload, 3, 60);
        assert!(hits + misses > 0, "{kind}: no accesses");
        assert!(hits > 0, "{kind}: no hits at 12.5% buffer");
        pool.manager()
            .wrapper()
            .with_locked(|p| p.check_invariants());
        // No access may be lost by the wrapper.
        let c = pool.manager().wrapper().counters();
        assert_eq!(
            c.accesses.get(),
            hits + misses,
            "{kind}: wrapper access count"
        );
    }
}

#[test]
fn every_policy_survives_concurrent_pool_traffic() {
    for kind in PolicyKind::ALL {
        let frames = 128;
        let pool = BufferPool::new(
            frames,
            64,
            WrappedManager::new(kind.build(frames), WrapperConfig::default()),
            Arc::new(SimDisk::instant()),
        );
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = &pool;
                s.spawn(move || {
                    let mut session = pool.session();
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..2_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let page = x % 300; // > frames: constant eviction
                        let pinned = session.fetch(page).expect("storage I/O failed");
                        pinned.read(|bytes| {
                            assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), page);
                        });
                    }
                });
            }
        });
        pool.manager().wrapper().with_locked(|p| {
            p.check_invariants();
            assert_eq!(p.resident_count(), frames, "{kind}");
        });
        assert_eq!(pool.resident_count(), frames, "{kind}");
    }
}

#[test]
fn three_manager_styles_agree_on_content() {
    // Same workload through all three synchronization schemes: identical
    // page content, sensible hit ratios.
    let workload = WorkloadKind::Dbt1.build();
    let frames = 2048;

    let coarse = BufferPool::new(
        frames,
        64,
        CoarseManager::new(PolicyKind::TwoQ.build(frames)),
        Arc::new(SimDisk::instant()),
    );
    let clock = BufferPool::new(
        frames,
        64,
        ClockManager::new(frames),
        Arc::new(SimDisk::instant()),
    );
    let wrapped = BufferPool::new(
        frames,
        64,
        WrappedManager::new(PolicyKind::TwoQ.build(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );

    let (h1, m1) = drive(&coarse, &*workload, 2, 80);
    let (h2, m2) = drive(&clock, &*workload, 2, 80);
    let (h3, m3) = drive(&wrapped, &*workload, 2, 80);
    assert_eq!(h1 + m1, h2 + m2);
    assert_eq!(h1 + m1, h3 + m3);
    let hr = |h: u64, m: u64| h as f64 / (h + m) as f64;
    // All three must achieve real caching; 2Q variants should be close.
    assert!(hr(h1, m1) > 0.5 && hr(h2, m2) > 0.5 && hr(h3, m3) > 0.5);
    assert!(
        (hr(h1, m1) - hr(h3, m3)).abs() < 0.05,
        "wrapped 2Q hit ratio should track coarse 2Q: {} vs {}",
        hr(h1, m1),
        hr(h3, m3)
    );
    // Lock economics: wrapped acquires far less often than coarse.
    let a_coarse = coarse.manager().lock_snapshot().acquisitions;
    let a_wrapped = wrapped.manager().lock_snapshot().acquisitions;
    assert!(
        a_wrapped * 4 < a_coarse,
        "wrapped ({a_wrapped}) must lock far less than coarse ({a_coarse})"
    );
}

#[test]
fn invalidation_under_load() {
    let frames = 64;
    let pool = BufferPool::new(
        frames,
        64,
        WrappedManager::new(PolicyKind::Lirs.build(frames), WrapperConfig::default()),
        Arc::new(SimDisk::instant()),
    );
    std::thread::scope(|s| {
        // Readers.
        for t in 0..2u64 {
            let pool = &pool;
            s.spawn(move || {
                let mut session = pool.session();
                let mut x = t + 1;
                for _ in 0..3_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let page = x % 128;
                    drop(session.fetch(page).expect("storage I/O failed"));
                }
            });
        }
        // Invalidator (e.g. relation truncation racing queries).
        let pool2 = &pool;
        s.spawn(move || {
            for i in 0..600u64 {
                pool2.invalidate(i % 128);
                std::hint::spin_loop();
            }
        });
    });
    pool.manager()
        .wrapper()
        .with_locked(|p| p.check_invariants());
}
