//! The paper's §IV-F guarantee — "our techniques do not hurt hit ratios"
//! — verified end-to-end: on real workload traces, a BP-wrapped policy's
//! hit ratio equals the bare policy's exactly (single stream), and the
//! distributed-lock alternative from §V-A *does* hurt, which is why the
//! paper rejects it.

use bpw_core::{Combining, PartitionedCache, WrappedCache, WrapperConfig};
use bpw_replacement::{CacheSim, PolicyKind};
use bpw_workloads::{Trace, WorkloadKind};

fn workload_trace(kind: WorkloadKind, txns: usize) -> Vec<u64> {
    let w = kind.build();
    let traces = Trace::capture_per_thread(&*w, 4, txns, 0xFEED);
    let per_thread: Vec<Vec<&[u64]>> = traces.iter().map(|t| t.transactions().collect()).collect();
    let mut flat = Vec::new();
    for round in 0..txns {
        for th in &per_thread {
            if let Some(t) = th.get(round) {
                flat.extend_from_slice(t);
            }
        }
    }
    flat
}

#[test]
fn wrapped_hit_ratio_is_identical_on_paper_workloads() {
    for kind in WorkloadKind::ALL {
        let trace = workload_trace(kind, 150);
        for policy in [PolicyKind::TwoQ, PolicyKind::Lirs, PolicyKind::Mq] {
            // Neutrality must hold whatever the commit path: plain
            // try-lock batching and full flat combining alike.
            for combining in [Combining::Off, Combining::Flat] {
                let cfg = WrapperConfig {
                    combining,
                    ..WrapperConfig::default()
                };
                let frames = 1024;
                let mut bare = CacheSim::new(policy.build(frames));
                let mut wrapped = WrappedCache::new(policy.build(frames), cfg);
                let a = bare.run(trace.iter().copied());
                let b = wrapped.run(trace.iter().copied());
                assert_eq!(
                    a, b,
                    "{kind}/{policy}/{combining:?}: wrapped hit/miss stats must be identical"
                );
            }
        }
    }
}

#[test]
fn distributed_locks_hurt_hit_ratio() {
    // §V-A: partitioning the buffer localizes history and divides
    // capacity. The crisp failure mode: a working set that exactly fits
    // the global cache. Hashing spreads its pages unevenly over the
    // partitions, so some partitions overflow and thrash while others
    // sit half empty — capacity that a global policy would have used.
    let frames = 1024usize;
    let trace: Vec<u64> = (0..frames as u64).cycle().take(frames * 10).collect();

    let mut global = CacheSim::new(PolicyKind::TwoQ.build(frames));
    let global_hr = global.run(trace.iter().copied()).hit_ratio();

    let partitioned = PartitionedCache::new(16, frames / 16, bpw_replacement::TwoQ::new);
    for &p in &trace {
        partitioned.access(p);
    }
    let part_hr = partitioned.stats().hit_ratio();
    assert!(
        global_hr > 0.85,
        "global cache must hold an exact-fit working set ({global_hr:.4})"
    );
    assert!(
        part_hr < global_hr - 0.05,
        "partitioned ({part_hr:.4}) should clearly trail the global cache ({global_hr:.4})"
    );
}

#[test]
fn order_preservation_across_batch_boundaries() {
    // §III-A: "the order in which the batched operations are executed
    // does not change". Check with an order-sensitive trace: the state
    // after wrapped execution must equal the bare policy's exactly
    // (same resident set), not merely the same hit count.
    let trace = workload_trace(WorkloadKind::Dbt2, 60);
    let frames = 512;
    for combining in [Combining::Off, Combining::Flat] {
        let cfg = WrapperConfig {
            combining,
            ..WrapperConfig::default()
        };
        let mut bare = CacheSim::new(PolicyKind::Lirs.build(frames));
        let mut wrapped = WrappedCache::new(PolicyKind::Lirs.build(frames), cfg);
        for &p in &trace {
            bare.access(p);
            wrapped.access(p);
        }
        wrapped.flush();
        // Identical resident sets page-for-page.
        for &p in &trace {
            assert_eq!(
                bare.is_resident(p),
                wrapped.is_resident(p),
                "residency diverged for page {p} ({combining:?})"
            );
        }
    }
}
