//! The paper's headline claims, asserted as executable tests against the
//! scaling simulator and the real implementation:
//!
//! 1. "contention on the lock associated with replacement algorithms may
//!    reduce database throughput by nearly two folds in a 16-processor
//!    system" (§I) — equivalently, BP-Wrapper "can increase the
//!    throughput up to two folds compared with the replacement
//!    algorithms with lock contention" (abstract);
//! 2. pgBatPre "demonstrates almost the same scalability as pgClock"
//!    (§IV-D);
//! 3. "improves scalability through reducing lock contention by a factor
//!    from 97 to over 9000" (§IV-D);
//! 4. contention is more intensive on the multi-core PowerEdge than on
//!    the Altix (§IV-D).

use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, RunReport, SimParams, SystemSpec, WorkloadParams};
use bpw_workloads::WorkloadKind;

fn run(hw: HardwareProfile, cpus: usize, kind: SystemKind, wl: WorkloadKind) -> RunReport {
    let mut p = SimParams::new(
        hw,
        cpus,
        SystemSpec::new(kind),
        WorkloadParams::for_kind(wl),
    );
    p.horizon_ms = 500;
    simulate(p)
}

#[test]
fn throughput_gap_is_about_two_fold_or_more() {
    // Claim 1: at 16 processors, the locking system loses roughly half
    // (or more) of the lock-free throughput; BP-Wrapper recovers it.
    for wl in WorkloadKind::ALL {
        let clock = run(HardwareProfile::altix350(), 16, SystemKind::Clock, wl);
        let q = run(
            HardwareProfile::altix350(),
            16,
            SystemKind::LockPerAccess,
            wl,
        );
        let batpre = run(
            HardwareProfile::altix350(),
            16,
            SystemKind::BatchingPrefetching,
            wl,
        );
        assert!(
            q.throughput_tps <= 0.6 * clock.throughput_tps,
            "{wl}: pgQ should lose >= ~2x ({} vs {})",
            q.throughput_tps,
            clock.throughput_tps
        );
        assert!(
            batpre.throughput_tps >= 1.8 * q.throughput_tps,
            "{wl}: BP-Wrapper should recover >= ~2x over pgQ ({} vs {})",
            batpre.throughput_tps,
            q.throughput_tps
        );
    }
}

#[test]
fn batpre_matches_clock_scalability() {
    // Claim 2: pgBatPre's curves overlap pgClock's.
    for wl in WorkloadKind::ALL {
        for cpus in [2, 4, 8, 16] {
            let clock = run(HardwareProfile::altix350(), cpus, SystemKind::Clock, wl);
            let batpre = run(
                HardwareProfile::altix350(),
                cpus,
                SystemKind::BatchingPrefetching,
                wl,
            );
            let ratio = batpre.throughput_tps / clock.throughput_tps;
            assert!(
                ratio > 0.9,
                "{wl}@{cpus}: pgBatPre must track pgClock (ratio {ratio:.3})"
            );
        }
    }
}

#[test]
fn contention_reduced_by_orders_of_magnitude() {
    // Claim 3: a factor of 97 to 9000+ fewer contentions.
    for wl in WorkloadKind::ALL {
        let q = run(
            HardwareProfile::altix350(),
            16,
            SystemKind::LockPerAccess,
            wl,
        );
        let bat = run(HardwareProfile::altix350(), 16, SystemKind::Batching, wl);
        let factor = q.contentions_per_million / bat.contentions_per_million.max(0.1);
        assert!(
            factor >= 97.0,
            "{wl}: contention reduction factor {factor:.0} below the paper's floor of 97"
        );
    }
}

#[test]
fn multicore_contends_harder_than_smp() {
    // Claim 4: at 8 processors, pgQ contends more on the PowerEdge
    // (hardware prefetcher accelerates non-critical code, raising the
    // lock request rate) than on the Altix.
    for wl in WorkloadKind::ALL {
        let altix = run(
            HardwareProfile::altix350(),
            8,
            SystemKind::LockPerAccess,
            wl,
        );
        let pedge = run(
            HardwareProfile::poweredge1900(),
            8,
            SystemKind::LockPerAccess,
            wl,
        );
        assert!(
            pedge.contentions_per_million > altix.contentions_per_million,
            "{wl}: PowerEdge should contend harder ({} vs {})",
            pedge.contentions_per_million,
            altix.contentions_per_million
        );
    }
}

#[test]
fn response_time_inflates_under_contention() {
    // Fig. 6's middle row: pgQ's response times grow with processors
    // while pgClock's stay nearly flat.
    let wl = WorkloadKind::Dbt1;
    let clock_1 = run(HardwareProfile::altix350(), 1, SystemKind::Clock, wl);
    let clock_16 = run(HardwareProfile::altix350(), 16, SystemKind::Clock, wl);
    let q_16 = run(
        HardwareProfile::altix350(),
        16,
        SystemKind::LockPerAccess,
        wl,
    );
    assert!(
        clock_16.avg_response_ms < 1.5 * clock_1.avg_response_ms,
        "pgClock response time should stay nearly flat"
    );
    assert!(
        q_16.avg_response_ms > 2.0 * clock_16.avg_response_ms,
        "pgQ response time must inflate under contention ({} vs {})",
        q_16.avg_response_ms,
        clock_16.avg_response_ms
    );
}
