#!/bin/sh
# Regenerate every table and figure of the paper plus the ablations.
# Text output lands in results/*.txt, CSV series in results/*.csv.
set -e
mkdir -p results
for bin in fig2_batch_amortization fig6_altix_scaling fig7_poweredge_scaling \
           table2_queue_size table3_batch_threshold fig8_overall \
           real_contention ablation_queue_design ablation_adaptive_threshold \
           robustness_sweep; do
    echo "== $bin =="
    cargo run --release -p bpw-bench --bin "$bin" | tee "results/$bin.txt"
done
