//! Trace capture and replay: flatten any workload into a concrete page
//! reference string (per thread), so experiments can re-run the *exact*
//! same accesses across systems — the paper's apples-to-apples setup.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::{TransactionStream, Workload};

/// A captured per-thread trace: page ids plus transaction boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Flattened page accesses.
    pub pages: Vec<u64>,
    /// End offsets (exclusive) of each transaction within `pages`.
    pub txn_ends: Vec<usize>,
}

impl Trace {
    /// Capture `txns` transactions from a stream.
    pub fn capture(stream: &mut dyn TransactionStream, txns: usize) -> Self {
        let mut pages = Vec::new();
        let mut txn_ends = Vec::with_capacity(txns);
        for _ in 0..txns {
            stream.next_transaction(&mut pages);
            txn_ends.push(pages.len());
        }
        Trace { pages, txn_ends }
    }

    /// Capture one trace per thread from a workload.
    pub fn capture_per_thread(
        workload: &dyn Workload,
        threads: usize,
        txns: usize,
        seed: u64,
    ) -> Vec<Trace> {
        (0..threads)
            .map(|t| {
                let mut s = workload.stream(t, seed);
                Trace::capture(&mut *s, txns)
            })
            .collect()
    }

    /// Number of transactions.
    pub fn txn_count(&self) -> usize {
        self.txn_ends.len()
    }

    /// Total page accesses.
    pub fn access_count(&self) -> usize {
        self.pages.len()
    }

    /// Iterate transactions as slices.
    pub fn transactions(&self) -> impl Iterator<Item = &[u64]> + '_ {
        let mut start = 0;
        self.txn_ends.iter().map(move |&end| {
            let t = &self.pages[start..end];
            start = end;
            t
        })
    }

    /// Distinct pages touched (the working-set size).
    pub fn distinct_pages(&self) -> usize {
        let mut v = self.pages.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Serialize to a compact binary file (magic + version + counts +
    /// little-endian u64 arrays), so expensive captures can be re-used
    /// across experiment runs without any serialization dependency.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(Self::MAGIC)?;
        f.write_all(&1u32.to_le_bytes())?;
        f.write_all(&(self.txn_ends.len() as u64).to_le_bytes())?;
        f.write_all(&(self.pages.len() as u64).to_le_bytes())?;
        for &e in &self.txn_ends {
            f.write_all(&(e as u64).to_le_bytes())?;
        }
        for &p in &self.pages {
            f.write_all(&p.to_le_bytes())?;
        }
        f.flush()
    }

    /// Load a trace written by [`save`](Self::save).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut u64buf = [0u8; 8];
        let mut u32buf = [0u8; 4];
        let mut magic = [0u8; 4];
        f.read_exact(&mut magic)?;
        if &magic != Self::MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a BPWT trace file",
            ));
        }
        f.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        f.read_exact(&mut u64buf)?;
        let txns = u64::from_le_bytes(u64buf) as usize;
        f.read_exact(&mut u64buf)?;
        let accesses = u64::from_le_bytes(u64buf) as usize;
        let mut txn_ends = Vec::with_capacity(txns);
        for _ in 0..txns {
            f.read_exact(&mut u64buf)?;
            txn_ends.push(u64::from_le_bytes(u64buf) as usize);
        }
        let mut pages = Vec::with_capacity(accesses);
        for _ in 0..accesses {
            f.read_exact(&mut u64buf)?;
            pages.push(u64::from_le_bytes(u64buf));
        }
        // Structural validation: monotone ends covering all pages.
        let mut prev = 0usize;
        for &e in &txn_ends {
            if e < prev || e > pages.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "corrupt txn boundaries",
                ));
            }
            prev = e;
        }
        if txn_ends.last() != Some(&pages.len()) && !(txn_ends.is_empty() && pages.is_empty()) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trailing pages"));
        }
        Ok(Trace { pages, txn_ends })
    }

    const MAGIC: &'static [u8; 4] = b"BPWT";
}

/// Replay a trace as a `TransactionStream` (wraps around at the end).
pub struct TraceReplay {
    trace: Trace,
    next_txn: usize,
}

impl TraceReplay {
    /// Replay `trace` from the beginning.
    pub fn new(trace: Trace) -> Self {
        assert!(trace.txn_count() > 0, "cannot replay an empty trace");
        TraceReplay { trace, next_txn: 0 }
    }
}

impl TransactionStream for TraceReplay {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        let start = if self.next_txn == 0 {
            0
        } else {
            self.trace.txn_ends[self.next_txn - 1]
        };
        let end = self.trace.txn_ends[self.next_txn];
        out.extend_from_slice(&self.trace.pages[start..end]);
        self.next_txn = (self.next_txn + 1) % self.trace.txn_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SequentialLoop;

    #[test]
    fn capture_and_iterate() {
        let w = SequentialLoop::new(10, 4);
        let mut s = w.stream(0, 0);
        let t = Trace::capture(&mut *s, 3);
        assert_eq!(t.txn_count(), 3);
        assert_eq!(t.access_count(), 12);
        let txns: Vec<&[u64]> = t.transactions().collect();
        assert_eq!(txns.len(), 3);
        assert_eq!(txns[0], &[0, 1, 2, 3]);
        assert_eq!(txns[1], &[4, 5, 6, 7]);
        assert_eq!(t.distinct_pages(), 10); // 12 accesses wrap over 10 pages
    }

    #[test]
    fn replay_matches_capture_and_wraps() {
        let w = SequentialLoop::new(6, 3);
        let mut s = w.stream(0, 0);
        let t = Trace::capture(&mut *s, 2);
        let mut r = TraceReplay::new(t.clone());
        let mut buf = Vec::new();
        r.next_transaction(&mut buf);
        assert_eq!(buf, t.pages[..3].to_vec());
        buf.clear();
        r.next_transaction(&mut buf);
        assert_eq!(buf, t.pages[3..6].to_vec());
        buf.clear();
        r.next_transaction(&mut buf); // wrapped
        assert_eq!(buf, t.pages[..3].to_vec());
    }

    #[test]
    fn save_load_roundtrip() {
        let w = crate::synthetic::ZipfWorkload::new(500, 0.9, 7);
        let mut s = w.stream(0, 123);
        let t = Trace::capture(&mut *s, 20);
        let dir = std::env::temp_dir().join("bpw_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bpwt");
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(t, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("bpw_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bpwt");
        std::fs::write(&path, b"not a trace at all").unwrap();
        assert!(Trace::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_thread_capture_is_independent() {
        let w = crate::synthetic::ZipfWorkload::new(100, 0.9, 5);
        let traces = Trace::capture_per_thread(&w, 3, 10, 77);
        assert_eq!(traces.len(), 3);
        assert_ne!(traces[0], traces[1]);
        for t in &traces {
            assert_eq!(t.txn_count(), 10);
        }
    }
}
