//! Flattening adapter from transaction streams to per-page iteration.
//!
//! The load generator in `bpw-server` issues one request per page
//! access, so it wants an endless page-at-a-time view of a workload
//! rather than the transaction bursts [`TransactionStream`] produces.
//! [`PageStream`] refills an internal buffer one transaction at a time
//! and hands out single pages, also reporting transaction boundaries so
//! closed-loop clients can insert think time between transactions.

use crate::{TransactionStream, Workload};

/// Endless per-page view over one thread's [`TransactionStream`].
pub struct PageStream {
    inner: Box<dyn TransactionStream>,
    buf: Vec<u64>,
    next: usize,
}

impl PageStream {
    /// Flatten `stream` into single page accesses.
    pub fn new(stream: Box<dyn TransactionStream>) -> Self {
        PageStream {
            inner: stream,
            buf: Vec::new(),
            next: 0,
        }
    }

    /// Convenience: build the flattened stream for one worker thread of
    /// `workload` (same determinism contract as [`Workload::stream`]).
    pub fn for_thread(workload: &dyn Workload, thread_id: usize, seed: u64) -> Self {
        Self::new(workload.stream(thread_id, seed))
    }

    /// The next page access. Never exhausts: transaction streams are
    /// endless and every transaction has at least one access.
    pub fn next_page(&mut self) -> u64 {
        if self.next >= self.buf.len() {
            self.buf.clear();
            self.inner.next_transaction(&mut self.buf);
            assert!(!self.buf.is_empty(), "transaction with zero accesses");
            self.next = 0;
        }
        let page = self.buf[self.next];
        self.next += 1;
        page
    }

    /// True when the *next* [`next_page`](Self::next_page) call will
    /// start a new transaction — the natural point for think time.
    pub fn at_transaction_boundary(&self) -> bool {
        self.next >= self.buf.len()
    }

    /// Pages remaining in the current transaction.
    pub fn remaining_in_transaction(&self) -> usize {
        self.buf.len() - self.next
    }
}

impl Iterator for PageStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_page())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    #[test]
    fn flattening_preserves_order() {
        let w = WorkloadKind::Dbt1.build();
        let mut expected = Vec::new();
        let mut s = w.stream(3, 99);
        for _ in 0..10 {
            s.next_transaction(&mut expected);
        }
        let flat: Vec<u64> = PageStream::for_thread(w.as_ref(), 3, 99)
            .take(expected.len())
            .collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn boundary_tracking_matches_transactions() {
        let w = WorkloadKind::Dbt2.build();
        let mut s = w.stream(0, 7);
        let mut first = Vec::new();
        s.next_transaction(&mut first);

        let mut ps = PageStream::for_thread(w.as_ref(), 0, 7);
        assert!(ps.at_transaction_boundary(), "fresh stream starts a txn");
        for _ in 0..first.len() - 1 {
            ps.next_page();
            assert!(!ps.at_transaction_boundary() || ps.remaining_in_transaction() == 0);
        }
        ps.next_page();
        assert!(ps.at_transaction_boundary(), "end of first txn");
    }

    #[test]
    fn deterministic_per_thread_and_seed() {
        let w = WorkloadKind::TableScan.build();
        let a: Vec<u64> = PageStream::for_thread(w.as_ref(), 1, 5).take(500).collect();
        let b: Vec<u64> = PageStream::for_thread(w.as_ref(), 1, 5).take(500).collect();
        let c: Vec<u64> = PageStream::for_thread(w.as_ref(), 2, 5).take(500).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different threads must be decorrelated");
    }

    #[test]
    fn pages_stay_in_universe() {
        for kind in WorkloadKind::ALL {
            let w = kind.build();
            let universe = w.page_universe();
            let mut ps = PageStream::for_thread(w.as_ref(), 0, 42);
            for _ in 0..2_000 {
                assert!(ps.next_page() < universe, "{kind}");
            }
        }
    }
}
