//! A TPC-C-like page-access workload (the paper's DBT-2, from the OSDL
//! database test suite, "provides an on-line transaction processing
//! (OLTP) workload"; the paper sets 50 warehouses).
//!
//! What the buffer manager sees from TPC-C is a page reference string
//! with a specific structure: very hot warehouse/district/index-root
//! pages, NURand-skewed customer/item/stock accesses, and append-only
//! tails (orders, order lines, history) that are written once and
//! revisited briefly. This module reproduces that structure at the page
//! level using the TPC-C 5.0 transaction mix and row counts, scaled by
//! the warehouse count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layout::{BtreeIndex, PageSpace, Region};
use crate::zipf::nurand;
use crate::{TransactionStream, Workload};

/// Configuration for [`Tpcc`].
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Warehouse count (paper: 50; default scaled for laptop runs).
    pub warehouses: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig { warehouses: 10 }
    }
}

/// Static page layout shared by all streams.
#[derive(Debug)]
struct TpccLayout {
    warehouses: u64,
    warehouse: Region,
    district: Region,
    customer: Region,
    customer_idx: BtreeIndex,
    customer_name_idx: BtreeIndex,
    stock: Region,
    stock_idx: BtreeIndex,
    item: Region,
    item_idx: BtreeIndex,
    orders: Region,
    orders_idx: BtreeIndex,
    order_line: Region,
    new_order_idx: BtreeIndex,
    history: Region,
    /// Shared append cursors (rows), modelling the real hot tail pages.
    orders_cursor: AtomicU64,
    order_line_cursor: AtomicU64,
    history_cursor: AtomicU64,
    total_pages: u64,
}

const CUSTOMERS_PER_DISTRICT: u64 = 3_000;
const DISTRICTS_PER_WAREHOUSE: u64 = 10;
const STOCK_PER_WAREHOUSE: u64 = 100_000;
const ITEMS: u64 = 100_000;

/// TPC-C-like OLTP workload over a synthetic page layout.
#[derive(Clone)]
pub struct Tpcc {
    layout: Arc<TpccLayout>,
}

impl Tpcc {
    /// Build the layout for `cfg.warehouses` warehouses.
    pub fn new(cfg: TpccConfig) -> Self {
        let w = cfg.warehouses.max(1);
        let mut s = PageSpace::new();
        let customers = w * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT;
        let layout = TpccLayout {
            warehouses: w,
            warehouse: s.alloc(w),             // 1 page each
            district: s.alloc(w),              // 10 rows fit one page
            customer: s.alloc(customers / 12), // ~12 rows/page
            customer_idx: BtreeIndex::new(&mut s, customers, 150),
            customer_name_idx: BtreeIndex::new(&mut s, customers, 150),
            stock: s.alloc(w * STOCK_PER_WAREHOUSE / 25), // ~25 rows/page
            stock_idx: BtreeIndex::new(&mut s, w * STOCK_PER_WAREHOUSE, 150),
            item: s.alloc(ITEMS / 80), // ~80 rows/page
            item_idx: BtreeIndex::new(&mut s, ITEMS, 150),
            orders: s.alloc((w * 3_000).max(64)), // circular tail
            orders_idx: BtreeIndex::new(&mut s, w * 30_000, 150),
            order_line: s.alloc((w * 15_000).max(64)), // circular tail
            new_order_idx: BtreeIndex::new(&mut s, w * 9_000, 150),
            history: s.alloc((w * 1_000).max(64)), // circular tail
            orders_cursor: AtomicU64::new(0),
            order_line_cursor: AtomicU64::new(0),
            history_cursor: AtomicU64::new(0),
            total_pages: 0,
        };
        let total = s.total();
        let mut layout = layout;
        layout.total_pages = total;
        Tpcc {
            layout: Arc::new(layout),
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> String {
        format!("TPC-C({}wh)", self.layout.warehouses)
    }

    fn page_universe(&self) -> u64 {
        self.layout.total_pages
    }

    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream> {
        let mut rng = StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0xA24B));
        // TPC-C terminals are bound to a home warehouse.
        let home = rng.gen_range(0..self.layout.warehouses);
        // The spec's per-run NURand constants.
        let c_c = rng.gen_range(0..1024);
        let c_i = rng.gen_range(0..8192);
        Box::new(TpccStream {
            l: Arc::clone(&self.layout),
            rng,
            home,
            c_c,
            c_i,
        })
    }
}

struct TpccStream {
    l: Arc<TpccLayout>,
    rng: StdRng,
    home: u64,
    c_c: u64,
    c_i: u64,
}

impl TpccStream {
    fn customer_frac(&mut self) -> f64 {
        let d = self.rng.gen_range(0..DISTRICTS_PER_WAREHOUSE);
        let c = nurand(&mut self.rng, 1023, self.c_c, 1, CUSTOMERS_PER_DISTRICT) - 1;
        let row = (self.home * DISTRICTS_PER_WAREHOUSE + d) * CUSTOMERS_PER_DISTRICT + c;
        row as f64 / (self.l.warehouses * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT) as f64
    }

    fn customer_lookup(&mut self, by_name: bool, out: &mut Vec<u64>) {
        let frac = self.customer_frac();
        if by_name {
            // Name lookups scan a few leaf entries to disambiguate.
            self.l.customer_name_idx.range_scan(frac, 2, out);
        } else {
            self.l.customer_idx.lookup(frac, out);
        }
        out.push(
            self.l
                .customer
                .page_of_row((frac * self.l.customer.pages as f64 * 12.0) as u64, 12),
        );
    }

    fn item_access(&mut self, out: &mut Vec<u64>) -> f64 {
        let i = nurand(&mut self.rng, 8191, self.c_i, 1, ITEMS) - 1;
        let frac = i as f64 / ITEMS as f64;
        self.l.item_idx.lookup(frac, out);
        out.push(self.l.item.page_of_row(i, 80));
        frac
    }

    fn stock_access(&mut self, item_frac: f64, out: &mut Vec<u64>) {
        let rows = self.l.warehouses * STOCK_PER_WAREHOUSE;
        let row = self.home * STOCK_PER_WAREHOUSE + (item_frac * STOCK_PER_WAREHOUSE as f64) as u64;
        self.l.stock_idx.lookup(row as f64 / rows as f64, out);
        out.push(self.l.stock.page_of_row(row, 25));
    }

    fn new_order(&mut self, out: &mut Vec<u64>) {
        out.push(self.l.warehouse.page(self.home));
        out.push(self.l.district.page(self.home));
        self.customer_lookup(false, out);
        let ol_cnt = self.rng.gen_range(5..=15);
        for _ in 0..ol_cnt {
            let frac = self.item_access(out);
            self.stock_access(frac, out);
            // Insert an order line at the shared tail.
            let row = self.l.order_line_cursor.fetch_add(1, Ordering::Relaxed);
            out.push(self.l.order_line.page_of_row(row, 60));
        }
        // Insert orders + new_order rows.
        let orow = self.l.orders_cursor.fetch_add(1, Ordering::Relaxed);
        out.push(self.l.orders.page_of_row(orow, 30));
        self.l.orders_idx.lookup(self.rng.gen(), out);
        self.l.new_order_idx.lookup(self.rng.gen(), out);
    }

    fn payment(&mut self, out: &mut Vec<u64>) {
        out.push(self.l.warehouse.page(self.home));
        out.push(self.l.district.page(self.home));
        let by_name = self.rng.gen_bool(0.6);
        self.customer_lookup(by_name, out);
        let hrow = self.l.history_cursor.fetch_add(1, Ordering::Relaxed);
        out.push(self.l.history.page_of_row(hrow, 40));
    }

    fn order_status(&mut self, out: &mut Vec<u64>) {
        let by_name = self.rng.gen_bool(0.6);
        self.customer_lookup(by_name, out);
        self.l.orders_idx.lookup(self.rng.gen(), out);
        let recent = self.l.orders_cursor.load(Ordering::Relaxed);
        out.push(
            self.l
                .orders
                .page_of_row(recent.saturating_sub(self.rng.gen_range(0..30)), 30),
        );
        // The order's lines (5-15 rows, ~60/page: 1-2 pages).
        let olrow = self.l.order_line_cursor.load(Ordering::Relaxed);
        out.push(
            self.l
                .order_line
                .page_of_row(olrow.saturating_sub(self.rng.gen_range(0..300)), 60),
        );
    }

    fn delivery(&mut self, out: &mut Vec<u64>) {
        out.push(self.l.warehouse.page(self.home));
        for _ in 0..DISTRICTS_PER_WAREHOUSE {
            self.l.new_order_idx.lookup(self.rng.gen(), out);
            let orow = self.l.orders_cursor.load(Ordering::Relaxed);
            out.push(
                self.l
                    .orders
                    .page_of_row(orow.saturating_sub(self.rng.gen_range(0..100)), 30),
            );
            let olrow = self.l.order_line_cursor.load(Ordering::Relaxed);
            out.push(
                self.l
                    .order_line
                    .page_of_row(olrow.saturating_sub(self.rng.gen_range(0..1500)), 60),
            );
            self.customer_lookup(false, out);
        }
    }

    fn stock_level(&mut self, out: &mut Vec<u64>) {
        out.push(self.l.district.page(self.home));
        // Scan the district's 20 most recent orders' lines...
        let olrow = self.l.order_line_cursor.load(Ordering::Relaxed);
        for k in 0..4 {
            out.push(
                self.l
                    .order_line
                    .page_of_row(olrow.saturating_sub(k * 60), 60),
            );
        }
        // ...and check ~20 distinct stock rows.
        for _ in 0..20 {
            let frac = self.rng.gen::<f64>();
            self.stock_access(frac, out);
        }
    }
}

impl TransactionStream for TpccStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        // TPC-C 5.0 mix: 45/43/4/4/4.
        let roll = self.rng.gen_range(0..100);
        match roll {
            0..=44 => self.new_order(out),
            45..=87 => self.payment(out),
            88..=91 => self.order_status(out),
            92..=95 => self.delivery(out),
            _ => self.stock_level(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_pages_are_in_universe() {
        let w = Tpcc::new(TpccConfig { warehouses: 2 });
        let mut s = w.stream(0, 1);
        let mut buf = Vec::new();
        for _ in 0..500 {
            buf.clear();
            s.next_transaction(&mut buf);
            assert!(!buf.is_empty());
            for &p in &buf {
                assert!(p < w.page_universe(), "page {p} outside universe");
            }
        }
    }

    #[test]
    fn warehouse_pages_are_hot() {
        // The home-warehouse page must be among the most accessed pages.
        let w = Tpcc::new(TpccConfig { warehouses: 1 });
        let mut s = w.stream(0, 2);
        let mut counts = std::collections::HashMap::new();
        let mut buf = Vec::new();
        for _ in 0..1000 {
            buf.clear();
            s.next_transaction(&mut buf);
            for &p in &buf {
                *counts.entry(p).or_insert(0u32) += 1;
            }
        }
        // New-order (45%) + payment (43%) + delivery (4%) all touch the
        // home warehouse page: expect it referenced by ~90% of txns.
        let wh_count = counts.get(&0).copied().unwrap_or(0); // warehouse page 0
        assert!(
            wh_count >= 700,
            "warehouse page not hot: {wh_count} accesses over 1000 txns"
        );
    }

    #[test]
    fn mix_has_all_types() {
        // With 2000 transactions we must see varied lengths (new-order is
        // long, payment short).
        let w = Tpcc::new(TpccConfig::default());
        let mut s = w.stream(3, 5);
        let mut lens = std::collections::HashSet::new();
        let mut buf = Vec::new();
        for _ in 0..2000 {
            buf.clear();
            s.next_transaction(&mut buf);
            lens.insert(buf.len());
        }
        assert!(lens.len() > 5, "transaction mix too uniform: {lens:?}");
    }

    #[test]
    fn universe_scales_with_warehouses() {
        let a = Tpcc::new(TpccConfig { warehouses: 1 }).page_universe();
        let b = Tpcc::new(TpccConfig { warehouses: 4 }).page_universe();
        assert!(b > 2 * a);
    }
}
