//! The paper's `TableScan` benchmark (§IV-C): concurrent queries, each
//! scanning an entire table. "Each table consists of 10,000 rows, and
//! each row is 100 bytes long" — with 8 KiB pages that is ~80 rows per
//! page, ~125 pages per table. One transaction = one full scan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layout::{PageSpace, Region};
use crate::{TransactionStream, Workload};

/// Configuration for [`TableScan`].
#[derive(Debug, Clone, Copy)]
pub struct TableScanConfig {
    /// Number of tables in the database.
    pub tables: usize,
    /// Rows per table (paper: 10,000).
    pub rows_per_table: u64,
    /// Row size in bytes (paper: 100).
    pub row_bytes: u64,
    /// Page size in bytes (PostgreSQL: 8192).
    pub page_bytes: u64,
}

impl Default for TableScanConfig {
    fn default() -> Self {
        TableScanConfig {
            tables: 16,
            rows_per_table: 10_000,
            row_bytes: 100,
            page_bytes: 8192,
        }
    }
}

/// Concurrent full-table-scan workload.
#[derive(Debug, Clone)]
pub struct TableScan {
    tables: Vec<Region>,
    total_pages: u64,
}

impl TableScan {
    /// Build with the paper's table dimensions.
    pub fn new(cfg: TableScanConfig) -> Self {
        assert!(cfg.tables >= 1);
        let rows_per_page = (cfg.page_bytes / cfg.row_bytes).max(1);
        let pages_per_table = cfg.rows_per_table.div_ceil(rows_per_page).max(1);
        let mut space = PageSpace::new();
        let tables = (0..cfg.tables)
            .map(|_| space.alloc(pages_per_table))
            .collect();
        TableScan {
            tables,
            total_pages: space.total(),
        }
    }

    /// Pages in one table.
    pub fn pages_per_table(&self) -> u64 {
        self.tables[0].pages
    }
}

impl Workload for TableScan {
    fn name(&self) -> String {
        format!("TableScan({}x{})", self.tables.len(), self.tables[0].pages)
    }

    fn page_universe(&self) -> u64 {
        self.total_pages
    }

    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream> {
        Box::new(ScanStream {
            tables: self.tables.clone(),
            rng: StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0xC2B2)),
        })
    }
}

struct ScanStream {
    tables: Vec<Region>,
    rng: StdRng,
}

impl TransactionStream for ScanStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        // One query: scan a randomly chosen table front to back.
        let t = self.rng.gen_range(0..self.tables.len());
        let r = self.tables[t];
        out.extend(r.base..r.end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let ts = TableScan::new(TableScanConfig::default());
        // 10,000 rows x 100 B at 8 KiB pages -> 81 rows/page -> 124 pages.
        assert_eq!(ts.pages_per_table(), 124);
        assert_eq!(ts.page_universe(), 16 * 124);
    }

    #[test]
    fn scan_is_sequential_and_complete() {
        let ts = TableScan::new(TableScanConfig {
            tables: 3,
            rows_per_table: 100,
            row_bytes: 100,
            page_bytes: 1000,
        });
        let mut s = ts.stream(0, 1);
        let mut buf = Vec::new();
        s.next_transaction(&mut buf);
        assert_eq!(buf.len() as u64, ts.pages_per_table());
        for w in buf.windows(2) {
            assert_eq!(w[1], w[0] + 1, "scan must be sequential");
        }
    }

    #[test]
    fn different_transactions_pick_various_tables() {
        let ts = TableScan::new(TableScanConfig::default());
        let mut s = ts.stream(1, 9);
        let mut firsts = std::collections::HashSet::new();
        let mut buf = Vec::new();
        for _ in 0..50 {
            buf.clear();
            s.next_transaction(&mut buf);
            firsts.insert(buf[0]);
        }
        assert!(firsts.len() > 1, "scans should cover multiple tables");
    }
}
