//! A TPC-W-like page-access workload (the paper's DBT-1: "simulates the
//! activities of web users who browse and order items from an on-line
//! bookstore... the same characteristics as the TPC-W benchmark
//! specification version 1.7"; the paper's database has 10,000 items and
//! 2.9 million customers).
//!
//! The buffer-level signature of TPC-W: Zipf-skewed item popularity
//! (best-sellers are read constantly), wide customer data with low
//! re-reference, index-root hot spots, and short read-mostly web
//! interactions with occasional order writes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layout::{BtreeIndex, PageSpace, Region};
use crate::zipf::Zipf;
use crate::{TransactionStream, Workload};

/// Configuration for [`Tpcw`].
#[derive(Debug, Clone, Copy)]
pub struct TpcwConfig {
    /// Item count (TPC-W scale: 10,000).
    pub items: u64,
    /// Customer count (paper: 2.9 M; default scaled for laptop runs).
    pub customers: u64,
    /// Zipf skew of item popularity.
    pub item_theta: f64,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            items: 10_000,
            customers: 100_000,
            item_theta: 0.8,
        }
    }
}

#[derive(Debug)]
struct TpcwLayout {
    items: u64,
    customers: u64,
    item: Region,
    item_idx: BtreeIndex,
    item_subject_idx: BtreeIndex,
    author: Region,
    author_idx: BtreeIndex,
    customer: Region,
    customer_idx: BtreeIndex,
    address: Region,
    orders: Region,
    orders_idx: BtreeIndex,
    order_line: Region,
    cc_xacts: Region,
    cart: Region,
    orders_cursor: AtomicU64,
    order_line_cursor: AtomicU64,
    cc_cursor: AtomicU64,
    total_pages: u64,
}

/// TPC-W-like web-bookstore workload.
#[derive(Clone)]
pub struct Tpcw {
    layout: Arc<TpcwLayout>,
    item_theta: f64,
}

impl Tpcw {
    /// Build the layout for the given scale.
    pub fn new(cfg: TpcwConfig) -> Self {
        let mut s = PageSpace::new();
        let layout = TpcwLayout {
            items: cfg.items,
            customers: cfg.customers,
            item: s.alloc(cfg.items / 20), // wide rows: ~20/page
            item_idx: BtreeIndex::new(&mut s, cfg.items, 150),
            item_subject_idx: BtreeIndex::new(&mut s, cfg.items, 150),
            author: s.alloc((cfg.items / 4 / 25).max(1)),
            author_idx: BtreeIndex::new(&mut s, cfg.items / 4, 150),
            customer: s.alloc(cfg.customers / 12),
            customer_idx: BtreeIndex::new(&mut s, cfg.customers, 150),
            address: s.alloc((cfg.customers * 2 / 30).max(1)),
            orders: s.alloc((cfg.customers / 10).max(64)),
            orders_idx: BtreeIndex::new(&mut s, cfg.customers, 150),
            order_line: s.alloc((cfg.customers / 4).max(64)),
            cc_xacts: s.alloc((cfg.customers / 10).max(64)),
            cart: s.alloc((cfg.customers / 20).max(64)),
            orders_cursor: AtomicU64::new(0),
            order_line_cursor: AtomicU64::new(0),
            cc_cursor: AtomicU64::new(0),
            total_pages: 0,
        };
        let total = s.total();
        let mut layout = layout;
        layout.total_pages = total;
        Tpcw {
            layout: Arc::new(layout),
            item_theta: cfg.item_theta,
        }
    }
}

impl Workload for Tpcw {
    fn name(&self) -> String {
        format!("TPC-W({} items)", self.layout.items)
    }

    fn page_universe(&self) -> u64 {
        self.layout.total_pages
    }

    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream> {
        Box::new(TpcwStream {
            l: Arc::clone(&self.layout),
            zipf: Zipf::new(self.layout.items, self.item_theta),
            rng: StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0xD1B5)),
        })
    }
}

struct TpcwStream {
    l: Arc<TpcwLayout>,
    zipf: Zipf,
    rng: StdRng,
}

impl TpcwStream {
    /// Look up a popularity-ranked item: index descent + item page (+
    /// author 50% of the time, as the product page shows author info).
    fn item_detail(&mut self, out: &mut Vec<u64>) {
        let rank = self.zipf.sample(&mut self.rng);
        // Popular items are spread over the table by hashing rank -> row.
        let row = crate::zipf::splitmix64(rank) % self.l.items;
        let frac = row as f64 / self.l.items as f64;
        self.l.item_idx.lookup(frac, out);
        out.push(self.l.item.page_of_row(row, 20));
        if self.rng.gen_bool(0.5) {
            let arow = row % (self.l.items / 4).max(1);
            self.l
                .author_idx
                .lookup(arow as f64 / (self.l.items / 4).max(1) as f64, out);
            out.push(self.l.author.page_of_row(arow, 25));
        }
    }

    fn customer_session(&mut self, out: &mut Vec<u64>) {
        let row = self.rng.gen_range(0..self.l.customers);
        let frac = row as f64 / self.l.customers as f64;
        self.l.customer_idx.lookup(frac, out);
        out.push(self.l.customer.page_of_row(row, 12));
    }

    fn home(&mut self, out: &mut Vec<u64>) {
        self.customer_session(out);
        // Promotional items on the home page.
        for _ in 0..5 {
            self.item_detail(out);
        }
    }

    fn new_products(&mut self, out: &mut Vec<u64>) {
        // Range scan over the subject index + item pages.
        self.l.item_subject_idx.range_scan(self.rng.gen(), 3, out);
        for _ in 0..10 {
            self.item_detail(out);
        }
    }

    fn best_sellers(&mut self, out: &mut Vec<u64>) {
        // Aggregate over recent order lines, then show the top items.
        let tail = self.l.order_line_cursor.load(Ordering::Relaxed);
        for k in 0..30 {
            out.push(
                self.l
                    .order_line
                    .page_of_row(tail.saturating_sub(k * 50), 50),
            );
        }
        for _ in 0..10 {
            self.item_detail(out);
        }
    }

    fn search(&mut self, out: &mut Vec<u64>) {
        self.l.item_subject_idx.range_scan(self.rng.gen(), 5, out);
        for _ in 0..8 {
            self.item_detail(out);
        }
    }

    fn shopping_cart(&mut self, out: &mut Vec<u64>) {
        let cart_row = self.rng.gen_range(0..self.l.cart.pages * 20);
        out.push(self.l.cart.page_of_row(cart_row, 20));
        for _ in 0..self.rng.gen_range(1..=5) {
            self.item_detail(out);
        }
    }

    fn buy_confirm(&mut self, out: &mut Vec<u64>) {
        self.customer_session(out);
        out.push(
            self.l
                .address
                .page_of_row(self.rng.gen_range(0..self.l.address.pages * 30), 30),
        );
        let orow = self.l.orders_cursor.fetch_add(1, Ordering::Relaxed);
        out.push(self.l.orders.page_of_row(orow, 25));
        self.l.orders_idx.lookup(self.rng.gen(), out);
        let lines = self.rng.gen_range(1..=5);
        for _ in 0..lines {
            let lrow = self.l.order_line_cursor.fetch_add(1, Ordering::Relaxed);
            out.push(self.l.order_line.page_of_row(lrow, 50));
        }
        let crow = self.l.cc_cursor.fetch_add(1, Ordering::Relaxed);
        out.push(self.l.cc_xacts.page_of_row(crow, 40));
    }

    fn order_inquiry(&mut self, out: &mut Vec<u64>) {
        self.customer_session(out);
        self.l.orders_idx.lookup(self.rng.gen(), out);
        let orow = self.l.orders_cursor.load(Ordering::Relaxed);
        out.push(
            self.l
                .orders
                .page_of_row(orow.saturating_sub(self.rng.gen_range(0..100)), 25),
        );
        out.push(
            self.l.order_line.page_of_row(
                self.l
                    .order_line_cursor
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.rng.gen_range(0..500)),
                50,
            ),
        );
    }
}

impl TransactionStream for TpcwStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        // TPC-W shopping-mix-flavoured interaction weights (sums to 100):
        // browse-heavy with a 5% order rate, as DBT-1 drives it.
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=15 => self.home(out),           // 16%
            16..=20 => self.new_products(out),  // 5%
            21..=25 => self.best_sellers(out),  // 5%
            26..=45 => self.item_detail(out),   // 20% product detail
            46..=65 => self.search(out),        // 20%
            66..=82 => self.shopping_cart(out), // 17%
            83..=87 => self.buy_confirm(out),   // 5%
            _ => self.order_inquiry(out),       // 12%
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_stay_in_universe() {
        let w = Tpcw::new(TpcwConfig::default());
        let mut s = w.stream(0, 1);
        let mut buf = Vec::new();
        for _ in 0..500 {
            buf.clear();
            s.next_transaction(&mut buf);
            assert!(!buf.is_empty());
            for &p in &buf {
                assert!(p < w.page_universe());
            }
        }
    }

    #[test]
    fn item_index_root_is_hottest() {
        let w = Tpcw::new(TpcwConfig::default());
        let mut s = w.stream(0, 3);
        let mut counts = std::collections::HashMap::new();
        let mut buf = Vec::new();
        for _ in 0..2000 {
            buf.clear();
            s.next_transaction(&mut buf);
            for &p in &buf {
                *counts.entry(p).or_insert(0u64) += 1;
            }
        }
        let root = w.layout.item_idx.root_page();
        let root_count = counts.get(&root).copied().unwrap_or(0);
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            root_count * 2 >= max,
            "item index root should be among the hottest pages ({root_count} vs {max})"
        );
    }

    #[test]
    fn working_set_is_skewed() {
        // A small fraction of pages should absorb most accesses.
        let w = Tpcw::new(TpcwConfig::default());
        let mut s = w.stream(1, 9);
        let mut counts = std::collections::HashMap::new();
        let mut buf = Vec::new();
        let mut total = 0u64;
        for _ in 0..3000 {
            buf.clear();
            s.next_transaction(&mut buf);
            for &p in &buf {
                *counts.entry(p).or_insert(0u64) += 1;
                total += 1;
            }
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = v.iter().take((v.len() / 100).max(1)).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.10,
            "expected skew; top 1% of pages only got {:.3}",
            top1pct as f64 / total as f64
        );
    }
}
