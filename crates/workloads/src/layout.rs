//! Page-space layout helpers: map logical database objects (tables,
//! index levels) onto disjoint ranges of page ids, the way a DBMS lays
//! relations out in its tablespace.

/// A contiguous range of page ids belonging to one database object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First page id of the region.
    pub base: u64,
    /// Number of pages.
    pub pages: u64,
}

impl Region {
    /// Page id for index `idx` (wraps modulo the region, so callers can
    /// treat append-heavy tables as circular).
    pub fn page(&self, idx: u64) -> u64 {
        debug_assert!(self.pages > 0);
        self.base + idx % self.pages
    }

    /// Page holding `row` when `rows_per_page` rows fit a page.
    pub fn page_of_row(&self, row: u64, rows_per_page: u64) -> u64 {
        self.page(row / rows_per_page.max(1))
    }

    /// One past the last page id.
    pub fn end(&self) -> u64 {
        self.base + self.pages
    }

    /// True if `page` belongs to this region.
    pub fn contains(&self, page: u64) -> bool {
        (self.base..self.end()).contains(&page)
    }
}

/// Sequential allocator of page-id regions.
#[derive(Debug, Default)]
pub struct PageSpace {
    next: u64,
}

impl PageSpace {
    /// Start allocating at page 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `pages` pages (at least 1).
    pub fn alloc(&mut self, pages: u64) -> Region {
        let r = Region {
            base: self.next,
            pages: pages.max(1),
        };
        self.next = r.end();
        r
    }

    /// Total pages allocated so far.
    pub fn total(&self) -> u64 {
        self.next
    }
}

/// A three-level B-tree index model: one hot root page, a small layer of
/// internal pages, and leaves proportional to the key count. A lookup
/// touches one page per level — the root being touched by *every*
/// lookup is what makes index roots the canonical hot spot in a DBMS
/// buffer pool.
#[derive(Debug, Clone, Copy)]
pub struct BtreeIndex {
    root: Region,
    inner: Region,
    leaf: Region,
}

impl BtreeIndex {
    /// Build an index over `keys` keys with `fanout` entries per page.
    pub fn new(space: &mut PageSpace, keys: u64, fanout: u64) -> Self {
        let fanout = fanout.max(2);
        let leaves = (keys / fanout).max(1);
        let inners = (leaves / fanout).max(1);
        BtreeIndex {
            root: space.alloc(1),
            inner: space.alloc(inners),
            leaf: space.alloc(leaves),
        }
    }

    /// Pages touched when looking up the key at `frac` in `[0,1)` of the
    /// key space, appended root-first (as a real descent would).
    pub fn lookup(&self, frac: f64, out: &mut Vec<u64>) {
        let frac = frac.clamp(0.0, 0.999_999_9);
        out.push(self.root.base);
        out.push(self.inner.page((frac * self.inner.pages as f64) as u64));
        out.push(self.leaf.page((frac * self.leaf.pages as f64) as u64));
    }

    /// Pages touched by a short range scan starting at `frac` covering
    /// `leaves` leaf pages.
    pub fn range_scan(&self, frac: f64, leaves: u64, out: &mut Vec<u64>) {
        self.lookup(frac, out);
        let start = (frac.clamp(0.0, 1.0) * self.leaf.pages as f64) as u64;
        for i in 1..leaves {
            out.push(self.leaf.page(start + i));
        }
    }

    /// Total pages across all levels.
    pub fn total_pages(&self) -> u64 {
        self.root.pages + self.inner.pages + self.leaf.pages
    }

    /// The (always hot) root page.
    pub fn root_page(&self) -> u64 {
        self.root.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let mut s = PageSpace::new();
        let a = s.alloc(10);
        let b = s.alloc(5);
        let c = s.alloc(1);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 10);
        assert_eq!(c.base, 15);
        assert_eq!(s.total(), 16);
        assert!(a.contains(9));
        assert!(!a.contains(10));
        assert!(b.contains(10));
    }

    #[test]
    fn region_wraps() {
        let r = Region {
            base: 100,
            pages: 4,
        };
        assert_eq!(r.page(0), 100);
        assert_eq!(r.page(5), 101);
        assert_eq!(r.page_of_row(7, 2), 103);
        assert_eq!(r.page_of_row(8, 2), 100); // wrapped
    }

    #[test]
    fn btree_lookup_descends_three_levels() {
        let mut s = PageSpace::new();
        let idx = BtreeIndex::new(&mut s, 100_000, 100);
        let mut pages = Vec::new();
        idx.lookup(0.5, &mut pages);
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], idx.root_page());
        assert_ne!(pages[1], pages[2]);
        assert_eq!(s.total(), idx.total_pages());
    }

    #[test]
    fn btree_lookups_hit_same_root() {
        let mut s = PageSpace::new();
        let idx = BtreeIndex::new(&mut s, 10_000, 50);
        let mut a = Vec::new();
        let mut b = Vec::new();
        idx.lookup(0.1, &mut a);
        idx.lookup(0.9, &mut b);
        assert_eq!(a[0], b[0], "root page must be shared");
        assert_ne!(a[2], b[2], "distant keys use different leaves");
    }

    #[test]
    fn range_scan_touches_consecutive_leaves() {
        let mut s = PageSpace::new();
        let idx = BtreeIndex::new(&mut s, 100_000, 100);
        let mut pages = Vec::new();
        idx.range_scan(0.0, 5, &mut pages);
        assert_eq!(pages.len(), 3 + 4);
        // last 4 pages are consecutive leaves after the first
        for w in pages[2..].windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }
}
