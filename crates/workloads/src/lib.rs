//! # bpw-workloads
//!
//! Page-reference workload generators for the BP-Wrapper reproduction:
//! the paper's three benchmarks — DBT-1 (TPC-W-like), DBT-2 (TPC-C-like)
//! and TableScan — plus synthetic distributions and trace capture.
//!
//! Real benchmark kits drive a real DBMS; the buffer manager, which is
//! all this reproduction studies, only ever sees the resulting *page
//! reference string*. These generators produce reference strings with
//! the same structure (hot index roots, skewed row access, sequential
//! scans, append-only tails) directly, at a configurable scale.

pub mod layout;
pub mod stream;
pub mod synthetic;
pub mod tablescan;
pub mod tpcc;
pub mod tpcw;
pub mod trace;
pub mod zipf;

pub use layout::{BtreeIndex, PageSpace, Region};
pub use stream::PageStream;
pub use synthetic::{SequentialLoop, Uniform, ZipfWorkload};
pub use tablescan::{TableScan, TableScanConfig};
pub use tpcc::{Tpcc, TpccConfig};
pub use tpcw::{Tpcw, TpcwConfig};
pub use trace::{Trace, TraceReplay};
pub use zipf::{nurand, splitmix64, Zipf};

/// A workload: a page universe plus per-thread transaction streams.
pub trait Workload: Send + Sync {
    /// Human-readable name (used in experiment output).
    fn name(&self) -> String;

    /// Upper bound on the page ids the workload generates (pages are in
    /// `0..page_universe()`).
    fn page_universe(&self) -> u64;

    /// An independent access stream for one worker thread. Streams with
    /// the same `(thread_id, seed)` are identical; different thread ids
    /// give decorrelated streams.
    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream>;
}

/// A sequence of transactions, each a short burst of page accesses.
pub trait TransactionStream: Send {
    /// Append the next transaction's page accesses to `out` (does not
    /// clear it). Every transaction contains at least one access.
    fn next_transaction(&mut self, out: &mut Vec<u64>);
}

/// The paper's three evaluation workloads, for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// DBT-1: TPC-W-like web bookstore.
    Dbt1,
    /// DBT-2: TPC-C-like OLTP.
    Dbt2,
    /// Concurrent full-table scans.
    TableScan,
}

impl WorkloadKind {
    /// All three, in the paper's presentation order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Dbt1,
        WorkloadKind::Dbt2,
        WorkloadKind::TableScan,
    ];

    /// Paper's name for the workload.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Dbt1 => "DBT-1",
            WorkloadKind::Dbt2 => "DBT-2",
            WorkloadKind::TableScan => "TableScan",
        }
    }

    /// Build the workload at default (laptop) scale.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Dbt1 => Box::new(Tpcw::new(TpcwConfig::default())),
            WorkloadKind::Dbt2 => Box::new(Tpcc::new(TpccConfig::default())),
            WorkloadKind::TableScan => Box::new(TableScan::new(TableScanConfig::default())),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dbt-1" | "dbt1" | "tpcw" | "tpc-w" => Ok(WorkloadKind::Dbt1),
            "dbt-2" | "dbt2" | "tpcc" | "tpc-c" => Ok(WorkloadKind::Dbt2),
            "tablescan" | "scan" => Ok(WorkloadKind::TableScan),
            other => Err(format!("unknown workload {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_and_generate() {
        for kind in WorkloadKind::ALL {
            let w = kind.build();
            assert!(w.page_universe() > 0, "{kind}");
            let mut s = w.stream(0, 11);
            let mut buf = Vec::new();
            s.next_transaction(&mut buf);
            assert!(!buf.is_empty(), "{kind}");
            assert!(buf.iter().all(|&p| p < w.page_universe()), "{kind}");
        }
    }

    #[test]
    fn kind_parsing() {
        assert_eq!("tpcc".parse::<WorkloadKind>().unwrap(), WorkloadKind::Dbt2);
        assert_eq!("DBT-1".parse::<WorkloadKind>().unwrap(), WorkloadKind::Dbt1);
        assert_eq!(
            "scan".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::TableScan
        );
        assert!("x".parse::<WorkloadKind>().is_err());
    }
}
