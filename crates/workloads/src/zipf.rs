//! Zipfian random variates, the skew engine behind the OLTP/web
//! workloads (TPC-C's NURand and TPC-W's item popularity are both
//! skewed-discrete distributions).
//!
//! Implements the classic Gray et al. ("Quickly Generating
//! Billion-Record Synthetic Databases", SIGMOD 1994) inversion
//! approximation with a precomputed harmonic normalizer, as popularized
//! by YCSB. An optional scrambling step (splitmix64) decorrelates rank
//! from key so "hot" items are spread across the key space.

use rand::Rng;

/// Zipfian distribution over `0..n` with skew `theta` in `[0, 1)`.
/// `theta = 0` is uniform; `theta = 0.99` is the YCSB default hot-spot
/// skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Construct for a universe of `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs a non-empty universe");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n >= 2 {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        } else {
            0.0
        };
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Harmonic-like normalizer `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // O(n); universes here are bounded (page counts), and the
        // constructor runs once per workload.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Universe size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Draw a rank and scramble it over the key space so popularity is
    /// not correlated with key order.
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        splitmix64(self.sample(rng)) % self.n
    }
}

/// A fast, stateless 64-bit mixing function (splitmix64 finalizer).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// TPC-C's NURand(A, x, y): non-uniform random over `[x, y]`.
/// `c` is the per-run constant the spec draws once.
pub fn nurand<R: Rng + ?Sized>(rng: &mut R, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
            assert!(z.sample_scrambled(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 100_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // With theta=0.99 the top 10 of 1000 items draw a large share.
        assert!(
            top10 as f64 / n as f64 > 0.30,
            "top-10 share too low: {}",
            top10 as f64 / n as f64
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn singleton_universe() {
        let z = Zipf::new(1, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn nurand_in_bounds_and_skewed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 7, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn scramble_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
