//! Synthetic single-distribution workloads: uniform, Zipfian hot-spot,
//! and sequential looping — the controlled inputs for microbenchmarks
//! and policy studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::{TransactionStream, Workload};

/// Uniform random accesses over a fixed page universe; `txn_len` pages
/// per transaction.
#[derive(Debug, Clone)]
pub struct Uniform {
    pages: u64,
    txn_len: usize,
}

impl Uniform {
    /// Uniform workload over `pages` pages.
    pub fn new(pages: u64, txn_len: usize) -> Self {
        assert!(pages >= 1 && txn_len >= 1);
        Uniform { pages, txn_len }
    }
}

impl Workload for Uniform {
    fn name(&self) -> String {
        format!("Uniform({})", self.pages)
    }

    fn page_universe(&self) -> u64 {
        self.pages
    }

    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream> {
        let rng = StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0x9E37));
        Box::new(UniformStream {
            pages: self.pages,
            txn_len: self.txn_len,
            rng,
        })
    }
}

struct UniformStream {
    pages: u64,
    txn_len: usize,
    rng: StdRng,
}

impl TransactionStream for UniformStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        for _ in 0..self.txn_len {
            out.push(self.rng.gen_range(0..self.pages));
        }
    }
}

/// Zipf-skewed accesses (scrambled so hot pages are spread over the id
/// space), `txn_len` pages per transaction.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    pages: u64,
    theta: f64,
    txn_len: usize,
}

impl ZipfWorkload {
    /// Zipfian workload over `pages` pages with skew `theta`.
    pub fn new(pages: u64, theta: f64, txn_len: usize) -> Self {
        assert!(pages >= 1 && txn_len >= 1);
        ZipfWorkload {
            pages,
            theta,
            txn_len,
        }
    }
}

impl Workload for ZipfWorkload {
    fn name(&self) -> String {
        format!("Zipf({}, θ={})", self.pages, self.theta)
    }

    fn page_universe(&self) -> u64 {
        self.pages
    }

    fn stream(&self, thread_id: usize, seed: u64) -> Box<dyn TransactionStream> {
        let rng = StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0x85EB));
        Box::new(ZipfStream {
            zipf: Zipf::new(self.pages, self.theta),
            txn_len: self.txn_len,
            rng,
        })
    }
}

struct ZipfStream {
    zipf: Zipf,
    txn_len: usize,
    rng: StdRng,
}

impl TransactionStream for ZipfStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        for _ in 0..self.txn_len {
            out.push(self.zipf.sample_scrambled(&mut self.rng));
        }
    }
}

/// Sequential looping over the page universe — the pattern that defeats
/// LRU when the loop exceeds the cache (and that SEQ-style policies must
/// see *in order*, per the paper's argument for private FIFO queues).
#[derive(Debug, Clone)]
pub struct SequentialLoop {
    pages: u64,
    txn_len: usize,
}

impl SequentialLoop {
    /// Loop over `pages` pages, `txn_len` accesses per transaction.
    pub fn new(pages: u64, txn_len: usize) -> Self {
        assert!(pages >= 1 && txn_len >= 1);
        SequentialLoop { pages, txn_len }
    }
}

impl Workload for SequentialLoop {
    fn name(&self) -> String {
        format!("SeqLoop({})", self.pages)
    }

    fn page_universe(&self) -> u64 {
        self.pages
    }

    fn stream(&self, thread_id: usize, _seed: u64) -> Box<dyn TransactionStream> {
        // Stagger threads across the loop so they don't convoy.
        let start = (thread_id as u64).wrapping_mul(self.pages / 4 + 1) % self.pages;
        Box::new(SeqStream {
            pages: self.pages,
            txn_len: self.txn_len,
            cursor: start,
        })
    }
}

struct SeqStream {
    pages: u64,
    txn_len: usize,
    cursor: u64,
}

impl TransactionStream for SeqStream {
    fn next_transaction(&mut self, out: &mut Vec<u64>) {
        for _ in 0..self.txn_len {
            out.push(self.cursor);
            self.cursor = (self.cursor + 1) % self.pages;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn uniform_covers_universe() {
        let w = Uniform::new(16, 8);
        let mut s = w.stream(0, 42);
        let mut seen = std::collections::HashSet::new();
        let mut buf = Vec::new();
        for _ in 0..200 {
            buf.clear();
            s.next_transaction(&mut buf);
            assert_eq!(buf.len(), 8);
            seen.extend(buf.iter().copied());
            assert!(buf.iter().all(|&p| p < 16));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn zipf_stream_is_skewed() {
        let w = ZipfWorkload::new(1000, 0.99, 100);
        let mut s = w.stream(0, 7);
        let mut buf = Vec::new();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100 {
            buf.clear();
            s.next_transaction(&mut buf);
            for &p in &buf {
                *counts.entry(p).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 100, "hot page should dominate, max count {max}");
    }

    #[test]
    fn sequential_is_in_order() {
        let w = SequentialLoop::new(10, 25);
        let mut s = w.stream(0, 0);
        let mut buf = Vec::new();
        s.next_transaction(&mut buf);
        for w in buf.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 10);
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let w = ZipfWorkload::new(100, 0.8, 10);
        let mut a = w.stream(3, 99);
        let mut b = w.stream(3, 99);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        a.next_transaction(&mut va);
        b.next_transaction(&mut vb);
        assert_eq!(va, vb);
        let mut c = w.stream(4, 99);
        let mut vc = Vec::new();
        c.next_transaction(&mut vc);
        assert_ne!(va, vc, "different threads should draw different streams");
    }
}
