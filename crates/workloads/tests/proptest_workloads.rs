//! Property tests for the workload generators: every stream must stay
//! inside its declared page universe, be deterministic per seed, and
//! produce non-empty transactions — for any thread id and any number of
//! transactions.

use bpw_workloads::{
    SequentialLoop, TableScan, TableScanConfig, Tpcc, TpccConfig, Tpcw, TpcwConfig, Trace, Uniform,
    Workload, WorkloadKind, ZipfWorkload,
};
use proptest::prelude::*;

fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Tpcw::new(TpcwConfig {
            items: 2_000,
            customers: 10_000,
            item_theta: 0.8,
        })),
        Box::new(Tpcc::new(TpccConfig { warehouses: 2 })),
        Box::new(TableScan::new(TableScanConfig {
            tables: 4,
            rows_per_table: 1_000,
            row_bytes: 100,
            page_bytes: 8192,
        })),
        Box::new(Uniform::new(500, 10)),
        Box::new(ZipfWorkload::new(500, 0.9, 10)),
        Box::new(SequentialLoop::new(100, 25)),
    ]
}

/// Named replay of a case proptest once shrank to (thread = 4,
/// seed = 639): TPC-C's shared append tails made two fresh instances
/// diverge for the same (thread, seed). Kept as a plain test instead of
/// a `.proptest-regressions` file so the case is visible, documented,
/// and runs everywhere by name.
#[test]
fn regression_determinism_thread4_seed639() {
    let (thread, seed) = (4usize, 639u64);
    for kind in WorkloadKind::ALL {
        let mut a = kind.build().stream(thread, seed);
        let ta = Trace::capture(&mut *a, 5);
        let mut b = kind.build().stream(thread, seed);
        let tb = Trace::capture(&mut *b, 5);
        assert_eq!(
            ta, tb,
            "{kind} not deterministic for thread {thread}, seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pages stay inside the universe; transactions are never empty.
    #[test]
    fn streams_respect_their_universe(
        thread in 0usize..16,
        seed in 0u64..1000,
        txns in 1usize..40,
    ) {
        for w in all_workloads() {
            let universe = w.page_universe();
            let mut stream = w.stream(thread, seed);
            let mut buf = Vec::new();
            for _ in 0..txns {
                let before = buf.len();
                stream.next_transaction(&mut buf);
                prop_assert!(buf.len() > before, "{}: empty transaction", w.name());
            }
            for &p in &buf {
                prop_assert!(p < universe, "{}: page {} outside universe {}", w.name(), p, universe);
            }
        }
    }

    /// Identical (thread, seed) produce identical streams across fresh
    /// workload instances. (Two streams drawn from the *same* instance
    /// may interact through shared state — TPC-C/TPC-W model shared
    /// append tails with atomic cursors — so determinism is defined per
    /// instance, like re-running a benchmark from a clean database.)
    #[test]
    fn determinism_per_seed(
        thread in 0usize..8,
        seed in 0u64..1000,
    ) {
        for kind in WorkloadKind::ALL {
            let mut a = kind.build().stream(thread, seed);
            let ta = Trace::capture(&mut *a, 5);
            let mut b = kind.build().stream(thread, seed);
            let tb = Trace::capture(&mut *b, 5);
            prop_assert_eq!(ta, tb, "{} not deterministic", kind);
        }
    }

    /// Trace round-trip through the binary file format is lossless for
    /// arbitrary captures.
    #[test]
    fn trace_file_roundtrip(
        seed in 0u64..500,
        txns in 1usize..30,
    ) {
        let w = ZipfWorkload::new(300, 0.7, 6);
        let mut s = w.stream(0, seed);
        let t = Trace::capture(&mut *s, txns);
        let dir = std::env::temp_dir().join("bpw_trace_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{seed}_{txns}.bpwt"));
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(t, loaded);
    }

    /// The Zipf sampler's most popular rank always dominates a uniform
    /// share for real skew values.
    #[test]
    fn zipf_rank_zero_dominates(
        theta in 0.5f64..0.99,
        n in 10u64..1000,
    ) {
        use rand::SeedableRng;
        let z = bpw_workloads::Zipf::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let draws = 20_000;
        let zeros = (0..draws).filter(|_| z.sample(&mut rng) == 0).count();
        let uniform_share = draws as f64 / n as f64;
        prop_assert!(
            zeros as f64 > uniform_share,
            "rank 0 drew {} times, uniform share {:.1}",
            zeros,
            uniform_share
        );
    }
}
