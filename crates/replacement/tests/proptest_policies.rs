//! Property-based tests over every replacement policy: random reference
//! strings must never violate structural invariants, and LRU must agree
//! with an executable specification.

use std::collections::VecDeque;

use bpw_replacement::{CacheSim, Lru, PolicyKind};
use proptest::prelude::*;

/// Strategy: a reference string with tunable skew (small page universe
/// produces hits, large produces churn).
fn trace(universe: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..universe, 1..=len)
}

/// Named replay of a case proptest once shrank to (frames = 2, trace
/// below): a tiny cache with a heavily colliding 64-page trace caught a
/// policy whose internal structure drifted out of sync with the
/// simulator's page table. Kept as a plain test instead of a
/// `.proptest-regressions` file so the case is visible, documented, and
/// runs everywhere by name.
#[test]
fn regression_consistency_frames2_colliding_trace() {
    let frames = 2usize;
    let pages: [u64; 125] = [
        0, 0, 29, 53, 0, 29, 53, 59, 59, 57, 14, 19, 50, 58, 27, 17, 49, 16, 53, 45, 49, 34, 49,
        17, 21, 11, 60, 55, 55, 22, 57, 3, 60, 8, 34, 19, 40, 40, 43, 7, 61, 19, 38, 42, 56, 40,
        52, 6, 4, 17, 0, 54, 1, 60, 15, 43, 41, 50, 40, 33, 45, 62, 6, 54, 45, 2, 54, 5, 4, 9, 13,
        49, 22, 5, 20, 52, 44, 0, 32, 33, 5, 14, 53, 5, 57, 21, 32, 50, 56, 52, 29, 35, 43, 34, 16,
        59, 40, 1, 48, 59, 61, 13, 18, 30, 42, 49, 13, 3, 39, 29, 56, 50, 34, 22, 44, 31, 38, 59,
        11, 49, 49, 34, 56, 49, 32,
    ];
    for kind in PolicyKind::ALL {
        let mut sim = CacheSim::new(kind.build(frames));
        for &p in &pages {
            sim.access(p);
        }
        sim.check_consistency();
        assert!(sim.resident_count() <= frames, "{kind}");
        assert_eq!(sim.stats().total(), pages.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy keeps its invariants and the simulator's page table
    /// in sync over arbitrary traces and cache sizes.
    #[test]
    fn policies_stay_consistent(
        frames in 2usize..40,
        pages in trace(64, 400),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
            }
            sim.check_consistency();
            prop_assert!(sim.resident_count() <= frames, "{kind}");
            prop_assert_eq!(sim.stats().total(), pages.len() as u64);
        }
    }

    /// The most recently accessed page is always resident afterwards.
    #[test]
    fn last_access_is_resident(
        frames in 2usize..20,
        pages in trace(50, 200),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
                prop_assert!(sim.is_resident(p), "{kind}: page {p} not resident after access");
            }
        }
    }

    /// Once the cache has warmed past `frames` distinct pages, the
    /// resident count equals the frame count for every policy (no frame
    /// leaks, no over-allocation).
    #[test]
    fn cache_fills_and_stays_full(
        frames in 2usize..16,
        seed_pages in trace(200, 300),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            // Guaranteed distinct warm-up.
            for p in 0..frames as u64 {
                sim.access(1_000_000 + p);
            }
            prop_assert_eq!(sim.resident_count(), frames, "{}", kind);
            for &p in &seed_pages {
                sim.access(p);
                prop_assert_eq!(sim.resident_count(), frames, "{}", kind);
            }
        }
    }

    /// LRU agrees exactly with an executable specification (a VecDeque of
    /// page ids, most recent at the front).
    #[test]
    fn lru_matches_reference_model(
        frames in 1usize..24,
        pages in trace(48, 500),
    ) {
        let mut sim = CacheSim::new(Lru::new(frames));
        let mut model: VecDeque<u64> = VecDeque::new();
        for &p in &pages {
            let model_hit = model.contains(&p);
            let sim_hit = sim.access(p);
            prop_assert_eq!(model_hit, sim_hit, "hit/miss diverged on page {}", p);
            if model_hit {
                let pos = model.iter().position(|&x| x == p).unwrap();
                model.remove(pos);
            } else if model.len() == frames {
                model.pop_back();
            }
            model.push_front(p);
            // Resident sets must agree.
            for &m in &model {
                prop_assert!(sim.is_resident(m), "model page {} missing", m);
            }
            prop_assert_eq!(model.len(), sim.resident_count());
        }
    }

    /// Hit ratios are trace-deterministic: two runs of the same trace
    /// give identical statistics for every policy.
    #[test]
    fn deterministic_replay(
        frames in 2usize..16,
        pages in trace(32, 200),
    ) {
        for kind in PolicyKind::ALL {
            let mut a = CacheSim::new(kind.build(frames));
            let mut b = CacheSim::new(kind.build(frames));
            let sa = a.run(pages.iter().copied());
            let sb = b.run(pages.iter().copied());
            prop_assert_eq!(sa, sb, "{} replay diverged", kind);
        }
    }

    /// The `evictable` filter contract: the buffer pool's filter has a
    /// side effect (it invalidates the frame it accepts), so a policy
    /// must evict exactly the frame the filter accepted — one acceptance
    /// per decision, and it is the victim. (LRU-K and LFU once violated
    /// this with keep-scanning min-searches; this test pins the fix for
    /// every policy.)
    #[test]
    fn filter_acceptance_is_the_victim(
        frames in 2usize..16,
        warm in trace(64, 80),
        miss_page in 1_000_000u64..1_000_100,
        pinned_mask in any::<u32>(),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &warm {
                sim.access(p);
            }
            if sim.resident_count() < frames {
                continue; // not full: no eviction decision to test
            }
            let mut accepted = Vec::new();
            let out = sim.policy_mut().record_miss(miss_page, None, &mut |f| {
                // Reject a pseudo-random subset (as pins would), accept
                // the rest — recording every acceptance.
                if pinned_mask & (1 << (f % 31)) != 0 {
                    false
                } else {
                    accepted.push(f);
                    true
                }
            });
            match out.frame() {
                Some(victim_frame) => {
                    prop_assert_eq!(
                        &accepted,
                        &vec![victim_frame],
                        "{}: filter accepted {:?} but evicted {:?}",
                        kind,
                        accepted.clone(),
                        victim_frame
                    );
                }
                None => {
                    prop_assert!(
                        accepted.is_empty(),
                        "{}: accepted {:?} but evicted nothing",
                        kind,
                        accepted.clone()
                    );
                }
            }
        }
    }

    /// Invalidation (`remove`) never corrupts a policy: after removing a
    /// random resident frame, invariants still hold and the page misses
    /// on next access.
    #[test]
    fn invalidation_is_clean(
        frames in 2usize..16,
        pages in trace(32, 120),
        victim_idx in 0usize..16,
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
            }
            let residents = sim.policy().resident_pages();
            if residents.is_empty() {
                continue;
            }
            let (frame, _page) = residents[victim_idx % residents.len()];
            sim.policy_mut().remove(frame);
            sim.policy().check_invariants();
            prop_assert_eq!(sim.policy().page_at(frame), None, "{}", kind);
        }
    }
}
