//! Property-based tests over every replacement policy: random reference
//! strings must never violate structural invariants, and LRU must agree
//! with an executable specification.

use std::collections::VecDeque;

use bpw_replacement::{CacheSim, Lru, PolicyKind};
use proptest::prelude::*;

/// Strategy: a reference string with tunable skew (small page universe
/// produces hits, large produces churn).
fn trace(universe: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..universe, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy keeps its invariants and the simulator's page table
    /// in sync over arbitrary traces and cache sizes.
    #[test]
    fn policies_stay_consistent(
        frames in 2usize..40,
        pages in trace(64, 400),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
            }
            sim.check_consistency();
            prop_assert!(sim.resident_count() <= frames, "{kind}");
            prop_assert_eq!(sim.stats().total(), pages.len() as u64);
        }
    }

    /// The most recently accessed page is always resident afterwards.
    #[test]
    fn last_access_is_resident(
        frames in 2usize..20,
        pages in trace(50, 200),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
                prop_assert!(sim.is_resident(p), "{kind}: page {p} not resident after access");
            }
        }
    }

    /// Once the cache has warmed past `frames` distinct pages, the
    /// resident count equals the frame count for every policy (no frame
    /// leaks, no over-allocation).
    #[test]
    fn cache_fills_and_stays_full(
        frames in 2usize..16,
        seed_pages in trace(200, 300),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            // Guaranteed distinct warm-up.
            for p in 0..frames as u64 {
                sim.access(1_000_000 + p);
            }
            prop_assert_eq!(sim.resident_count(), frames, "{}", kind);
            for &p in &seed_pages {
                sim.access(p);
                prop_assert_eq!(sim.resident_count(), frames, "{}", kind);
            }
        }
    }

    /// LRU agrees exactly with an executable specification (a VecDeque of
    /// page ids, most recent at the front).
    #[test]
    fn lru_matches_reference_model(
        frames in 1usize..24,
        pages in trace(48, 500),
    ) {
        let mut sim = CacheSim::new(Lru::new(frames));
        let mut model: VecDeque<u64> = VecDeque::new();
        for &p in &pages {
            let model_hit = model.contains(&p);
            let sim_hit = sim.access(p);
            prop_assert_eq!(model_hit, sim_hit, "hit/miss diverged on page {}", p);
            if model_hit {
                let pos = model.iter().position(|&x| x == p).unwrap();
                model.remove(pos);
            } else if model.len() == frames {
                model.pop_back();
            }
            model.push_front(p);
            // Resident sets must agree.
            for &m in &model {
                prop_assert!(sim.is_resident(m), "model page {} missing", m);
            }
            prop_assert_eq!(model.len(), sim.resident_count());
        }
    }

    /// Hit ratios are trace-deterministic: two runs of the same trace
    /// give identical statistics for every policy.
    #[test]
    fn deterministic_replay(
        frames in 2usize..16,
        pages in trace(32, 200),
    ) {
        for kind in PolicyKind::ALL {
            let mut a = CacheSim::new(kind.build(frames));
            let mut b = CacheSim::new(kind.build(frames));
            let sa = a.run(pages.iter().copied());
            let sb = b.run(pages.iter().copied());
            prop_assert_eq!(sa, sb, "{} replay diverged", kind);
        }
    }

    /// The `evictable` filter contract: the buffer pool's filter has a
    /// side effect (it invalidates the frame it accepts), so a policy
    /// must evict exactly the frame the filter accepted — one acceptance
    /// per decision, and it is the victim. (LRU-K and LFU once violated
    /// this with keep-scanning min-searches; this test pins the fix for
    /// every policy.)
    #[test]
    fn filter_acceptance_is_the_victim(
        frames in 2usize..16,
        warm in trace(64, 80),
        miss_page in 1_000_000u64..1_000_100,
        pinned_mask in any::<u32>(),
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &warm {
                sim.access(p);
            }
            if sim.resident_count() < frames {
                continue; // not full: no eviction decision to test
            }
            let mut accepted = Vec::new();
            let out = sim.policy_mut().record_miss(miss_page, None, &mut |f| {
                // Reject a pseudo-random subset (as pins would), accept
                // the rest — recording every acceptance.
                if pinned_mask & (1 << (f % 31)) != 0 {
                    false
                } else {
                    accepted.push(f);
                    true
                }
            });
            match out.frame() {
                Some(victim_frame) => {
                    prop_assert_eq!(
                        &accepted,
                        &vec![victim_frame],
                        "{}: filter accepted {:?} but evicted {:?}",
                        kind,
                        accepted.clone(),
                        victim_frame
                    );
                }
                None => {
                    prop_assert!(
                        accepted.is_empty(),
                        "{}: accepted {:?} but evicted nothing",
                        kind,
                        accepted.clone()
                    );
                }
            }
        }
    }

    /// Invalidation (`remove`) never corrupts a policy: after removing a
    /// random resident frame, invariants still hold and the page misses
    /// on next access.
    #[test]
    fn invalidation_is_clean(
        frames in 2usize..16,
        pages in trace(32, 120),
        victim_idx in 0usize..16,
    ) {
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(frames));
            for &p in &pages {
                sim.access(p);
            }
            let residents = sim.policy().resident_pages();
            if residents.is_empty() {
                continue;
            }
            let (frame, _page) = residents[victim_idx % residents.len()];
            sim.policy_mut().remove(frame);
            sim.policy().check_invariants();
            prop_assert_eq!(sim.policy().page_at(frame), None, "{}", kind);
        }
    }
}
