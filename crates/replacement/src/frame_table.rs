//! Per-frame residency bookkeeping shared by all policies.

use crate::traits::{FrameId, PageId};

/// Tracks which page (if any) each frame holds. Shared by every policy so
/// that `page_at` / `resident_count` behave uniformly.
pub struct FrameTable {
    page_of: Vec<PageId>,
    present: Vec<bool>,
    resident: usize,
}

impl FrameTable {
    /// Table for `n` frames, all initially empty.
    pub fn new(n: usize) -> Self {
        FrameTable {
            page_of: vec![0; n],
            present: vec![false; n],
            resident: 0,
        }
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.present.len()
    }

    /// Number of occupied frames.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// True if `frame` holds a page.
    pub fn is_present(&self, frame: FrameId) -> bool {
        self.present[frame as usize]
    }

    /// Page held by `frame`, if any.
    pub fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.present[frame as usize].then(|| self.page_of[frame as usize])
    }

    /// Bind `page` to an empty `frame`.
    pub fn bind(&mut self, frame: FrameId, page: PageId) {
        assert!(
            !self.present[frame as usize],
            "frame {frame} already occupied"
        );
        self.present[frame as usize] = true;
        self.page_of[frame as usize] = page;
        self.resident += 1;
    }

    /// Empty `frame`, returning the page it held.
    pub fn unbind(&mut self, frame: FrameId) -> PageId {
        assert!(self.present[frame as usize], "frame {frame} already empty");
        self.present[frame as usize] = false;
        self.resident -= 1;
        self.page_of[frame as usize]
    }

    /// Replace the occupant of `frame`, returning the old page.
    pub fn rebind(&mut self, frame: FrameId, page: PageId) -> PageId {
        let old = self.unbind(frame);
        self.bind(frame, page);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_unbind_cycle() {
        let mut t = FrameTable::new(2);
        assert_eq!(t.resident(), 0);
        t.bind(0, 100);
        assert_eq!(t.page_at(0), Some(100));
        assert_eq!(t.page_at(1), None);
        assert_eq!(t.resident(), 1);
        assert_eq!(t.rebind(0, 200), 100);
        assert_eq!(t.page_at(0), Some(200));
        assert_eq!(t.unbind(0), 200);
        assert_eq!(t.resident(), 0);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_bind_panics() {
        let mut t = FrameTable::new(1);
        t.bind(0, 1);
        t.bind(0, 2);
    }

    #[test]
    #[should_panic(expected = "already empty")]
    fn unbind_empty_panics() {
        let mut t = FrameTable::new(1);
        t.unbind(0);
    }
}
