//! MQ — Multi-Queue replacement (Zhou, Philbin & Li, USENIX 2001).
//! The paper evaluates MQ alongside 2Q and LIRS as an advanced policy
//! whose data structure (a ladder of LRU queues plus a ghost queue)
//! requires lock protection on every access.
//!
//! Pages climb queues `Q0..Qm-1` with access frequency (`Qk` holds pages
//! with roughly `2^k` accesses) and are demoted when they outlive
//! `life_time` accesses without a reference. Evicted pages leave their
//! frequency in the ghost queue `Qout` so a quick return restores their
//! level.

use std::collections::HashMap;

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// Tuning knobs for [`Mq`].
#[derive(Debug, Clone, Copy)]
pub struct MqConfig {
    /// Number of queues in the ladder (paper: 8).
    pub num_queues: usize,
    /// Accesses a page may go unreferenced before demotion
    /// (paper: peak temporal distance; default 2× frames).
    pub life_time: u64,
    /// Ghost queue capacity as a multiple of frames (paper: 4×).
    pub qout_multiple: f64,
}

impl MqConfig {
    /// Paper defaults scaled to `frames`.
    pub fn for_frames(frames: usize) -> Self {
        MqConfig {
            num_queues: 8,
            life_time: (frames as u64 * 2).max(1),
            qout_multiple: 4.0,
        }
    }
}

/// The Multi-Queue replacement policy.
pub struct Mq {
    arena: Arena,
    queues: Vec<List>, // each LRU: front = MRU
    queue_of: Vec<u8>,
    freq: Vec<u64>,
    expire: Vec<u64>,
    now: u64,
    life_time: u64,
    qout: LinkedSet,
    qout_freq: HashMap<PageId, u64>,
    qout_cap: usize,
    table: FrameTable,
}

impl Mq {
    /// Create an MQ policy with the paper's default parameters.
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, MqConfig::for_frames(frames))
    }

    /// Create an MQ policy with explicit parameters.
    pub fn with_config(frames: usize, cfg: MqConfig) -> Self {
        assert!(frames > 0, "MQ needs at least one frame");
        assert!(
            (1..=64).contains(&cfg.num_queues),
            "queue count out of range"
        );
        let mut arena = Arena::new(frames);
        let queues = (0..cfg.num_queues).map(|_| arena.new_list()).collect();
        let qout_cap = ((frames as f64 * cfg.qout_multiple) as usize).max(1);
        Mq {
            arena,
            queues,
            queue_of: vec![0; frames],
            freq: vec![0; frames],
            expire: vec![0; frames],
            now: 0,
            life_time: cfg.life_time.max(1),
            qout: LinkedSet::with_capacity(qout_cap),
            qout_freq: HashMap::with_capacity(qout_cap),
            qout_cap,
            table: FrameTable::new(frames),
        }
    }

    /// Queue level for a page accessed `freq` times.
    fn level_for(&self, freq: u64) -> u8 {
        let lvl = 63 - freq.max(1).leading_zeros() as usize; // floor(log2)
        lvl.min(self.queues.len() - 1) as u8
    }

    /// Queue index currently holding `frame` (test aid).
    pub fn queue_of(&self, frame: FrameId) -> Option<u8> {
        self.table
            .is_present(frame)
            .then(|| self.queue_of[frame as usize])
    }

    /// True if `page` is remembered in Qout (test aid).
    pub fn in_qout(&self, page: PageId) -> bool {
        self.qout.contains(page)
    }

    fn place(&mut self, frame: FrameId, level: u8) {
        self.queue_of[frame as usize] = level;
        self.expire[frame as usize] = self.now + self.life_time;
        self.queues[level as usize].push_front(&mut self.arena, frame);
    }

    /// Demote expired queue tails one level, as MQ does on every access.
    fn adjust(&mut self) {
        for k in (1..self.queues.len()).rev() {
            if let Some(tail) = self.queues[k].back() {
                if self.expire[tail as usize] < self.now {
                    self.queues[k].remove(&mut self.arena, tail);
                    self.place(tail as FrameId, (k - 1) as u8);
                }
            }
        }
    }

    fn remember(&mut self, page: PageId, freq: u64) {
        self.qout.insert_front(page);
        self.qout_freq.insert(page, freq);
        while self.qout.len() > self.qout_cap {
            let dropped = self.qout.pop_oldest().expect("len > 0");
            self.qout_freq.remove(&dropped);
        }
    }
}

impl ReplacementPolicy for Mq {
    fn name(&self) -> &'static str {
        "MQ"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        self.now += 1;
        let f = frame as usize;
        self.freq[f] += 1;
        let level = self.level_for(self.freq[f]);
        self.queues[self.queue_of[f] as usize].remove(&mut self.arena, frame);
        self.place(frame, level);
        self.adjust();
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.now += 1;
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => {
                // Victim: LRU tail of the lowest non-empty queue.
                let mut found = None;
                'search: for k in 0..self.queues.len() {
                    for node in self.queues[k].iter_rev(&self.arena) {
                        if evictable(node as FrameId) {
                            found = Some((k, node as FrameId));
                            break 'search;
                        }
                    }
                }
                let Some((k, f)) = found else {
                    return MissOutcome::NoEvictableFrame;
                };
                self.queues[k].remove(&mut self.arena, f);
                let victim = self.table.unbind(f);
                self.remember(victim, self.freq[f as usize]);
                (f, MissOutcome::Evicted { frame: f, victim })
            }
        };
        // Returning ghost restores its earned frequency.
        let freq = if self.qout.remove(page) {
            self.qout_freq.remove(&page).unwrap_or(0) + 1
        } else {
            1
        };
        self.table.bind(frame, page);
        self.freq[frame as usize] = freq;
        let level = self.level_for(freq);
        self.place(frame, level);
        self.adjust();
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        let k = self.queue_of[frame as usize] as usize;
        self.queues[k].remove(&mut self.arena, frame);
        self.freq[frame as usize] = 0;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        let mut linked = 0;
        for (k, q) in self.queues.iter().enumerate() {
            linked += q.check(&self.arena);
            for node in q.iter(&self.arena) {
                assert!(
                    self.table.is_present(node as FrameId),
                    "queued frame {node} empty"
                );
                assert_eq!(
                    self.queue_of[node as usize] as usize, k,
                    "queue index stale"
                );
            }
        }
        assert_eq!(linked, self.table.resident(), "queues must cover residents");
        assert!(self.qout.len() <= self.qout_cap);
        assert_eq!(self.qout.len(), self.qout_freq.len());
        self.qout.check();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn frequency_climbs_queues() {
        let mut s = CacheSim::new(Mq::new(4));
        s.access(1); // freq 1 -> Q0
        let f = s.frame_of(1).unwrap();
        assert_eq!(s.policy().queue_of(f), Some(0));
        s.access(1); // freq 2 -> Q1
        assert_eq!(s.policy().queue_of(f), Some(1));
        s.access(1);
        s.access(1); // freq 4 -> Q2
        assert_eq!(s.policy().queue_of(f), Some(2));
        s.check_consistency();
    }

    #[test]
    fn evicts_from_lowest_queue() {
        let mut s = CacheSim::new(Mq::new(2));
        s.access(1);
        s.access(1); // 1 in Q1
        s.access(2); // 2 in Q0
        s.access(3); // must evict 2 (lowest queue), not 1
        assert!(s.is_resident(1));
        assert!(!s.is_resident(2));
        s.check_consistency();
    }

    #[test]
    fn ghost_restores_frequency() {
        let mut s = CacheSim::new(Mq::new(2));
        for _ in 0..4 {
            s.access(1); // freq 4
        }
        s.access(2);
        s.access(3); // evicts 2 (Q0); 1 protected in Q2
                     // Evict 1 by filling with cold pages? 1 only demotes over time.
        assert!(s.policy().in_qout(2));
        s.access(2); // ghost return: freq restored to old+1 = 2 -> Q1
        let f = s.frame_of(2).unwrap();
        assert_eq!(s.policy().queue_of(f), Some(1));
        s.check_consistency();
    }

    #[test]
    fn expired_pages_demote() {
        let cfg = MqConfig {
            num_queues: 4,
            life_time: 3,
            qout_multiple: 2.0,
        };
        let mut s = CacheSim::new(Mq::with_config(4, cfg));
        for _ in 0..4 {
            s.access(1); // freq 4 -> Q2
        }
        let f = s.frame_of(1).unwrap();
        assert_eq!(s.policy().queue_of(f), Some(2));
        // Touch other pages past the lifetime: 1 demotes step by step.
        for p in 2..12 {
            s.access(p);
        }
        assert!(s.policy().queue_of(f).unwrap_or(0) < 2 || !s.is_resident(1));
        s.check_consistency();
    }

    #[test]
    fn qout_bounded() {
        let cfg = MqConfig {
            num_queues: 8,
            life_time: 8,
            qout_multiple: 1.0,
        };
        let mut s = CacheSim::new(Mq::with_config(4, cfg));
        for p in 0..200 {
            s.access(p);
        }
        s.check_consistency();
        assert!(s.policy().qout.len() <= 4);
    }

    #[test]
    fn pinned_eviction_skips() {
        let mut s = CacheSim::new(Mq::new(2));
        s.access(1);
        s.access(2);
        let f1 = s.frame_of(1).unwrap();
        let out = s.policy_mut().record_miss(3, None, &mut |f| f != f1);
        assert_eq!(out.frame(), Some(s.frame_of(2).unwrap()));
    }

    #[test]
    fn random_trace_consistency() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut s = CacheSim::new(Mq::new(16));
        for _ in 0..3000 {
            s.access(rng.gen_range(0..50u64));
        }
        s.check_consistency();
    }
}
