//! Online adaptive replacement: the sampled access tap that feeds the
//! [`Advisor`](crate::advisor::Advisor)'s shadow caches.
//!
//! The tap follows the bpw-trace discipline for zero-cost-when-off
//! instrumentation: the *disabled* cost on the hot path is a single
//! relaxed atomic load, and the *enabled* cost (paid only by every
//! Nth access — the pool keeps the 1-in-N counter session-local so
//! even the countdown is unshared) is a couple of relaxed atomics into
//! a fixed lossy ring. No locks, no allocation, and overwrites are
//! counted, never blocked on: a replacement advisor can tolerate losing
//! samples, the hit path can't tolerate waiting.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::traits::PageId;

/// A lossy, lock-free ring of sampled page accesses. Producers are the
/// pool's fetch paths (many threads); the consumer is the advisor
/// driver, which [`SampleTap::drain`]s periodically.
pub struct SampleTap {
    enabled: AtomicBool,
    /// 1-in-N sampling period the pool applies per session.
    period: u64,
    /// Slots hold `page + 1`; 0 means empty. Capacity is a power of
    /// two so indexing is a mask.
    ring: Vec<AtomicU64>,
    head: AtomicUsize,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl SampleTap {
    /// A tap sampling every `period`-th access into a ring of
    /// `capacity` slots (rounded up to a power of two).
    pub fn new(period: u64, capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SampleTap {
            enabled: AtomicBool::new(true),
            period: period.max(1),
            ring: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The 1-in-N sampling period sessions should apply.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Pause/resume sampling (e.g. while a swap is mid-flight there is
    /// no point scoring the transition noise).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether producers should bother sampling — one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one sampled access. Lossy: overwriting an unconsumed
    /// sample counts it dropped rather than waiting.
    #[inline]
    pub fn push(&self, page: PageId) {
        if !self.is_enabled() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed) & (self.ring.len() - 1);
        let prev = self.ring[i].swap(page + 1, Ordering::Relaxed);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        if prev != 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Take every unconsumed sample. Order is approximate (the ring is
    /// multi-producer and lossy) — fine for shadow-cache scoring, which
    /// only needs a statistically faithful stream.
    pub fn drain(&self, out: &mut Vec<PageId>) {
        for slot in &self.ring {
            let v = slot.swap(0, Ordering::Relaxed);
            if v != 0 {
                out.push(v - 1);
            }
        }
    }

    /// Samples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Samples overwritten before the advisor drained them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_round_trip() {
        let tap = SampleTap::new(8, 16);
        assert_eq!(tap.period(), 8);
        for p in 0..10u64 {
            tap.push(p);
        }
        let mut out = Vec::new();
        tap.drain(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..10u64).collect::<Vec<_>>());
        assert_eq!(tap.pushed(), 10);
        assert_eq!(tap.dropped(), 0);
        // Drained slots are empty.
        out.clear();
        tap.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn overflow_drops_not_blocks() {
        let tap = SampleTap::new(1, 4);
        for p in 0..100u64 {
            tap.push(p);
        }
        assert_eq!(tap.pushed(), 100);
        assert_eq!(tap.dropped(), 100 - 4);
        let mut out = Vec::new();
        tap.drain(&mut out);
        assert_eq!(out.len(), 4);
        // The survivors are the most recent window.
        assert!(out.iter().all(|&p| p >= 96));
    }

    #[test]
    fn disabled_tap_records_nothing() {
        let tap = SampleTap::new(1, 8);
        tap.set_enabled(false);
        assert!(!tap.is_enabled());
        tap.push(7);
        assert_eq!(tap.pushed(), 0);
        tap.set_enabled(true);
        tap.push(7);
        assert_eq!(tap.pushed(), 1);
    }

    #[test]
    fn page_zero_survives_the_sentinel_encoding() {
        let tap = SampleTap::new(1, 4);
        tap.push(0);
        let mut out = Vec::new();
        tap.drain(&mut out);
        assert_eq!(out, vec![0]);
    }
}
