//! LRU-K with K = 2 (O'Neil, O'Neil & Weikum, SIGMOD 1993) — the
//! algorithm 2Q was invented to approximate cheaply, and the ancestor of
//! the whole "deep access history" family the paper wraps. Eviction
//! picks the page with the greatest *backward K-distance*: the page
//! whose K-th most recent reference is oldest. Pages referenced fewer
//! than K times have infinite distance and are preferred victims (among
//! themselves, LRU by last reference).
//!
//! History for evicted pages is retained for a bounded period (the
//! paper's Retained Information Period), so a page's second reference
//! shortly after eviction still counts.

use std::collections::HashMap;

use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, PageId, ReplacementPolicy};

/// Tuning knobs for [`LruK`].
#[derive(Debug, Clone, Copy)]
pub struct LruKConfig {
    /// Retained-history capacity as a multiple of frames.
    pub history_multiple: f64,
}

impl Default for LruKConfig {
    fn default() -> Self {
        LruKConfig {
            history_multiple: 2.0,
        }
    }
}

/// The LRU-2 replacement policy.
pub struct LruK {
    /// Per-frame reference times: `last[f]` and `prev[f]` (0 = never).
    last: Vec<u64>,
    prev: Vec<u64>,
    table: FrameTable,
    now: u64,
    /// Retained history of evicted pages: page -> (last, prev).
    history: HashMap<PageId, (u64, u64)>,
    history_order: LinkedSet,
    history_cap: usize,
}

impl LruK {
    /// Create an LRU-2 policy with default parameters.
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, LruKConfig::default())
    }

    /// Create an LRU-2 policy with explicit parameters.
    pub fn with_config(frames: usize, cfg: LruKConfig) -> Self {
        assert!(frames > 0, "LRU-2 needs at least one frame");
        let cap = ((frames as f64 * cfg.history_multiple) as usize).max(1);
        LruK {
            last: vec![0; frames],
            prev: vec![0; frames],
            table: FrameTable::new(frames),
            now: 0,
            history: HashMap::with_capacity(cap),
            history_order: LinkedSet::with_capacity(cap),
            history_cap: cap,
        }
    }

    /// True if `page` has retained (post-eviction) history (test aid).
    pub fn has_history(&self, page: PageId) -> bool {
        self.history.contains_key(&page)
    }

    fn remember(&mut self, page: PageId, last: u64, prev: u64) {
        self.history.insert(page, (last, prev));
        self.history_order.insert_front(page);
        while self.history_order.len() > self.history_cap {
            let old = self.history_order.pop_oldest().expect("len > 0");
            self.history.remove(&old);
        }
    }

    /// Victim: maximum backward-2 distance, i.e. minimum `prev` time;
    /// pages with `prev == 0` (fewer than 2 refs) are infinitely distant
    /// and chosen first, LRU by `last` among themselves.
    ///
    /// The `evictable` filter may have side effects (the pool invalidates
    /// the frame it accepts), so it is probed once per *chosen* victim:
    /// find the metadata-minimum, offer it, and exclude it on rejection.
    fn pick_victim(&self, evictable: &mut dyn FnMut(FrameId) -> bool) -> Option<FrameId> {
        let n = self.table.frames();
        let mut rejected = vec![false; n];
        loop {
            let mut best: Option<(FrameId, u64, u64)> = None; // (frame, prev, last)
            for f in 0..n as FrameId {
                if rejected[f as usize] || !self.table.is_present(f) {
                    continue;
                }
                let (p, l) = (self.prev[f as usize], self.last[f as usize]);
                let better = match best {
                    None => true,
                    Some((_, bp, bl)) => (p, l) < (bp, bl),
                };
                if better {
                    best = Some((f, p, l));
                }
            }
            let (f, _, _) = best?;
            if evictable(f) {
                return Some(f);
            }
            rejected[f as usize] = true;
        }
    }
}

impl ReplacementPolicy for LruK {
    fn name(&self) -> &'static str {
        "LRU-2"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        self.now += 1;
        let f = frame as usize;
        self.prev[f] = self.last[f];
        self.last[f] = self.now;
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.now += 1;
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => {
                let Some(f) = self.pick_victim(evictable) else {
                    return MissOutcome::NoEvictableFrame;
                };
                let victim = self.table.unbind(f);
                self.remember(victim, self.last[f as usize], self.prev[f as usize]);
                (f, MissOutcome::Evicted { frame: f, victim })
            }
        };
        self.table.bind(frame, page);
        let fi = frame as usize;
        if let Some((last, _)) = self.history.remove(&page) {
            // Second reference within the retained period: real history.
            self.history_order.remove(page);
            self.prev[fi] = last;
        } else {
            self.prev[fi] = 0;
        }
        self.last[fi] = self.now;
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        let f = frame as usize;
        self.last[f] = 0;
        self.prev[f] = 0;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn check_invariants(&self) {
        assert!(self.history.len() <= self.history_cap);
        assert_eq!(self.history.len(), self.history_order.len());
        self.history_order.check();
        for f in 0..self.table.frames() {
            if self.table.is_present(f as FrameId) {
                assert!(
                    self.last[f] > 0,
                    "resident frame {f} without a reference time"
                );
                assert!(self.prev[f] < self.last[f] || self.prev[f] == 0);
                let page = self.table.page_at(f as FrameId).unwrap();
                assert!(
                    !self.history.contains_key(&page),
                    "resident page {page} in history"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn one_shot_pages_evicted_before_hot_pages() {
        let mut s = CacheSim::new(LruK::new(4));
        s.access(1);
        s.access(1); // page 1: two references
        s.access(2);
        s.access(2); // page 2: two references
        s.access(3); // one reference
        s.access(4); // one reference
        s.access(5); // must evict 3 or 4 (infinite distance), not 1 or 2
        assert!(s.is_resident(1) && s.is_resident(2));
        assert!(!s.is_resident(3) || !s.is_resident(4));
        s.check_consistency();
    }

    #[test]
    fn among_one_shots_lru_wins() {
        let mut s = CacheSim::new(LruK::new(3));
        s.access(1);
        s.access(2);
        s.access(3);
        s.access(4); // all single-ref: evict the oldest (1)
        assert!(!s.is_resident(1));
        assert!(s.is_resident(2) && s.is_resident(3));
        s.check_consistency();
    }

    #[test]
    fn retained_history_restores_distance() {
        let mut s = CacheSim::new(LruK::new(2));
        s.access(1); // 1 in
        s.access(2);
        s.access(3); // evicts 1 (oldest one-shot); history retained
        assert!(s.policy().has_history(1));
        s.access(1); // back with prev = its old last: now a 2-ref page
                     // A subsequent miss must spare 1 and evict a one-shot page.
        s.access(9);
        assert!(s.is_resident(1), "page with restored history evicted");
        s.check_consistency();
    }

    #[test]
    fn scan_resistance_vs_lru() {
        // Hot set referenced repeatedly + one-shot scan: LRU-2 keeps the
        // hot set; plain LRU loses it.
        let frames = 16;
        let mut trace = Vec::new();
        for _ in 0..10 {
            for h in 0..8u64 {
                trace.push(h);
            }
        }
        for p in 100..124u64 {
            trace.push(p); // scan of 24 one-shot pages
        }
        for h in 0..8u64 {
            trace.push(h); // hot re-reference after the scan
        }
        let mut lruk = CacheSim::new(LruK::new(frames));
        let mut lru = CacheSim::new(crate::lru::Lru::new(frames));
        let a = lruk.run(trace.iter().copied());
        let b = lru.run(trace.iter().copied());
        assert!(
            a.hits > b.hits,
            "LRU-2 ({}) should out-hit LRU ({}) around a scan",
            a.hits,
            b.hits
        );
        lruk.check_consistency();
    }

    #[test]
    fn history_is_bounded() {
        let mut s = CacheSim::new(LruK::with_config(
            4,
            LruKConfig {
                history_multiple: 1.0,
            },
        ));
        for p in 0..200u64 {
            s.access(p);
        }
        s.policy().check_invariants();
    }

    #[test]
    fn eviction_filter_respected() {
        let mut s = CacheSim::new(LruK::new(2));
        s.access(1);
        s.access(2);
        let f1 = s.frame_of(1).unwrap();
        let out = s.policy_mut().record_miss(9, None, &mut |f| f != f1);
        assert_ne!(out.frame(), Some(f1));
        let out = s.policy_mut().record_miss(8, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }

    #[test]
    fn random_consistency() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut s = CacheSim::new(LruK::new(12));
        for _ in 0..3000 {
            s.access(rng.gen_range(0..40u64));
        }
        s.check_consistency();
    }
}
