//! SEQ-style sequence-detecting LRU.
//!
//! The paper's §III-A argues private per-thread FIFO queues are
//! *essential* because "some replacement algorithms like SEQ
//! [Glass & Cao 1997] ... need the ordering information for detection of
//! access patterns", and §II notes DB2's policy likewise detects
//! sequential vs random patterns. This policy is that class's
//! representative: an LRU that watches the **order** of the accesses it
//! is told about, detects sequential runs (`page`, `page+1`, `page+2`,
//! …), and marks pages belonging to long runs for early eviction — the
//! classic defense against scans flushing the random working set.
//!
//! The detector is deliberately order-sensitive (it compares each access
//! to the immediately preceding one), exactly like fault-sequence
//! detection in SEQ: feed it a thread's accesses contiguously (as
//! BP-Wrapper's private queues do at commit time) and it sees the runs;
//! interleave accesses from concurrent threads at access granularity (as
//! lock-per-access or a shared queue would) and detection collapses.
//! The `ablation_queue_design` benchmark measures precisely this.

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// Tuning knobs for [`SeqLru`].
#[derive(Debug, Clone, Copy)]
pub struct SeqLruConfig {
    /// Consecutive-page run length after which accesses count as
    /// sequential (SEQ used ~20 faults; scans here are page-granular).
    pub min_run: u32,
}

impl Default for SeqLruConfig {
    fn default() -> Self {
        SeqLruConfig { min_run: 8 }
    }
}

/// LRU with order-based sequential-run detection and early eviction of
/// sequential pages.
pub struct SeqLru {
    arena: Arena,
    /// Random (non-sequential) pages: classic LRU list, front = MRU.
    main: List,
    /// Detected-sequential pages: FIFO, evicted before anything in
    /// `main`.
    seq: List,
    table: FrameTable,
    /// Last page id observed (hit or miss), for run detection.
    last_page: Option<PageId>,
    /// Length of the current consecutive run.
    run_len: u32,
    min_run: u32,
    detected_runs: u64,
    sequential_accesses: u64,
}

impl SeqLru {
    /// Create with default detection parameters.
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, SeqLruConfig::default())
    }

    /// Create with an explicit run threshold.
    pub fn with_config(frames: usize, cfg: SeqLruConfig) -> Self {
        assert!(frames > 0, "SeqLru needs at least one frame");
        assert!(cfg.min_run >= 2, "run threshold must be at least 2");
        let mut arena = Arena::new(frames);
        let main = arena.new_list();
        let seq = arena.new_list();
        SeqLru {
            arena,
            main,
            seq,
            table: FrameTable::new(frames),
            last_page: None,
            run_len: 0,
            min_run: cfg.min_run,
            detected_runs: 0,
            sequential_accesses: 0,
        }
    }

    /// Update the run detector with the page just accessed; returns true
    /// if this access extends a detected (>= min_run) sequential run.
    fn observe(&mut self, page: PageId) -> bool {
        let consecutive = self.last_page == Some(page.wrapping_sub(1));
        self.last_page = Some(page);
        if consecutive {
            self.run_len += 1;
            if self.run_len == self.min_run {
                self.detected_runs += 1;
            }
        } else {
            self.run_len = 1;
        }
        let seq = self.run_len >= self.min_run;
        if seq {
            self.sequential_accesses += 1;
        }
        seq
    }

    /// Number of runs that crossed the detection threshold (test aid).
    pub fn detected_runs(&self) -> u64 {
        self.detected_runs
    }

    /// Accesses classified as sequential (test aid).
    pub fn sequential_accesses(&self) -> u64 {
        self.sequential_accesses
    }

    /// Pages currently marked sequential (test aid).
    pub fn sequential_resident(&self) -> usize {
        self.seq.len()
    }

    fn unlink(&mut self, frame: FrameId) {
        if self.main.contains(&self.arena, frame) {
            self.main.remove(&mut self.arena, frame);
        } else {
            self.seq.remove(&mut self.arena, frame);
        }
    }
}

impl ReplacementPolicy for SeqLru {
    fn name(&self) -> &'static str {
        "SEQ-LRU"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        let Some(page) = self.table.page_at(frame) else {
            return;
        };
        let seq = self.observe(page);
        self.unlink(frame);
        if seq {
            // Part of an ongoing scan: schedule for early eviction.
            self.seq.push_front(&mut self.arena, frame);
        } else {
            self.main.push_front(&mut self.arena, frame);
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let seq = self.observe(page);
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => {
                // Victims: oldest sequential page first, then LRU of main.
                let found = self
                    .seq
                    .iter_rev(&self.arena)
                    .find(|&f| evictable(f))
                    .map(|f| (f, true))
                    .or_else(|| {
                        self.main
                            .iter_rev(&self.arena)
                            .find(|&f| evictable(f))
                            .map(|f| (f, false))
                    });
                let Some((f, from_seq)) = found else {
                    return MissOutcome::NoEvictableFrame;
                };
                if from_seq {
                    self.seq.remove(&mut self.arena, f);
                } else {
                    self.main.remove(&mut self.arena, f);
                }
                let victim = self.table.unbind(f);
                (f, MissOutcome::Evicted { frame: f, victim })
            }
        };
        self.table.bind(frame, page);
        if seq {
            self.seq.push_front(&mut self.arena, frame);
        } else {
            self.main.push_front(&mut self.arena, frame);
        }
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        self.unlink(frame);
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        let main = self.main.check(&self.arena);
        let seq = self.seq.check(&self.arena);
        assert_eq!(
            main + seq,
            self.table.resident(),
            "lists must cover residents"
        );
        for f in 0..self.table.frames() as FrameId {
            let linked = self.main.contains(&self.arena, f) || self.seq.contains(&self.arena, f);
            assert_eq!(
                linked,
                self.table.is_present(f),
                "frame {f} residency mismatch"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn detects_contiguous_runs() {
        let mut s = CacheSim::new(SeqLru::new(64));
        for p in 100..150u64 {
            s.access(p);
        }
        assert_eq!(s.policy().detected_runs(), 1);
        assert!(s.policy().sequential_accesses() >= 40);
        assert!(s.policy().sequential_resident() > 0);
        s.check_consistency();
    }

    #[test]
    fn interleaving_breaks_detection() {
        // Two scans interleaved access-by-access: no run survives.
        let mut s = CacheSim::new(SeqLru::new(64));
        for i in 0..25u64 {
            s.access(100 + i);
            s.access(1000 + i);
        }
        assert_eq!(s.policy().detected_runs(), 0);
        assert_eq!(s.policy().sequential_accesses(), 0);
        s.check_consistency();
    }

    #[test]
    fn scan_pages_evicted_before_random_pages() {
        let mut s = CacheSim::new(SeqLru::new(32));
        // Random working set (non-consecutive ids).
        for &p in &[3u64, 900, 77, 4012, 555, 13, 2048, 10_000] {
            s.access(p);
        }
        // A long scan fills the rest and then some.
        for p in 200..240u64 {
            s.access(p);
        }
        // Every random page must still be resident: the scan ate itself.
        for &p in &[3u64, 900, 77, 4012, 555, 13, 2048, 10_000] {
            assert!(s.is_resident(p), "random page {p} evicted by scan");
        }
        s.check_consistency();
    }

    #[test]
    fn rereferenced_page_leaves_seq_class() {
        let mut s = CacheSim::new(SeqLru::new(64));
        for p in 0..20u64 {
            s.access(p); // run detected; pages marked sequential
        }
        let seq_before = s.policy().sequential_resident();
        assert!(seq_before > 0);
        s.access(15); // out-of-order re-reference of a seq page: back to main
        assert_eq!(s.policy().sequential_resident(), seq_before - 1);
        s.check_consistency();
    }

    #[test]
    fn short_runs_not_classified() {
        let mut s = CacheSim::new(SeqLru::new(32));
        for start in [0u64, 100, 200, 300] {
            for p in start..start + 5 {
                s.access(p); // runs of 5 < min_run of 8
            }
        }
        assert_eq!(s.policy().detected_runs(), 0);
        s.check_consistency();
    }

    #[test]
    fn behaves_as_plain_lru_without_sequences() {
        let mut seq = CacheSim::new(SeqLru::new(8));
        let mut lru = CacheSim::new(crate::lru::Lru::new(8));
        // Strided ids: never consecutive.
        let trace: Vec<u64> = (0..500u64).map(|i| (i * 17) % 64).collect();
        let a = seq.run(trace.iter().copied());
        let b = lru.run(trace.iter().copied());
        assert_eq!(a, b, "without runs, SEQ-LRU must equal LRU");
    }

    #[test]
    fn pinned_filter_respected() {
        let mut s = CacheSim::new(SeqLru::new(4));
        for p in [10u64, 20, 30, 40] {
            s.access(p);
        }
        let f = s.frame_of(10).unwrap();
        let out = s.policy_mut().record_miss(99, None, &mut |x| x != f);
        assert_ne!(out.frame(), Some(f));
        let out = s.policy_mut().record_miss(98, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }
}
