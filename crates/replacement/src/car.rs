//! CAR — Clock with Adaptive Replacement (Bansal & Modha, FAST 2004).
//! The clock approximation of ARC, cited by the paper as the kind of
//! lock-friendly transformation that "usually cannot achieve the high hit
//! ratio" of its original. It is included both for the hit-ratio
//! comparisons and because its hit path (set a reference bit) needs no
//! lock, like CLOCK.

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// The CAR replacement policy: two clocks `T1` (recency) and `T2`
/// (frequency) plus ghost lists `B1`/`B2` driving the adaptive target `p`.
pub struct Car {
    arena: Arena,
    t1: List, // clock: front = hand position, back = insertion point
    t2: List,
    referenced: Vec<bool>,
    b1: LinkedSet,
    b2: LinkedSet,
    p: usize,
    table: FrameTable,
}

impl Car {
    /// Create a CAR policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "CAR needs at least one frame");
        let mut arena = Arena::new(frames);
        let t1 = arena.new_list();
        let t2 = arena.new_list();
        Car {
            arena,
            t1,
            t2,
            referenced: vec![false; frames],
            b1: LinkedSet::with_capacity(frames),
            b2: LinkedSet::with_capacity(frames),
            p: 0,
            table: FrameTable::new(frames),
        }
    }

    /// Current adaptation target (test aid).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sizes of `(T1, T2, B1, B2)` (test aid).
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// True if `page` is remembered in a ghost list (test aid).
    pub fn is_ghost(&self, page: PageId) -> bool {
        self.b1.contains(page) || self.b2.contains(page)
    }

    /// CAR's `replace()`: sweep the two clocks until an unreferenced,
    /// evictable page is found. Referenced `T1` pages earn promotion to
    /// `T2`; referenced `T2` pages get a second chance at the tail.
    fn replace(
        &mut self,
        remember_t1: bool,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> Option<(FrameId, PageId)> {
        // Each full pass clears reference bits, so a victim emerges within
        // two sweeps; pinned pages may force extra rotations, so bound the
        // loop and bail out if nothing is evictable.
        let total = self.t1.len() + self.t2.len();
        let mut steps = 0usize;
        let max_steps = 4 * total.max(1);
        while steps < max_steps {
            steps += 1;
            if self.t1.len() >= self.p.max(1) && !self.t1.is_empty() {
                let head = self.t1.front().expect("t1 non-empty");
                if self.referenced[head as usize] {
                    self.referenced[head as usize] = false;
                    self.t1.remove(&mut self.arena, head);
                    self.t2.push_back(&mut self.arena, head);
                } else if evictable(head) {
                    self.t1.remove(&mut self.arena, head);
                    let victim = self.table.unbind(head);
                    if remember_t1 {
                        self.b1.insert_front(victim);
                    }
                    return Some((head, victim));
                } else {
                    self.t1.move_to_back(&mut self.arena, head);
                }
            } else if !self.t2.is_empty() {
                let head = self.t2.front().expect("t2 non-empty");
                if self.referenced[head as usize] {
                    self.referenced[head as usize] = false;
                    self.t2.move_to_back(&mut self.arena, head);
                } else if evictable(head) {
                    self.t2.remove(&mut self.arena, head);
                    let victim = self.table.unbind(head);
                    self.b2.insert_front(victim);
                    return Some((head, victim));
                } else {
                    self.t2.move_to_back(&mut self.arena, head);
                }
            } else if !self.t1.is_empty() {
                // p may exceed |T1|; fall back to sweeping T1.
                let head = self.t1.front().expect("t1 non-empty");
                if self.referenced[head as usize] {
                    self.referenced[head as usize] = false;
                    self.t1.remove(&mut self.arena, head);
                    self.t2.push_back(&mut self.arena, head);
                } else if evictable(head) {
                    self.t1.remove(&mut self.arena, head);
                    let victim = self.table.unbind(head);
                    if remember_t1 {
                        self.b1.insert_front(victim);
                    }
                    return Some((head, victim));
                } else {
                    self.t1.move_to_back(&mut self.arena, head);
                }
            } else {
                return None;
            }
        }
        None
    }
}

impl ReplacementPolicy for Car {
    fn name(&self) -> &'static str {
        "CAR"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        // CLOCK-like hit path: set the bit, move nothing.
        if self.table.is_present(frame) {
            self.referenced[frame as usize] = true;
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let c = self.table.frames();
        let in_b1 = self.b1.contains(page);
        let in_b2 = !in_b1 && self.b2.contains(page);
        let mut remember_t1 = true;

        if in_b1 {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
        } else if in_b2 {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
        } else {
            // History bound maintenance (CAR lines 12-15). When B1 is
            // empty the T1 eviction below is discarded, not remembered,
            // to preserve |T1|+|B1| <= c. Unlike ARC, both checks must
            // run: the sweep below may promote referenced T1 pages into
            // T2 and then evict into B2, so `|T1|+|B1| >= c` does not
            // imply the total directory has slack.
            if self.t1.len() + self.b1.len() >= c && self.b1.pop_oldest().is_none() {
                remember_t1 = false;
            }
            if self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() >= 2 * c {
                self.b2.pop_oldest();
            }
        }

        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => match self.replace(remember_t1, evictable) {
                Some((f, victim)) => (f, MissOutcome::Evicted { frame: f, victim }),
                None => return MissOutcome::NoEvictableFrame,
            },
        };

        self.table.bind(frame, page);
        self.referenced[frame as usize] = false;
        if in_b1 {
            self.b1.remove(page);
            self.t2.push_back(&mut self.arena, frame);
        } else if in_b2 {
            self.b2.remove(page);
            self.t2.push_back(&mut self.arena, frame);
        } else {
            self.t1.push_back(&mut self.arena, frame);
        }
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        if self.t1.contains(&self.arena, frame) {
            self.t1.remove(&mut self.arena, frame);
        } else {
            self.t2.remove(&mut self.arena, frame);
        }
        self.referenced[frame as usize] = false;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        let c = self.table.frames();
        let t1 = self.t1.check(&self.arena);
        let t2 = self.t2.check(&self.arena);
        self.b1.check();
        self.b2.check();
        assert_eq!(t1 + t2, self.table.resident());
        assert!(t1 + t2 <= c);
        assert!(self.p <= c);
        assert!(t1 + self.b1.len() <= c, "|T1|+|B1| exceeds c");
        assert!(
            t1 + t2 + self.b1.len() + self.b2.len() <= 2 * c,
            "directory exceeds 2c"
        );
        for f in 0..c as FrameId {
            let linked = self.t1.contains(&self.arena, f) || self.t2.contains(&self.arena, f);
            assert_eq!(linked, self.table.is_present(f));
            if !self.table.is_present(f) {
                assert!(!self.referenced[f as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn hit_sets_bit_only() {
        let mut s = CacheSim::new(Car::new(4));
        s.access(1);
        let f = s.frame_of(1).unwrap();
        assert!(!s.policy().referenced[f as usize]);
        s.access(1);
        assert!(s.policy().referenced[f as usize]);
        assert_eq!(s.policy().list_sizes().0, 1); // still in T1
        s.check_consistency();
    }

    #[test]
    fn referenced_t1_promotes_to_t2_on_sweep() {
        let mut s = CacheSim::new(Car::new(2));
        s.access(1);
        s.access(1); // bit set
        s.access(2);
        s.access(3); // sweep: 1 (referenced) promoted to T2, victim found
        assert!(s.is_resident(1), "referenced page must survive sweep");
        let (_, t2, _, _) = s.policy().list_sizes();
        assert!(t2 >= 1);
        s.check_consistency();
    }

    #[test]
    fn ghost_hits_adapt_p() {
        let mut s = CacheSim::new(Car::new(4));
        s.access(1);
        s.access(1); // reference bit set: survives the first sweep into T2
        for p in [2, 3, 4] {
            s.access(p);
        }
        s.access(5); // sweep promotes 1, evicts 2 unremembered (|T1|=c case)
        s.access(6); // now |T1|+|B1| < c: this eviction lands in B1
        let ghost: Vec<PageId> = (1..7).filter(|&p| s.policy().b1.contains(p)).collect();
        assert!(!ghost.is_empty(), "expected a B1 ghost");
        let before = s.policy().p();
        s.access(ghost[0]);
        assert!(s.policy().p() >= before.max(1), "B1 hit must raise p");
        s.check_consistency();
    }

    #[test]
    fn bounded_under_churn() {
        let mut s = CacheSim::new(Car::new(8));
        for i in 0..2000u64 {
            s.access(i % 30);
            if i % 250 == 0 {
                s.check_consistency();
            }
        }
        s.check_consistency();
    }

    #[test]
    fn pinned_pages_rotate_not_evict() {
        let mut s = CacheSim::new(Car::new(3));
        for p in [1, 2, 3] {
            s.access(p);
        }
        let f1 = s.frame_of(1).unwrap();
        let out = s.policy_mut().record_miss(9, None, &mut |f| f != f1);
        assert_ne!(out.frame(), Some(f1));
        assert!(out.victim().is_some());
    }

    #[test]
    fn all_pinned_gives_up() {
        let mut s = CacheSim::new(Car::new(2));
        s.access(1);
        s.access(2);
        let out = s.policy_mut().record_miss(9, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
        s.check_consistency();
    }
}
