//! LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS
//! 2002). One of the advanced policies the paper cites as having no
//! faithful clock approximation and therefore needing BP-Wrapper to be
//! deployable in a highly concurrent DBMS.
//!
//! Pages are classified by *inter-reference recency* (IRR): LIR (low-IRR,
//! "hot") pages own most of the cache; HIR pages get a small allocation
//! (`lhirs`, 1% by default) and are evicted quickly — but their history
//! stays on the LIRS stack `S`, so a re-reference with small reuse
//! distance promotes them to LIR.
//!
//! # Structures
//!
//! * Stack `S`: recency-ordered, holds LIR pages, resident HIR pages, and
//!   *non-resident* HIR pages (ghosts). Its bottom entry is always LIR
//!   (maintained by *stack pruning*).
//! * Queue `Q`: resident HIR pages in last-access order; the front is the
//!   eviction candidate.
//!
//! The number of non-resident entries retained in `S` is bounded
//! (`ghost_cap`, default 2× frames), as in all practical LIRS
//! deployments; the oldest ghost is dropped on overflow. Ghost creation
//! order matches stack order (evictions pop the minimum last-access time
//! in `Q`), so a FIFO of ghosts identifies the lowest one in `S` in O(1).

use std::collections::HashMap;

use crate::arena::{Arena, GhostSlots, List};
use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// Tuning knobs for [`Lirs`].
#[derive(Debug, Clone, Copy)]
pub struct LirsConfig {
    /// Fraction of frames allocated to resident HIR pages (paper: 1%).
    pub hir_fraction: f64,
    /// Ghost (non-resident HIR) capacity as a multiple of frames.
    pub ghost_multiple: f64,
}

impl Default for LirsConfig {
    fn default() -> Self {
        LirsConfig {
            hir_fraction: 0.01,
            ghost_multiple: 2.0,
        }
    }
}

/// The LIRS replacement policy.
pub struct Lirs {
    arena: Arena,
    /// Recency stack. Node ids: `f` for frame `f`, ghost slots above `2*frames`.
    s: List,
    /// Resident-HIR queue. Node ids: `frames + f` for frame `f`.
    q: List,
    is_lir: Vec<bool>,
    lir_count: usize,
    llirs: usize,
    ghost_slots: GhostSlots,
    ghost_page: Vec<PageId>,        // indexed by slot - ghost_base
    ghost_of: HashMap<PageId, u32>, // page -> ghost node
    ghost_order: LinkedSet,         // ghost pages, newest first
    table: FrameTable,
}

impl Lirs {
    /// Create a LIRS policy with default parameters (1% HIR allocation).
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, LirsConfig::default())
    }

    /// Create a LIRS policy with explicit parameters.
    pub fn with_config(frames: usize, cfg: LirsConfig) -> Self {
        assert!(frames >= 2, "LIRS needs at least two frames");
        let lhirs = ((frames as f64 * cfg.hir_fraction) as usize).clamp(1, frames - 1);
        let ghost_cap = ((frames as f64 * cfg.ghost_multiple) as usize).max(1);
        let mut arena = Arena::new(2 * frames + ghost_cap);
        let s = arena.new_list();
        let q = arena.new_list();
        Lirs {
            arena,
            s,
            q,
            is_lir: vec![false; frames],
            lir_count: 0,
            llirs: frames - lhirs,
            ghost_slots: GhostSlots::new(2 * frames as u32, ghost_cap),
            ghost_page: vec![0; ghost_cap],
            ghost_of: HashMap::with_capacity(ghost_cap),
            ghost_order: LinkedSet::with_capacity(ghost_cap),
            table: FrameTable::new(frames),
        }
    }

    fn nframes(&self) -> usize {
        self.table.frames()
    }

    /// Q node id for frame `f`.
    fn qnode(&self, f: FrameId) -> u32 {
        self.nframes() as u32 + f
    }

    fn is_ghost_node(&self, node: u32) -> bool {
        node >= self.ghost_slots.base()
    }

    fn is_frame_node(&self, node: u32) -> bool {
        (node as usize) < self.nframes()
    }

    /// True if page `p` has a non-resident (ghost) entry on the stack.
    pub fn is_ghost(&self, p: PageId) -> bool {
        self.ghost_of.contains_key(&p)
    }

    /// Number of LIR pages (test aid).
    pub fn lir_count(&self) -> usize {
        self.lir_count
    }

    /// LIR capacity (test aid).
    pub fn llirs(&self) -> usize {
        self.llirs
    }

    /// True if `frame` currently holds a LIR page (test aid).
    pub fn is_lir_frame(&self, frame: FrameId) -> bool {
        self.table.is_present(frame) && self.is_lir[frame as usize]
    }

    /// Remove HIR entries (resident or ghost) from the stack bottom until
    /// the bottom is LIR.
    fn prune(&mut self) {
        while let Some(bottom) = self.s.back() {
            if self.is_frame_node(bottom) && self.is_lir[bottom as usize] {
                break;
            }
            self.s.remove(&mut self.arena, bottom);
            if self.is_ghost_node(bottom) {
                self.drop_ghost_record(bottom);
            }
            // A resident HIR pruned off S stays in Q, just loses history.
        }
    }

    fn drop_ghost_record(&mut self, node: u32) {
        let page = self.ghost_page[(node - self.ghost_slots.base()) as usize];
        self.ghost_of.remove(&page);
        self.ghost_order.remove(page);
        self.ghost_slots.dealloc(node);
    }

    /// Turn the page just evicted from frame `f` into a ghost entry at
    /// `f`'s stack position (if `f` was on the stack).
    fn ghostify(&mut self, f: FrameId, page: PageId) {
        if !self.s.contains(&self.arena, f) {
            return; // pruned off the stack: history already gone
        }
        // Make room in the ghost pool, dropping the lowest ghost on S.
        let slot = match self.ghost_slots.alloc() {
            Some(s) => s,
            None => {
                let oldest = self
                    .ghost_order
                    .peek_oldest()
                    .expect("ghost pool exhausted but no ghosts recorded");
                let node = self.ghost_of[&oldest];
                self.s.remove(&mut self.arena, node);
                self.drop_ghost_record(node);
                self.ghost_slots.alloc().expect("slot just freed")
            }
        };
        self.s.insert_before(&mut self.arena, f, slot);
        self.s.remove(&mut self.arena, f);
        self.ghost_page[(slot - self.ghost_slots.base()) as usize] = page;
        self.ghost_of.insert(page, slot);
        self.ghost_order.insert_front(page);
    }

    /// Demote the stack-bottom LIR page to resident HIR (end of Q).
    fn demote_bottom(&mut self) {
        let bottom = self.s.back().expect("demote on empty stack");
        debug_assert!(self.is_frame_node(bottom) && self.is_lir[bottom as usize]);
        self.s.remove(&mut self.arena, bottom);
        self.is_lir[bottom as usize] = false;
        self.lir_count -= 1;
        let qn = self.qnode(bottom as FrameId);
        self.q.push_back(&mut self.arena, qn);
        self.prune();
    }

    /// Free a frame for a new page: take `free`, else evict the resident
    /// HIR at the front of Q, else (pins permitting) a LIR page.
    fn secure_frame(
        &mut self,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> Option<(FrameId, Option<PageId>)> {
        if let Some(f) = free {
            return Some((f, None));
        }
        // Normal path: oldest resident HIR.
        let hit = self
            .q
            .iter(&self.arena)
            .map(|n| (n - self.nframes() as u32) as FrameId)
            .find(|&f| evictable(f));
        if let Some(f) = hit {
            let qn = self.qnode(f);
            self.q.remove(&mut self.arena, qn);
            let victim = self.table.unbind(f);
            self.ghostify(f, victim);
            return Some((f, Some(victim)));
        }
        // Emergency path (all HIR pinned): evict the oldest evictable LIR.
        let lir = self
            .s
            .iter_rev(&self.arena)
            .filter(|&n| self.is_frame_node(n) && self.is_lir[n as usize])
            .map(|n| n as FrameId)
            .find(|&f| evictable(f));
        if let Some(f) = lir {
            self.s.remove(&mut self.arena, f);
            self.is_lir[f as usize] = false;
            self.lir_count -= 1;
            let victim = self.table.unbind(f);
            self.prune();
            return Some((f, Some(victim)));
        }
        None
    }
}

impl ReplacementPolicy for Lirs {
    fn name(&self) -> &'static str {
        "LIRS"
    }

    fn frames(&self) -> usize {
        self.nframes()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        let node = frame;
        if self.is_lir[frame as usize] {
            let was_bottom = self.s.back() == Some(node);
            self.s.move_to_front(&mut self.arena, node);
            if was_bottom {
                self.prune();
            }
        } else if self.s.contains(&self.arena, node) {
            // Resident HIR with small reuse distance: promote to LIR.
            self.s.move_to_front(&mut self.arena, node);
            let qn = self.qnode(frame);
            self.q.remove(&mut self.arena, qn);
            self.is_lir[frame as usize] = true;
            self.lir_count += 1;
            if self.lir_count > self.llirs {
                self.demote_bottom();
            }
        } else {
            // Resident HIR not on stack: refresh recency in both structures.
            self.s.push_front(&mut self.arena, node);
            let qn = self.qnode(frame);
            self.q.move_to_back(&mut self.arena, qn);
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        // Warmup: LIR set not yet full, every miss becomes LIR.
        if let (true, Some(f)) = (self.lir_count < self.llirs, free) {
            self.table.bind(f, page);
            self.is_lir[f as usize] = true;
            self.lir_count += 1;
            self.s.push_front(&mut self.arena, f);
            // A ghost may exist if the page was evicted before warmup
            // completed (e.g. after an invalidation); clear it.
            if let Some(node) = self.ghost_of.get(&page).copied() {
                self.s.remove(&mut self.arena, node);
                self.drop_ghost_record(node);
            }
            return MissOutcome::AdmittedFree(f);
        }

        let Some((f, victim)) = self.secure_frame(free, evictable) else {
            return MissOutcome::NoEvictableFrame;
        };
        self.table.bind(f, page);

        if let Some(node) = self.ghost_of.get(&page).copied() {
            // Non-resident HIR re-referenced: IRR beat the LIR set — promote.
            self.s.remove(&mut self.arena, node);
            self.drop_ghost_record(node);
            self.is_lir[f as usize] = true;
            self.lir_count += 1;
            self.s.push_front(&mut self.arena, f);
            if self.lir_count > self.llirs {
                self.demote_bottom();
            }
        } else {
            // Cold page: resident HIR on stack top and rear of Q.
            self.is_lir[f as usize] = false;
            self.s.push_front(&mut self.arena, f);
            let qn = self.qnode(f);
            self.q.push_back(&mut self.arena, qn);
        }

        match victim {
            Some(v) => MissOutcome::Evicted {
                frame: f,
                victim: v,
            },
            None => MissOutcome::AdmittedFree(f),
        }
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        if self.is_lir[frame as usize] {
            self.s.remove(&mut self.arena, frame);
            self.is_lir[frame as usize] = false;
            self.lir_count -= 1;
            self.prune();
        } else {
            let qn = self.qnode(frame);
            self.q.remove(&mut self.arena, qn);
            if self.s.contains(&self.arena, frame) {
                self.s.remove(&mut self.arena, frame);
            }
        }
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        self.s.check(&self.arena);
        self.q.check(&self.arena);
        self.ghost_order.check();
        assert!(self.lir_count <= self.llirs, "LIR set over capacity");
        assert_eq!(self.ghost_of.len(), self.ghost_order.len());
        assert_eq!(self.ghost_of.len(), self.ghost_slots.in_use());
        // Bottom of a non-empty stack must be LIR.
        if let Some(bottom) = self.s.back() {
            assert!(
                self.is_frame_node(bottom) && self.is_lir[bottom as usize],
                "stack bottom must be LIR"
            );
        }
        let mut lir_seen = 0;
        for f in 0..self.nframes() as FrameId {
            let present = self.table.is_present(f);
            if self.is_lir[f as usize] {
                assert!(present, "LIR frame {f} not resident");
                lir_seen += 1;
                assert!(
                    self.s.contains(&self.arena, f),
                    "LIR frame {f} not on stack"
                );
                assert!(
                    !self.q.contains(&self.arena, self.qnode(f)),
                    "LIR frame {f} in Q"
                );
            } else if present {
                assert!(
                    self.q.contains(&self.arena, self.qnode(f)),
                    "HIR frame {f} not in Q"
                );
            } else {
                assert!(!self.s.contains(&self.arena, f), "empty frame {f} on stack");
                assert!(
                    !self.q.contains(&self.arena, self.qnode(f)),
                    "empty frame {f} in Q"
                );
            }
        }
        assert_eq!(lir_seen, self.lir_count);
        // Ghost set consistency: every ghost node on stack, order matches S.
        for (&page, &node) in &self.ghost_of {
            assert!(self.s.contains(&self.arena, node), "ghost {page} off stack");
            assert!(self.ghost_order.contains(page));
            assert_eq!(
                self.ghost_page[(node - self.ghost_slots.base()) as usize],
                page
            );
        }
        // ghost_order must track the stack's ghost *set*. (Exact order
        // normally matches too, but pinned-frame evictions — which skip
        // the front of Q — can legally perturb it, so the invariant is
        // set equality; the overflow path only needs an approximately
        // lowest ghost.)
        let mut on_stack: Vec<PageId> = self
            .s
            .iter(&self.arena)
            .filter(|&n| self.is_ghost_node(n))
            .map(|n| self.ghost_page[(n - self.ghost_slots.base()) as usize])
            .collect();
        let mut in_order: Vec<PageId> = self.ghost_order.iter().collect();
        on_stack.sort_unstable();
        in_order.sort_unstable();
        assert_eq!(on_stack, in_order, "ghost set diverged from stack");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    fn sim(frames: usize, hir_fraction: f64) -> CacheSim<Lirs> {
        CacheSim::new(Lirs::with_config(
            frames,
            LirsConfig {
                hir_fraction,
                ghost_multiple: 2.0,
            },
        ))
    }

    #[test]
    fn warmup_fills_lir_first() {
        let mut s = sim(10, 0.2); // llirs = 8
        for p in 0..8 {
            s.access(p);
        }
        assert_eq!(s.policy().lir_count(), 8);
        s.access(8); // LIR full: becomes resident HIR
        assert_eq!(s.policy().lir_count(), 8);
        s.check_consistency();
    }

    #[test]
    fn ghost_rereference_promotes() {
        let mut s = sim(10, 0.2); // llirs=8, lhirs=2
        for p in 0..10 {
            s.access(p);
        }
        // 8,9 are resident HIR. Miss on 10 evicts 8 (front of Q) -> ghost.
        s.access(10);
        assert!(!s.is_resident(8));
        assert!(s.policy().is_ghost(8));
        // Re-access 8 while ghosted: must be promoted to LIR on return.
        s.access(8);
        assert!(s.is_resident(8));
        let f = s.frame_of(8).unwrap();
        assert!(
            s.policy().is_lir_frame(f),
            "ghost re-reference must yield LIR"
        );
        s.check_consistency();
    }

    #[test]
    fn resident_hir_promotion_on_stack_hit() {
        let mut s = sim(10, 0.2);
        for p in 0..10 {
            s.access(p);
        }
        let f9 = s.frame_of(9).unwrap();
        assert!(!s.policy().is_lir_frame(f9));
        s.access(9); // resident HIR on stack: promote, demote a LIR page
        assert!(s.policy().is_lir_frame(f9));
        assert_eq!(s.policy().lir_count(), s.policy().llirs());
        s.check_consistency();
    }

    #[test]
    fn scan_resistance() {
        // LIRS's signature property: a one-shot scan cannot displace the
        // LIR working set.
        let mut s = sim(100, 0.05);
        let hot: Vec<PageId> = (0..90).collect();
        for _ in 0..3 {
            for &p in &hot {
                s.access(p);
            }
        }
        // Long scan of cold pages.
        for p in 1000..2000 {
            s.access(p);
        }
        let resident_hot = hot.iter().filter(|&&p| s.is_resident(p)).count();
        assert!(
            resident_hot >= 85,
            "scan displaced hot set: only {resident_hot}/90 survive"
        );
        s.check_consistency();
    }

    #[test]
    fn lirs_beats_lru_on_loop_slightly_larger_than_cache() {
        // A cyclic access pattern one page larger than the cache gives
        // LRU a 0% hit ratio; LIRS keeps most of the loop resident.
        let frames = 50;
        let loop_len = 55u64;
        let trace: Vec<PageId> = (0..20 * loop_len).map(|i| i % loop_len).collect();
        let mut lirs = CacheSim::new(Lirs::new(frames));
        let mut lru = CacheSim::new(crate::lru::Lru::new(frames));
        let a = lirs.run(trace.iter().copied());
        let b = lru.run(trace.iter().copied());
        assert!(
            a.hit_ratio() > b.hit_ratio() + 0.3,
            "LIRS {:.3} should beat LRU {:.3} on a loop",
            a.hit_ratio(),
            b.hit_ratio()
        );
        lirs.check_consistency();
    }

    #[test]
    fn ghost_pool_overflow_drops_oldest() {
        let mut s = sim(4, 0.25); // ghost cap = 8
        for p in 0..100 {
            s.access(p);
            s.check_consistency();
        }
    }

    #[test]
    fn eviction_filter_respected() {
        let mut s = sim(4, 0.5); // llirs=2
        for p in 0..4 {
            s.access(p);
        }
        // Pin everything: no eviction possible.
        let out = s.policy_mut().record_miss(99, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
        s.check_consistency();
    }

    #[test]
    fn remove_lir_page_keeps_stack_legal() {
        let mut s = sim(6, 0.34);
        for p in 0..6 {
            s.access(p);
        }
        // Invalidate a LIR page via the policy directly.
        let f = s.frame_of(0).unwrap();
        if s.policy().is_lir_frame(f) {
            s.policy_mut().remove(f);
            s.policy().check_invariants();
        }
    }

    #[test]
    fn random_trace_consistency() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut s = sim(16, 0.1);
        for _ in 0..3000 {
            let p = rng.gen_range(0..64u64);
            s.access(p);
        }
        s.check_consistency();
        assert!(s.stats().hits > 0);
    }
}
