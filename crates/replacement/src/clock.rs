//! CLOCK — the classic one-bit approximation of LRU (Corbató 1968), and
//! the algorithm PostgreSQL 8.x adopted (the paper's `pgClock` system).
//!
//! This module provides the *locked* trait implementation used for
//! hit-ratio studies and as a policy inside wrappers. The buffer-pool
//! crate additionally provides `ClockManager`, which exploits CLOCK's
//! defining property — hits only set a reference bit — to run the hit
//! path with no lock at all (atomic bit set), exactly as PostgreSQL does.

use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// CLOCK replacement: frames arranged in a ring swept by a hand; a hit
/// sets the frame's reference bit; the hand clears bits until it finds an
/// unreferenced, evictable frame.
pub struct Clock {
    referenced: Vec<bool>,
    table: FrameTable,
    hand: usize,
}

impl Clock {
    /// Create a CLOCK policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "CLOCK needs at least one frame");
        Clock {
            referenced: vec![false; frames],
            table: FrameTable::new(frames),
            hand: 0,
        }
    }

    /// Current hand position (test aid).
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Reference bit of `frame` (test aid).
    pub fn referenced(&self, frame: FrameId) -> bool {
        self.referenced[frame as usize]
    }

    fn advance(&mut self) {
        self.hand = (self.hand + 1) % self.table.frames();
    }
}

impl ReplacementPolicy for Clock {
    fn name(&self) -> &'static str {
        "CLOCK"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if self.table.is_present(frame) {
            self.referenced[frame as usize] = true;
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        if let Some(f) = free {
            self.table.bind(f, page);
            self.referenced[f as usize] = true;
            return MissOutcome::AdmittedFree(f);
        }
        // Two full sweeps suffice (first may clear every bit); a third
        // pass means everything is unevictable.
        let n = self.table.frames();
        let mut steps = 0;
        while steps < 3 * n {
            let f = self.hand as FrameId;
            if self.table.is_present(f) {
                if self.referenced[self.hand] {
                    self.referenced[self.hand] = false;
                } else if evictable(f) {
                    let victim = self.table.rebind(f, page);
                    self.referenced[self.hand] = true;
                    self.advance();
                    return MissOutcome::Evicted { frame: f, victim };
                }
            }
            self.advance();
            steps += 1;
        }
        MissOutcome::NoEvictableFrame
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        self.referenced[frame as usize] = false;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        // CLOCK's only per-frame metadata is the reference-bit array.
        Some(NodeRegion {
            base: self.referenced.as_ptr() as usize,
            stride: std::mem::size_of::<bool>(),
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        assert!(self.hand < self.table.frames());
        for f in 0..self.table.frames() {
            if !self.table.is_present(f as FrameId) {
                assert!(!self.referenced[f], "empty frame {f} has reference bit set");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::miss_full;

    fn fill(c: &mut Clock, pages: &[PageId]) {
        for (i, &p) in pages.iter().enumerate() {
            c.record_miss(p, Some(i as FrameId), &mut |_| true);
        }
    }

    #[test]
    fn second_chance_protects_referenced() {
        let mut c = Clock::new(3);
        fill(&mut c, &[10, 20, 30]);
        // All ref bits set by admission; first sweep clears 0,1,2 then
        // evicts frame 0 on the second pass.
        let out = miss_full(&mut c, 40);
        assert_eq!(out.victim(), Some(10));
        // Now frame 0 holds 40 (ref set), frames 1,2 have cleared bits.
        // A hit on frame 2 protects page 30; next miss takes frame 1.
        c.record_hit(2);
        let out = miss_full(&mut c, 50);
        assert_eq!(out.victim(), Some(20));
        c.check_invariants();
    }

    #[test]
    fn sweep_skips_pinned_frames() {
        let mut c = Clock::new(3);
        fill(&mut c, &[10, 20, 30]);
        let out = c.record_miss(40, None, &mut |f| f == 2);
        assert_eq!(
            out,
            MissOutcome::Evicted {
                frame: 2,
                victim: 30
            }
        );
    }

    #[test]
    fn no_evictable_terminates() {
        let mut c = Clock::new(4);
        fill(&mut c, &[1, 2, 3, 4]);
        let out = c.record_miss(5, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }

    #[test]
    fn hand_wraps_around() {
        let mut c = Clock::new(2);
        fill(&mut c, &[1, 2]);
        for p in 3..20 {
            let out = miss_full(&mut c, p);
            assert!(out.victim().is_some());
            c.check_invariants();
        }
        assert_eq!(c.resident_count(), 2);
    }

    #[test]
    fn remove_clears_bit() {
        let mut c = Clock::new(2);
        fill(&mut c, &[1, 2]);
        c.record_hit(1);
        assert!(c.referenced(1));
        assert_eq!(c.remove(1), Some(2));
        assert!(!c.referenced(1));
    }
}
