//! CLOCK-Pro (Jiang, Chen & Zhang, USENIX ATC 2005) — the clock-based
//! approximation of LIRS. The paper cites it as the lock-friendly
//! transformation an OS/DBMS must accept if it cannot afford LIRS's
//! per-access lock — the very compromise BP-Wrapper makes unnecessary.
//!
//! One circular list holds hot pages, resident cold pages, and
//! non-resident cold pages (test-period ghosts), swept by three hands:
//!
//! * `hand_cold` — evicts resident cold pages (the replacement hand),
//! * `hand_hot` — demotes hot pages and prunes ghosts it passes,
//! * `hand_test` — bounds the number of non-resident pages at `m`.
//!
//! The cold-allocation target `mc` adapts: +1 when a page is re-accessed
//! during its test period, −1 when a test period expires unused.

use std::collections::HashMap;

use crate::arena::{Arena, GhostSlots, List};
use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// The CLOCK-Pro replacement policy.
pub struct ClockPro {
    arena: Arena,
    ring: List, // clock order; advancing a hand wraps back to the front
    hot: Vec<bool>,
    test: Vec<bool>, // indexed by node (frames + ghosts); ghosts always in test
    referenced: Vec<bool>,
    hand_hot: u32,
    hand_cold: u32,
    hand_test: u32,
    mc: usize, // target number of resident cold pages
    hot_count: usize,
    cold_resident: usize,
    ghost_slots: GhostSlots,
    ghost_page: Vec<PageId>,
    ghost_of: HashMap<PageId, u32>,
    table: FrameTable,
}

const NIL: u32 = u32::MAX;

impl ClockPro {
    /// Create a CLOCK-Pro policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames >= 2, "CLOCK-Pro needs at least two frames");
        let ghost_cap = frames; // paper bounds non-resident pages at m
        let mut arena = Arena::new(2 * frames);
        let ring = arena.new_list();
        ClockPro {
            arena,
            ring,
            hot: vec![false; frames],
            test: vec![false; 2 * frames],
            referenced: vec![false; frames],
            hand_hot: NIL,
            hand_cold: NIL,
            hand_test: NIL,
            mc: frames / 2,
            hot_count: 0,
            cold_resident: 0,
            ghost_slots: GhostSlots::new(frames as u32, ghost_cap),
            ghost_page: vec![0; ghost_cap],
            ghost_of: HashMap::with_capacity(ghost_cap),
            table: FrameTable::new(frames),
        }
    }

    fn m(&self) -> usize {
        self.table.frames()
    }

    fn is_ghost_node(&self, node: u32) -> bool {
        node >= self.ghost_slots.base()
    }

    /// True if `page` has a non-resident test entry (test aid).
    pub fn is_ghost(&self, page: PageId) -> bool {
        self.ghost_of.contains_key(&page)
    }

    /// Current cold-allocation target (test aid).
    pub fn mc(&self) -> usize {
        self.mc
    }

    /// `(hot, resident_cold, non_resident)` counts (test aid).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.hot_count, self.cold_resident, self.ghost_of.len())
    }

    fn next_wrap(&self, node: u32) -> u32 {
        self.ring
            .next(&self.arena, node)
            .unwrap_or_else(|| self.ring.front().expect("ring non-empty"))
    }

    /// Advance any hand equal to `node` before the node is unlinked/moved.
    fn hands_step_past(&mut self, node: u32) {
        if self.ring.len() <= 1 {
            self.hand_hot = NIL;
            self.hand_cold = NIL;
            self.hand_test = NIL;
            return;
        }
        let next = self.next_wrap(node);
        if self.hand_hot == node {
            self.hand_hot = next;
        }
        if self.hand_cold == node {
            self.hand_cold = next;
        }
        if self.hand_test == node {
            self.hand_test = next;
        }
    }

    /// Insert `node` at the list head (just behind `hand_hot`, as in the
    /// paper's figure), initializing hands on first insertion.
    fn insert_at_head(&mut self, node: u32) {
        if self.hand_hot == NIL {
            self.ring.push_back(&mut self.arena, node);
            self.hand_hot = node;
            self.hand_cold = node;
            self.hand_test = node;
        } else {
            self.ring
                .insert_before(&mut self.arena, self.hand_hot, node);
        }
    }

    fn raise_mc(&mut self) {
        self.mc = (self.mc + 1).min(self.m() - 1);
    }

    fn lower_mc(&mut self) {
        self.mc = self.mc.saturating_sub(1).max(1);
    }

    fn drop_ghost(&mut self, node: u32) {
        self.hands_step_past(node);
        self.ring.remove(&mut self.arena, node);
        let page = self.ghost_page[(node - self.ghost_slots.base()) as usize];
        self.ghost_of.remove(&page);
        self.ghost_slots.dealloc(node);
        self.test[node as usize] = false;
    }

    /// Replace the resident node `frame` with a ghost entry at the same
    /// clock position (eviction during test period keeps the metadata).
    fn ghostify(&mut self, frame: u32, page: PageId) {
        let slot = match self.ghost_slots.alloc() {
            Some(s) => s,
            None => {
                self.run_hand_test();
                self.ghost_slots
                    .alloc()
                    .expect("hand_test must free a slot")
            }
        };
        self.ring.insert_before(&mut self.arena, frame, slot);
        self.hands_step_past(frame);
        self.ring.remove(&mut self.arena, frame);
        self.test[slot as usize] = true;
        self.ghost_page[(slot - self.ghost_slots.base()) as usize] = page;
        self.ghost_of.insert(page, slot);
    }

    /// Demote one hot page to cold; prunes ghosts and expires test
    /// periods along the way.
    fn run_hand_hot(&mut self) {
        let mut steps = 0;
        let max_steps = 3 * self.ring.len().max(1);
        while self.hot_count > 0 && steps < max_steps {
            steps += 1;
            let node = self.hand_hot;
            if self.is_ghost_node(node) {
                // hand_hot removes non-resident pages it passes.
                let next = if self.ring.len() > 1 {
                    self.next_wrap(node)
                } else {
                    NIL
                };
                self.drop_ghost(node);
                if self.hand_hot == node {
                    self.hand_hot = next;
                }
                if self.hand_hot == NIL {
                    return;
                }
                continue;
            }
            let f = node as usize;
            if self.hot[f] {
                if self.referenced[f] {
                    self.referenced[f] = false;
                    self.hand_hot = self.next_wrap(node);
                } else {
                    self.hot[f] = false;
                    self.test[f] = false;
                    self.hot_count -= 1;
                    self.cold_resident += 1;
                    self.hand_hot = self.next_wrap(node);
                    return;
                }
            } else {
                // Resident cold page passed by hand_hot: test period ends.
                if self.test[f] {
                    self.test[f] = false;
                    self.lower_mc();
                }
                self.hand_hot = self.next_wrap(node);
            }
        }
    }

    /// Remove one non-resident page to keep their count at `m`.
    fn run_hand_test(&mut self) {
        let mut steps = 0;
        let max_steps = 2 * self.ring.len().max(1);
        while steps < max_steps {
            steps += 1;
            let node = self.hand_test;
            if self.is_ghost_node(node) {
                self.drop_ghost(node);
                return;
            }
            let f = node as usize;
            if !self.hot[f] && self.test[f] {
                // Terminating a cold page's test period unused: lower mc.
                self.test[f] = false;
                self.lower_mc();
            }
            self.hand_test = self.next_wrap(node);
        }
    }

    /// Find a frame to reuse: evict the first unreferenced resident cold
    /// page under `hand_cold`.
    fn run_hand_cold(
        &mut self,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> Option<(FrameId, PageId)> {
        let mut steps = 0;
        let max_steps = 4 * self.ring.len().max(1);
        while steps < max_steps {
            steps += 1;
            if self.cold_resident == 0 {
                // All residents are hot: force a demotion first.
                self.run_hand_hot();
                if self.cold_resident == 0 {
                    return None;
                }
            }
            let node = self.hand_cold;
            if self.is_ghost_node(node) || self.hot[node as usize] {
                self.hand_cold = self.next_wrap(node);
                continue;
            }
            let f = node as usize;
            if self.referenced[f] {
                self.referenced[f] = false;
                if self.test[f] {
                    // Re-accessed within its test period: promote to hot.
                    self.raise_mc();
                    self.hand_cold = self.next_wrap(node);
                    self.hands_step_past(node);
                    self.ring.remove(&mut self.arena, node);
                    self.insert_at_head(node);
                    self.hot[f] = true;
                    self.test[f] = false;
                    self.hot_count += 1;
                    self.cold_resident -= 1;
                    if self.hot_count > self.m() - self.mc {
                        self.run_hand_hot();
                    }
                } else {
                    // Move to head with a fresh test period.
                    self.hand_cold = self.next_wrap(node);
                    self.hands_step_past(node);
                    self.ring.remove(&mut self.arena, node);
                    self.insert_at_head(node);
                    self.test[f] = true;
                }
                continue;
            }
            if !evictable(node as FrameId) {
                self.hand_cold = self.next_wrap(node);
                continue;
            }
            // Unreferenced cold page: evict it.
            let victim = self.table.unbind(node as FrameId);
            self.cold_resident -= 1;
            self.hand_cold = self.next_wrap(node);
            if self.test[f] {
                self.test[f] = false;
                self.ghostify(node, victim);
                if self.ghost_of.len() > self.m() {
                    self.run_hand_test();
                }
            } else {
                self.hands_step_past(node);
                self.ring.remove(&mut self.arena, node);
            }
            return Some((node as FrameId, victim));
        }
        None
    }
}

impl ReplacementPolicy for ClockPro {
    fn name(&self) -> &'static str {
        "CLOCK-Pro"
    }

    fn frames(&self) -> usize {
        self.m()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if self.table.is_present(frame) {
            self.referenced[frame as usize] = true;
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let ghost_node = self.ghost_of.get(&page).copied();

        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => match self.run_hand_cold(evictable) {
                Some((f, victim)) => (f, MissOutcome::Evicted { frame: f, victim }),
                None => return MissOutcome::NoEvictableFrame,
            },
        };

        // The ghost may have been pruned while making room; re-check.
        let ghost_node = ghost_node.filter(|n| self.ghost_of.get(&page) == Some(n));

        self.table.bind(frame, page);
        self.referenced[frame as usize] = false;
        self.insert_at_head(frame);
        if let Some(node) = ghost_node {
            // Re-access during test period: page becomes hot, mc grows.
            self.raise_mc();
            self.drop_ghost(node);
            self.hot[frame as usize] = true;
            self.test[frame as usize] = false;
            self.hot_count += 1;
            if self.hot_count > self.m() - self.mc {
                self.run_hand_hot();
            }
        } else {
            self.hot[frame as usize] = false;
            self.test[frame as usize] = true;
            self.cold_resident += 1;
        }
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        let f = frame as usize;
        self.hands_step_past(frame);
        self.ring.remove(&mut self.arena, frame);
        if self.hot[f] {
            self.hot[f] = false;
            self.hot_count -= 1;
        } else {
            self.cold_resident -= 1;
        }
        self.test[f] = false;
        self.referenced[f] = false;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        self.ring.check(&self.arena);
        assert_eq!(
            self.ring.len(),
            self.hot_count + self.cold_resident + self.ghost_of.len(),
            "ring must hold every tracked entry exactly once"
        );
        assert_eq!(self.hot_count + self.cold_resident, self.table.resident());
        assert!(
            self.ghost_of.len() <= self.m(),
            "too many non-resident entries"
        );
        assert!((1..self.m()).contains(&self.mc), "mc out of range");
        if !self.ring.is_empty() {
            for hand in [self.hand_hot, self.hand_cold, self.hand_test] {
                assert!(self.ring.contains(&self.arena, hand), "hand off the ring");
            }
        }
        let mut hot_seen = 0;
        let mut cold_seen = 0;
        for node in self.ring.iter(&self.arena) {
            if self.is_ghost_node(node) {
                let page = self.ghost_page[(node - self.ghost_slots.base()) as usize];
                assert_eq!(self.ghost_of.get(&page), Some(&node));
            } else if self.hot[node as usize] {
                hot_seen += 1;
                assert!(self.table.is_present(node as FrameId));
            } else {
                cold_seen += 1;
                assert!(self.table.is_present(node as FrameId));
            }
        }
        assert_eq!(hot_seen, self.hot_count);
        assert_eq!(cold_seen, self.cold_resident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn warmup_admits_cold_pages() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..4 {
            s.access(p);
        }
        let (hot, cold, ghosts) = s.policy().counts();
        assert_eq!(hot, 0);
        assert_eq!(cold, 4);
        assert_eq!(ghosts, 0);
        s.check_consistency();
    }

    #[test]
    fn eviction_creates_test_ghost() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..5 {
            s.access(p);
        }
        let (_, _, ghosts) = s.policy().counts();
        assert_eq!(ghosts, 1, "evicted in-test page must leave a ghost");
        s.check_consistency();
    }

    #[test]
    fn ghost_reaccess_promotes_to_hot_and_raises_mc() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..5 {
            s.access(p); // someone (page 0) was evicted with a ghost
        }
        let ghosted: Vec<PageId> = (0..5).filter(|&p| s.policy().is_ghost(p)).collect();
        assert!(!ghosted.is_empty());
        let g = ghosted[0];
        let mc_before = s.policy().mc();
        s.access(g);
        assert!(s.is_resident(g));
        let f = s.frame_of(g).unwrap();
        assert!(s.policy().hot[f as usize], "test-period return must be hot");
        assert!(s.policy().mc() >= mc_before);
        s.check_consistency();
    }

    #[test]
    fn referenced_cold_survives_sweep() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..4 {
            s.access(p);
        }
        s.access(0); // hit: sets reference bit
        s.access(10); // sweep must not take page 0 first
        assert!(s.is_resident(0), "referenced cold page evicted prematurely");
        s.check_consistency();
    }

    #[test]
    fn long_churn_keeps_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut s = CacheSim::new(ClockPro::new(16));
        for i in 0..5000 {
            let p = if rng.gen_bool(0.7) {
                rng.gen_range(0..12u64)
            } else {
                rng.gen_range(0..200u64)
            };
            s.access(p);
            if i % 500 == 0 {
                s.check_consistency();
            }
        }
        s.check_consistency();
    }

    #[test]
    fn hot_set_resists_scan() {
        let mut s = CacheSim::new(ClockPro::new(32));
        // Establish a hot set via repeated access.
        for _ in 0..10 {
            for p in 0..16u64 {
                s.access(p);
            }
        }
        for p in 1000..1200 {
            s.access(p);
        }
        let survivors = (0..16u64).filter(|&p| s.is_resident(p)).count();
        assert!(
            survivors >= 8,
            "scan displaced hot set: {survivors}/16 left"
        );
        s.check_consistency();
    }

    #[test]
    fn all_pinned_gives_up() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..4 {
            s.access(p);
        }
        let out = s.policy_mut().record_miss(99, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
        s.check_consistency();
    }

    #[test]
    fn remove_invalidates() {
        let mut s = CacheSim::new(ClockPro::new(4));
        for p in 0..4 {
            s.access(p);
        }
        let f = s.frame_of(2).unwrap();
        assert_eq!(s.policy_mut().remove(f), Some(2));
        s.policy().check_invariants();
    }
}
