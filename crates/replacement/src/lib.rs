//! # bpw-replacement
//!
//! Page-replacement algorithms behind one uniform [`ReplacementPolicy`]
//! trait: the substrate layer of the BP-Wrapper reproduction.
//!
//! The paper's premise is that *advanced* algorithms (2Q, LIRS, MQ, ARC)
//! buy hit ratio with complex linked structures that must be updated
//! under an exclusive lock on **every** access, while their clock
//! approximations (CLOCK, CAR, CLOCK-Pro) trade hit ratio for a lock-free
//! hit path. This crate provides faithful implementations of both camps
//! so the framework crate (`bpw-core`) can demonstrate that BP-Wrapper
//! gives the advanced camp the scalability of the clock camp.
//!
//! ## Quick example
//!
//! ```
//! use bpw_replacement::{CacheSim, Lirs};
//!
//! let mut cache = CacheSim::new(Lirs::new(100));
//! for page in (0..150u64).chain(0..150) {
//!     cache.access(page);
//! }
//! println!("hit ratio: {:.2}", cache.stats().hit_ratio());
//! ```

pub mod adaptive;
pub mod advisor;
pub mod arc;
pub mod arena;
pub mod cache_sim;
pub mod car;
pub mod clock;
pub mod clock_pro;
pub mod fifo;
pub mod frame_table;
pub mod lfu;
pub mod linked_set;
pub mod lirs;
pub mod lru;
pub mod lru_k;
pub mod mq;
pub mod seq_lru;
pub mod traits;
pub mod two_q;

pub use adaptive::SampleTap;
pub use advisor::{Advisor, AdvisorConfig, AdvisorSnapshot, ExpertScore};
pub use arc::Arc;
pub use cache_sim::{CacheSim, SimStats};
pub use car::Car;
pub use clock::Clock;
pub use clock_pro::ClockPro;
pub use fifo::Fifo;
pub use lfu::{Lfu, LfuConfig};
pub use lirs::{Lirs, LirsConfig};
pub use lru::Lru;
pub use lru_k::{LruK, LruKConfig};
pub use mq::{Mq, MqConfig};
pub use seq_lru::{SeqLru, SeqLruConfig};
pub use traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};
pub use two_q::{TwoQ, TwoQConfig};

/// Every policy in this crate, for building sweeps over algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// One-bit clock (PostgreSQL 8.x default; the paper's `pgClock`).
    Clock,
    /// Full 2Q (the paper's representative advanced policy, `pgQ`).
    TwoQ,
    /// Low Inter-reference Recency Set.
    Lirs,
    /// Multi-Queue.
    Mq,
    /// Adaptive Replacement Cache.
    Arc,
    /// Clock with Adaptive Replacement (clock approximation of ARC).
    Car,
    /// CLOCK-Pro (clock approximation of LIRS).
    ClockPro,
    /// SEQ-style sequence-detecting LRU (needs ordered access info).
    SeqLru,
    /// LRU-2 (backward K-distance with K = 2).
    LruK,
    /// First-in first-out (no hit bookkeeping at all).
    Fifo,
    /// Least-frequently-used with counter aging.
    Lfu,
}

impl PolicyKind {
    /// All supported policies.
    pub const ALL: [PolicyKind; 12] = [
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::Lirs,
        PolicyKind::Mq,
        PolicyKind::Arc,
        PolicyKind::Car,
        PolicyKind::ClockPro,
        PolicyKind::SeqLru,
        PolicyKind::LruK,
        PolicyKind::Fifo,
        PolicyKind::Lfu,
    ];

    /// The "advanced" policies that require a lock on every hit.
    pub const ADVANCED: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::TwoQ,
        PolicyKind::Lirs,
        PolicyKind::Mq,
        PolicyKind::Arc,
    ];

    /// Display name, matching each policy's `name()`.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Clock => "CLOCK",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Lirs => "LIRS",
            PolicyKind::Mq => "MQ",
            PolicyKind::Arc => "ARC",
            PolicyKind::Car => "CAR",
            PolicyKind::ClockPro => "CLOCK-Pro",
            PolicyKind::SeqLru => "SEQ-LRU",
            PolicyKind::LruK => "LRU-2",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lfu => "LFU",
        }
    }

    /// Instantiate the policy with default parameters for `frames`.
    pub fn build(&self, frames: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(frames)),
            PolicyKind::Clock => Box::new(Clock::new(frames)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(frames)),
            PolicyKind::Lirs => Box::new(Lirs::new(frames)),
            PolicyKind::Mq => Box::new(Mq::new(frames)),
            PolicyKind::Arc => Box::new(Arc::new(frames)),
            PolicyKind::Car => Box::new(Car::new(frames)),
            PolicyKind::ClockPro => Box::new(ClockPro::new(frames)),
            PolicyKind::SeqLru => Box::new(SeqLru::new(frames)),
            PolicyKind::LruK => Box::new(LruK::new(frames)),
            PolicyKind::Fifo => Box::new(Fifo::new(frames)),
            PolicyKind::Lfu => Box::new(Lfu::new(frames)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "clock" => Ok(PolicyKind::Clock),
            "2q" | "twoq" => Ok(PolicyKind::TwoQ),
            "lirs" => Ok(PolicyKind::Lirs),
            "mq" => Ok(PolicyKind::Mq),
            "arc" => Ok(PolicyKind::Arc),
            "car" => Ok(PolicyKind::Car),
            "clock-pro" | "clockpro" => Ok(PolicyKind::ClockPro),
            "seq" | "seq-lru" | "seqlru" => Ok(PolicyKind::SeqLru),
            "lru-2" | "lru2" | "lruk" => Ok(PolicyKind::LruK),
            "fifo" => Ok(PolicyKind::Fifo),
            "lfu" => Ok(PolicyKind::Lfu),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

// Box<dyn ReplacementPolicy> forwards the trait so pools and wrappers can
// hold policies chosen at runtime.
impl ReplacementPolicy for Box<dyn ReplacementPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn frames(&self) -> usize {
        (**self).frames()
    }
    fn resident_count(&self) -> usize {
        (**self).resident_count()
    }
    fn record_hit(&mut self, frame: FrameId) {
        (**self).record_hit(frame)
    }
    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        (**self).record_miss(page, free, evictable)
    }
    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        (**self).remove(frame)
    }
    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        (**self).page_at(frame)
    }
    fn resident_pages(&self) -> Vec<(FrameId, PageId)> {
        (**self).resident_pages()
    }
    fn check_invariants(&self) {
        (**self).check_invariants()
    }
    fn node_region(&self) -> Option<NodeRegion> {
        (**self).node_region()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_roundtrip() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            let p = kind.build(8);
            assert_eq!(p.name(), kind.name());
            assert_eq!(p.frames(), 8);
            assert_eq!(p.resident_count(), 0);
        }
        assert!("nonsense".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn boxed_policy_works_in_cache_sim() {
        let boxed = PolicyKind::TwoQ.build(4);
        let mut sim = CacheSim::new(boxed);
        let stats = sim.run([1u64, 2, 3, 1, 2, 3]);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        sim.check_consistency();
    }

    #[test]
    fn every_policy_handles_identical_trace() {
        // Smoke test: same trace through all eight policies.
        let trace: Vec<PageId> = (0..400u64).map(|i| (i * i) % 37).collect();
        for kind in PolicyKind::ALL {
            let mut sim = CacheSim::new(kind.build(16));
            let stats = sim.run(trace.iter().copied());
            assert_eq!(stats.total(), 400, "{kind}");
            assert!(stats.hits > 0, "{kind} should score some hits");
            sim.check_consistency();
        }
    }
}
