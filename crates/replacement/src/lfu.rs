//! LFU with periodic aging (LFU-DA-style). Pure frequency ranking with a
//! decay step that halves all counters every `age_every` accesses, so
//! formerly-hot pages can leave — the classic fix for LFU's "cache
//! pollution by stale celebrities" failure.
//!
//! Eviction scans for the minimum (count, last-access) pair; O(frames)
//! on the miss path, like the textbook algorithm. Included as the
//! frequency-only endpoint of the policy spectrum (MQ and ARC blend
//! frequency with recency; this is what they improve on).

use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, PageId, ReplacementPolicy};

/// Tuning knobs for [`Lfu`].
#[derive(Debug, Clone, Copy)]
pub struct LfuConfig {
    /// Halve every frequency counter after this many accesses
    /// (0 disables aging: pure LFU).
    pub age_every: u64,
}

impl Default for LfuConfig {
    fn default() -> Self {
        LfuConfig { age_every: 10_000 }
    }
}

/// Least-frequently-used replacement with counter aging.
pub struct Lfu {
    count: Vec<u64>,
    last: Vec<u64>,
    table: FrameTable,
    now: u64,
    age_every: u64,
    until_age: u64,
}

impl Lfu {
    /// Create with default aging.
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, LfuConfig::default())
    }

    /// Create with explicit aging period.
    pub fn with_config(frames: usize, cfg: LfuConfig) -> Self {
        assert!(frames > 0, "LFU needs at least one frame");
        Lfu {
            count: vec![0; frames],
            last: vec![0; frames],
            table: FrameTable::new(frames),
            now: 0,
            age_every: cfg.age_every,
            until_age: cfg.age_every.max(1),
        }
    }

    /// Frequency counter of `frame` (test aid).
    pub fn frequency(&self, frame: FrameId) -> u64 {
        self.count[frame as usize]
    }

    fn tick(&mut self) {
        self.now += 1;
        if self.age_every == 0 {
            return;
        }
        self.until_age -= 1;
        if self.until_age == 0 {
            self.until_age = self.age_every;
            for c in &mut self.count {
                *c /= 2;
            }
        }
    }
}

impl ReplacementPolicy for Lfu {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        self.tick();
        self.count[frame as usize] += 1;
        self.last[frame as usize] = self.now;
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.tick();
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => {
                // Min (count, last-access), ties to least recent. The
                // filter may have side effects, so probe it once per
                // chosen candidate and exclude rejections.
                let n = self.table.frames();
                let mut rejected = vec![false; n];
                let chosen = loop {
                    let mut best: Option<(FrameId, u64, u64)> = None;
                    for f in 0..n as FrameId {
                        if rejected[f as usize] || !self.table.is_present(f) {
                            continue;
                        }
                        let key = (self.count[f as usize], self.last[f as usize]);
                        let better = match best {
                            None => true,
                            Some((_, bc, bl)) => key < (bc, bl),
                        };
                        if better {
                            best = Some((f, key.0, key.1));
                        }
                    }
                    match best {
                        None => break None,
                        Some((f, _, _)) => {
                            if evictable(f) {
                                break Some(f);
                            }
                            rejected[f as usize] = true;
                        }
                    }
                };
                let Some(f) = chosen else {
                    return MissOutcome::NoEvictableFrame;
                };
                let victim = self.table.unbind(f);
                (f, MissOutcome::Evicted { frame: f, victim })
            }
        };
        self.table.bind(frame, page);
        self.count[frame as usize] = 1;
        self.last[frame as usize] = self.now;
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        self.count[frame as usize] = 0;
        self.last[frame as usize] = 0;
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn check_invariants(&self) {
        for f in 0..self.table.frames() {
            if self.table.is_present(f as FrameId) {
                assert!(
                    self.count[f] >= 1 || self.age_every > 0,
                    "resident frame {f} uncounted"
                );
            } else {
                assert_eq!(self.count[f], 0, "empty frame {f} has a count");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn frequent_pages_protected() {
        let mut s = CacheSim::new(Lfu::new(3));
        for _ in 0..5 {
            s.access(1);
        }
        s.access(2);
        s.access(3);
        s.access(4); // evicts 2 or 3 (count 1), never 1 (count 5)
        assert!(s.is_resident(1));
        s.check_consistency();
    }

    #[test]
    fn ties_break_by_recency() {
        let mut s = CacheSim::new(Lfu::new(3));
        s.access(1);
        s.access(2);
        s.access(3); // all count 1; 1 is least recent
        s.access(4);
        assert!(!s.is_resident(1));
        s.check_consistency();
    }

    #[test]
    fn aging_lets_stale_celebrities_go() {
        let cfg = LfuConfig { age_every: 50 };
        let mut s = CacheSim::new(Lfu::with_config(4, cfg));
        for _ in 0..40 {
            s.access(1); // celebrity: count 40
        }
        // Long cold phase: counters halve repeatedly; a modestly-warm
        // newcomer eventually outranks the stale celebrity.
        for i in 0..400u64 {
            s.access(10 + (i % 3));
        }
        let f = s.frame_of(1);
        if let Some(f) = f {
            assert!(
                s.policy().frequency(f) < 40,
                "aging must decay the celebrity's count"
            );
        }
        s.check_consistency();
    }

    #[test]
    fn pure_lfu_without_aging() {
        let cfg = LfuConfig { age_every: 0 };
        let mut s = CacheSim::new(Lfu::with_config(2, cfg));
        for _ in 0..10 {
            s.access(1);
        }
        s.access(2);
        for p in 3..20u64 {
            s.access(p); // churn always evicts the count-1 newcomer slot
            assert!(s.is_resident(1), "pure LFU never evicts the celebrity");
        }
        s.check_consistency();
    }

    #[test]
    fn filter_respected() {
        let mut s = CacheSim::new(Lfu::new(2));
        s.access(1);
        s.access(2);
        let out = s.policy_mut().record_miss(3, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }
}
