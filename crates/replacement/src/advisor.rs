//! The expert scorer behind online adaptive replacement: shadow
//! simulations of candidate policies scored by EWMA hit ratio, with
//! switching-cost hysteresis (EEvA-style expert selection; ARC's
//! ghost-list adaptivity is the classical single-policy ancestor).
//!
//! The advisor is deliberately *offline* machinery run on a *sampled*
//! stream: it never touches the live hit path. A driver (the server's
//! advisor thread, or a bench loop) drains the
//! [`SampleTap`](crate::adaptive::SampleTap), feeds
//! [`Advisor::observe`], and acts on [`Advisor::nominate`] by building
//! the winning policy and hot-swapping it into the pool.

use crate::cache_sim::CacheSim;
use crate::traits::{PageId, ReplacementPolicy};
use crate::PolicyKind;

/// Tuning for the expert scorer.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Frames each shadow simulation models. Smaller than the live pool
    /// is fine (and cheap): relative ranking is what matters.
    pub shadow_frames: usize,
    /// Sampled accesses per scoring window.
    pub window: u64,
    /// EWMA smoothing factor applied to each window's hit ratio.
    pub ewma_alpha: f64,
    /// Relative margin a challenger's EWMA must exceed the incumbent's
    /// by (e.g. `0.05` = 5%) — the switching-cost hysteresis.
    pub hysteresis: f64,
    /// Consecutive windows a challenger must hold its lead before it is
    /// nominated (dwell time).
    pub dwell: u32,
    /// 1-in-N sampling period the tap should use. Carried here so the
    /// advisor and tap are configured together.
    pub sample_period: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            shadow_frames: 256,
            window: 2048,
            ewma_alpha: 0.4,
            hysteresis: 0.05,
            dwell: 2,
            sample_period: 8,
        }
    }
}

/// One candidate policy's shadow simulation plus its score state.
struct ShadowExpert {
    kind: PolicyKind,
    sim: CacheSim<Box<dyn ReplacementPolicy>>,
    window_hits: u64,
    /// EWMA of per-window hit ratio; `None` until the first window
    /// closes.
    ewma: Option<f64>,
}

impl ShadowExpert {
    fn new(kind: PolicyKind, frames: usize) -> Self {
        ShadowExpert {
            kind,
            sim: CacheSim::new(kind.build(frames)),
            window_hits: 0,
            ewma: None,
        }
    }
}

/// A point-in-time view of one expert, for STATS/METRICS.
#[derive(Debug, Clone)]
pub struct ExpertScore {
    pub policy: PolicyKind,
    /// EWMA hit ratio (0 until the first window closes).
    pub ewma: f64,
    /// Lifetime shadow hit ratio.
    pub lifetime_hit_ratio: f64,
}

/// A point-in-time view of the advisor, for STATS/METRICS and bench
/// reports.
#[derive(Debug, Clone)]
pub struct AdvisorSnapshot {
    pub incumbent: PolicyKind,
    /// Leading challenger, if any expert currently beats the incumbent
    /// by the hysteresis margin.
    pub leader: Option<PolicyKind>,
    /// Consecutive windows the leader has held its lead.
    pub lead_streak: u32,
    pub samples: u64,
    pub windows: u64,
    pub adoptions: u64,
    pub experts: Vec<ExpertScore>,
}

/// Expert-selection advisor: one shadow cache per candidate policy.
pub struct Advisor {
    cfg: AdvisorConfig,
    experts: Vec<ShadowExpert>,
    incumbent: PolicyKind,
    window_total: u64,
    samples: u64,
    windows: u64,
    adoptions: u64,
    /// Challenger currently on a winning streak, with its streak length.
    streak: Option<(PolicyKind, u32)>,
}

impl Advisor {
    /// An advisor over `candidates`, with `incumbent` currently live.
    /// `incumbent` is added to the expert set if missing (its shadow
    /// score is the baseline challengers must beat).
    pub fn new(candidates: &[PolicyKind], incumbent: PolicyKind, cfg: AdvisorConfig) -> Self {
        let mut kinds: Vec<PolicyKind> = Vec::new();
        for &k in candidates.iter().chain(std::iter::once(&incumbent)) {
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        }
        Advisor {
            experts: kinds
                .into_iter()
                .map(|k| ShadowExpert::new(k, cfg.shadow_frames))
                .collect(),
            incumbent,
            cfg,
            window_total: 0,
            samples: 0,
            windows: 0,
            adoptions: 0,
            streak: None,
        }
    }

    /// Feed one sampled page access to every shadow.
    pub fn observe(&mut self, page: PageId) {
        for e in &mut self.experts {
            if e.sim.access(page) {
                e.window_hits += 1;
            }
        }
        self.samples += 1;
        self.window_total += 1;
        if self.window_total >= self.cfg.window {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let total = self.window_total as f64;
        for e in &mut self.experts {
            let ratio = e.window_hits as f64 / total;
            e.ewma = Some(match e.ewma {
                Some(prev) => self.cfg.ewma_alpha * ratio + (1.0 - self.cfg.ewma_alpha) * prev,
                None => ratio,
            });
            e.window_hits = 0;
        }
        self.window_total = 0;
        self.windows += 1;

        // Hysteresis: the best non-incumbent must beat the incumbent's
        // EWMA by the relative margin, and sustain it `dwell` windows.
        let incumbent_score = self.score_of(self.incumbent);
        let bar = incumbent_score * (1.0 + self.cfg.hysteresis);
        let leader = self
            .experts
            .iter()
            .filter(|e| e.kind != self.incumbent)
            .filter(|e| e.ewma.unwrap_or(0.0) > bar)
            .max_by(|a, b| {
                a.ewma
                    .unwrap_or(0.0)
                    .partial_cmp(&b.ewma.unwrap_or(0.0))
                    .expect("hit ratios are finite")
            })
            .map(|e| e.kind);
        self.streak = match (leader, self.streak) {
            (Some(k), Some((prev, n))) if k == prev => Some((k, n + 1)),
            (Some(k), _) => Some((k, 1)),
            (None, _) => None,
        };
    }

    fn score_of(&self, kind: PolicyKind) -> f64 {
        self.experts
            .iter()
            .find(|e| e.kind == kind)
            .and_then(|e| e.ewma)
            .unwrap_or(0.0)
    }

    /// The challenger to switch to, if one has sustainably beaten the
    /// incumbent. Call [`Advisor::adopt`] after actually swapping.
    pub fn nominate(&self) -> Option<PolicyKind> {
        match self.streak {
            Some((k, n)) if n >= self.cfg.dwell => Some(k),
            _ => None,
        }
    }

    /// Record that `kind` is now the live policy.
    pub fn adopt(&mut self, kind: PolicyKind) {
        self.incumbent = kind;
        self.streak = None;
        self.adoptions += 1;
    }

    /// The policy the advisor believes is live.
    pub fn incumbent(&self) -> PolicyKind {
        self.incumbent
    }

    /// Sampled accesses observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Point-in-time view for STATS/METRICS.
    pub fn snapshot(&self) -> AdvisorSnapshot {
        AdvisorSnapshot {
            incumbent: self.incumbent,
            leader: self.streak.map(|(k, _)| k),
            lead_streak: self.streak.map(|(_, n)| n).unwrap_or(0),
            samples: self.samples,
            windows: self.windows,
            adoptions: self.adoptions,
            experts: self
                .experts
                .iter()
                .map(|e| ExpertScore {
                    policy: e.kind,
                    ewma: e.ewma.unwrap_or(0.0),
                    lifetime_hit_ratio: e.sim.stats().hit_ratio(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdvisorConfig {
        AdvisorConfig {
            shadow_frames: 16,
            window: 64,
            ewma_alpha: 0.5,
            hysteresis: 0.05,
            dwell: 2,
            sample_period: 1,
        }
    }

    #[test]
    fn stationary_workload_nominates_nothing() {
        // A hot set that fits every shadow: all experts score ~1.0, no
        // challenger clears the hysteresis bar.
        let mut adv = Advisor::new(&[PolicyKind::Lru, PolicyKind::TwoQ], PolicyKind::Lru, cfg());
        for i in 0..4096u64 {
            adv.observe(i % 8);
        }
        assert_eq!(adv.nominate(), None);
        let snap = adv.snapshot();
        assert_eq!(snap.incumbent, PolicyKind::Lru);
        assert!(snap.windows >= 32);
        assert!(snap.experts.iter().all(|e| e.ewma > 0.9));
    }

    #[test]
    fn scan_storm_nominates_a_scan_resistant_policy() {
        // Hot set of 8 pages + a rolling scan much larger than the
        // shadow: LRU's reuse distance blows past 16 frames and it
        // thrashes (0% hits), while LIRS keeps the hot set resident as
        // LIR blocks and scores the full 25% hot fraction. The
        // challenger must clear hysteresis for `dwell` windows, then be
        // nominated.
        let mut adv = Advisor::new(&[PolicyKind::Lirs], PolicyKind::Lru, cfg());
        let mut scan = 1_000u64;
        for i in 0..32_768u64 {
            if i % 4 == 0 {
                adv.observe((i / 4) % 8);
            } else {
                adv.observe(scan);
                scan += 1;
            }
        }
        assert_eq!(adv.nominate(), Some(PolicyKind::Lirs));
        let snap = adv.snapshot();
        assert_eq!(snap.leader, Some(PolicyKind::Lirs));
        assert!(snap.lead_streak >= 2);

        adv.adopt(PolicyKind::Lirs);
        assert_eq!(adv.incumbent(), PolicyKind::Lirs);
        assert_eq!(adv.nominate(), None, "adoption resets the streak");
        assert_eq!(adv.snapshot().adoptions, 1);
    }

    #[test]
    fn hysteresis_blocks_marginal_challengers() {
        // Two identical policies: scores tie, so the relative margin is
        // never cleared and no nomination happens.
        let mut adv = Advisor::new(&[PolicyKind::Lru], PolicyKind::Fifo, cfg());
        for i in 0..8192u64 {
            adv.observe((i * 7) % 64);
        }
        assert_eq!(adv.nominate(), None);
    }
}
