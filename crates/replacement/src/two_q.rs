//! 2Q (Johnson & Shasha, VLDB 1994) — the "full version" with A1in /
//! A1out / Am. This is the algorithm the paper grafts into PostgreSQL as
//! its representative advanced policy (`pgQ`), and the one PostgreSQL
//! itself used before retreating to CLOCK over lock-contention concerns.

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// Tuning knobs for [`TwoQ`].
#[derive(Debug, Clone, Copy)]
pub struct TwoQConfig {
    /// Target size of the A1in FIFO as a fraction of frames (paper: 25%).
    pub kin_fraction: f64,
    /// Capacity of the A1out ghost list as a fraction of frames (paper: 50%).
    pub kout_fraction: f64,
}

impl Default for TwoQConfig {
    fn default() -> Self {
        TwoQConfig {
            kin_fraction: 0.25,
            kout_fraction: 0.50,
        }
    }
}

/// The full 2Q algorithm: newly-referenced pages sit in the A1in FIFO;
/// pages evicted from A1in are remembered in the A1out ghost list; only a
/// page re-referenced while in A1out is promoted into the long-term LRU
/// list Am. Correlated references are thereby filtered out of Am.
pub struct TwoQ {
    arena: Arena,
    am: List,   // LRU list of "hot" pages, front = MRU
    a1in: List, // FIFO of recently-admitted pages, front = newest
    a1out: LinkedSet,
    kin: usize,
    kout: usize,
    table: FrameTable,
}

impl TwoQ {
    /// Create a 2Q policy with the paper's default parameters.
    pub fn new(frames: usize) -> Self {
        Self::with_config(frames, TwoQConfig::default())
    }

    /// Create a 2Q policy with explicit Kin/Kout fractions.
    pub fn with_config(frames: usize, cfg: TwoQConfig) -> Self {
        assert!(frames > 0, "2Q needs at least one frame");
        let mut arena = Arena::new(frames);
        let am = arena.new_list();
        let a1in = arena.new_list();
        let kin = ((frames as f64 * cfg.kin_fraction) as usize).max(1);
        let kout = ((frames as f64 * cfg.kout_fraction) as usize).max(1);
        TwoQ {
            arena,
            am,
            a1in,
            a1out: LinkedSet::with_capacity(kout),
            kin,
            kout,
            table: FrameTable::new(frames),
        }
    }

    /// Number of pages currently in the A1in FIFO (test aid).
    pub fn a1in_len(&self) -> usize {
        self.a1in.len()
    }

    /// Number of pages currently in the Am list (test aid).
    pub fn am_len(&self) -> usize {
        self.am.len()
    }

    /// True if `page` is remembered in the A1out ghost list (test aid).
    pub fn in_a1out(&self, page: PageId) -> bool {
        self.a1out.contains(page)
    }

    /// Reclaim a frame for a new page, following 2Q's `reclaimfor`.
    fn reclaim(&mut self, evictable: &mut dyn FnMut(FrameId) -> bool) -> Option<(FrameId, PageId)> {
        // Prefer draining A1in once it exceeds its target share.
        let from_a1in_first = self.a1in.len() > self.kin || self.am.is_empty();
        let orders: [bool; 2] = if from_a1in_first {
            [true, false]
        } else {
            [false, true]
        };
        for &use_a1in in &orders {
            let list = if use_a1in { &self.a1in } else { &self.am };
            let found = list.iter_rev(&self.arena).find(|&f| evictable(f));
            if let Some(frame) = found {
                if use_a1in {
                    self.a1in.remove(&mut self.arena, frame);
                } else {
                    self.am.remove(&mut self.arena, frame);
                }
                let victim = self.table.unbind(frame);
                if use_a1in {
                    // Only A1in evictions are remembered: a page that fell
                    // out of Am has proven cold twice and is forgotten.
                    self.a1out.insert_front(victim);
                    while self.a1out.len() > self.kout {
                        self.a1out.pop_oldest();
                    }
                }
                return Some((frame, victim));
            }
        }
        None
    }
}

impl ReplacementPolicy for TwoQ {
    fn name(&self) -> &'static str {
        "2Q"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        if self.am.contains(&self.arena, frame) {
            self.am.move_to_front(&mut self.arena, frame);
        }
        // A hit in A1in deliberately does nothing: 2Q treats bursts of
        // correlated references as a single reference.
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let ghost_hit = self.a1out.remove(page);
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => match self.reclaim(evictable) {
                Some((f, victim)) => (f, MissOutcome::Evicted { frame: f, victim }),
                None => {
                    // Not admitted; restore the ghost entry we removed.
                    if ghost_hit {
                        self.a1out.insert_front(page);
                    }
                    return MissOutcome::NoEvictableFrame;
                }
            },
        };
        self.table.bind(frame, page);
        if ghost_hit {
            // Re-reference within the A1out window: page is hot.
            self.am.push_front(&mut self.arena, frame);
        } else {
            self.a1in.push_front(&mut self.arena, frame);
        }
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        if self.am.contains(&self.arena, frame) {
            self.am.remove(&mut self.arena, frame);
        } else {
            self.a1in.remove(&mut self.arena, frame);
        }
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        let am = self.am.check(&self.arena);
        let a1in = self.a1in.check(&self.arena);
        assert_eq!(
            am + a1in,
            self.table.resident(),
            "Am + A1in must cover residents"
        );
        assert!(self.a1out.len() <= self.kout, "A1out over capacity");
        self.a1out.check();
        for f in 0..self.table.frames() as FrameId {
            let linked = self.am.contains(&self.arena, f) || self.a1in.contains(&self.arena, f);
            assert_eq!(
                linked,
                self.table.is_present(f),
                "frame {f} residency mismatch"
            );
            if let Some(p) = self.table.page_at(f) {
                assert!(!self.a1out.contains(p), "resident page {p} also in A1out");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::miss_full;

    fn admit(q: &mut TwoQ, page: PageId, frame: FrameId) {
        let out = q.record_miss(page, Some(frame), &mut |_| true);
        assert_eq!(out.frame(), Some(frame));
    }

    #[test]
    fn new_pages_enter_a1in() {
        let mut q = TwoQ::new(8);
        admit(&mut q, 1, 0);
        admit(&mut q, 2, 1);
        assert_eq!(q.a1in_len(), 2);
        assert_eq!(q.am_len(), 0);
        q.check_invariants();
    }

    #[test]
    fn ghost_rereference_promotes_to_am() {
        let mut q = TwoQ::new(4); // kin = 1
        for (i, p) in (0..4).zip([1, 2, 3, 4]) {
            admit(&mut q, p, i as FrameId);
        }
        // A1in = [4,3,2,1] exceeds kin=1; miss on 5 evicts 1 into A1out.
        let out = miss_full(&mut q, 5);
        assert_eq!(out.victim(), Some(1));
        assert!(q.in_a1out(1));
        // Re-reference 1 while ghosted: promoted to Am.
        let out = miss_full(&mut q, 1);
        assert!(out.victim().is_some());
        assert!(!q.in_a1out(1));
        assert_eq!(q.am_len(), 1);
        q.check_invariants();
    }

    #[test]
    fn a1in_hit_does_not_promote() {
        let mut q = TwoQ::new(4);
        admit(&mut q, 1, 0);
        q.record_hit(0); // hit in A1in: no movement
        assert_eq!(q.a1in_len(), 1);
        assert_eq!(q.am_len(), 0);
    }

    #[test]
    fn am_eviction_not_remembered() {
        let mut q = TwoQ::with_config(
            4,
            TwoQConfig {
                kin_fraction: 1.0,
                kout_fraction: 0.5,
            },
        );
        // kin = 4: A1in never exceeds target, so eviction falls to Am...
        // but Am is empty, so A1in is drained anyway (orders fallback).
        for (i, p) in (0..4).zip([1, 2, 3, 4]) {
            admit(&mut q, p, i as FrameId);
        }
        let out = miss_full(&mut q, 5);
        // A1in not over target and Am empty: falls back to A1in path.
        assert!(out.victim().is_some());
        q.check_invariants();
    }

    #[test]
    fn scan_resistance_protects_am() {
        // Pages promoted to Am survive a long one-shot scan.
        let q = TwoQ::new(8); // kin = 2, kout = 4
                              // Build up hot pages 1 and 2 in Am via ghost re-reference.
        let mut sim = crate::cache_sim::CacheSim::new(q);
        for &p in &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2] {
            sim.access(p);
        }
        assert!(sim.policy().am_len() >= 2, "hot pages should be in Am");
        // One-shot scan of 100 cold pages.
        for p in 100..200 {
            sim.access(p);
        }
        // Hot pages 1 and 2 must still be resident.
        assert!(sim.is_resident(1), "page 1 evicted by scan");
        assert!(sim.is_resident(2), "page 2 evicted by scan");
        sim.policy().check_invariants();
    }

    #[test]
    fn a1out_capacity_bounded() {
        let q = TwoQ::new(4); // kout = 2
        let mut sim = crate::cache_sim::CacheSim::new(q);
        for p in 0..100 {
            sim.access(p);
        }
        sim.policy().check_invariants();
    }

    #[test]
    fn no_evictable_restores_ghost() {
        let q = TwoQ::new(2);
        let mut sim = crate::cache_sim::CacheSim::new(q);
        for p in [1, 2, 3] {
            sim.access(p);
        }
        let ghost: Vec<PageId> = (0..10).filter(|p| sim.policy().in_a1out(*p)).collect();
        assert!(!ghost.is_empty());
        let g = ghost[0];
        let out = sim.policy_mut().record_miss(g, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
        assert!(
            sim.policy().in_a1out(g),
            "ghost entry must survive failed admission"
        );
    }
}
