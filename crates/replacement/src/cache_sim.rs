//! Single-threaded cache simulator: drives any [`ReplacementPolicy`] with
//! a page reference string and tracks hit/miss statistics. This is the
//! harness behind hit-ratio experiments (paper Fig. 8) and most tests.

use std::collections::HashMap;

use crate::traits::{FrameId, MissOutcome, PageId, ReplacementPolicy};

/// Aggregate access counts for a simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Accesses satisfied from the cache.
    pub hits: u64,
    /// Accesses requiring a (simulated) disk read.
    pub misses: u64,
}

impl SimStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 for an empty run.
    pub fn hit_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Drives a policy with page accesses, maintaining the page table
/// (page → frame) and free-frame list that a real buffer pool would.
pub struct CacheSim<P: ReplacementPolicy> {
    policy: P,
    map: HashMap<PageId, FrameId>,
    free: Vec<FrameId>,
    stats: SimStats,
    evictions: Option<Vec<PageId>>,
}

impl<P: ReplacementPolicy> CacheSim<P> {
    /// Wrap `policy` in a fresh simulator with all frames free.
    pub fn new(policy: P) -> Self {
        let frames = policy.frames();
        assert_eq!(
            policy.resident_count(),
            0,
            "CacheSim requires an empty policy"
        );
        CacheSim {
            policy,
            map: HashMap::with_capacity(frames),
            free: (0..frames as FrameId).rev().collect(),
            stats: SimStats::default(),
            evictions: None,
        }
    }

    /// Opt into recording the victim page of every eviction, in order.
    /// The log is what the live-vs-shadow property tests compare.
    pub fn with_eviction_log(mut self) -> Self {
        self.evictions = Some(Vec::new());
        self
    }

    /// Victim pages in eviction order (empty unless
    /// [`CacheSim::with_eviction_log`] was used).
    pub fn eviction_log(&self) -> &[PageId] {
        self.evictions.as_deref().unwrap_or(&[])
    }

    /// Access `page`; returns `true` on a hit.
    pub fn access(&mut self, page: PageId) -> bool {
        if let Some(&frame) = self.map.get(&page) {
            self.policy.record_hit(frame);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let free = self.free.pop();
        match self.policy.record_miss(page, free, &mut |_| true) {
            MissOutcome::AdmittedFree(f) => {
                self.map.insert(page, f);
            }
            MissOutcome::Evicted { frame, victim } => {
                let removed = self.map.remove(&victim);
                debug_assert_eq!(removed, Some(frame), "victim {victim} map mismatch");
                self.map.insert(page, frame);
                if let Some(log) = self.evictions.as_mut() {
                    log.push(victim);
                }
            }
            MissOutcome::NoEvictableFrame => {
                // All-evictable filter means this is a policy bug.
                panic!(
                    "policy {} failed to evict with a permissive filter",
                    self.policy.name()
                );
            }
        }
        false
    }

    /// Run a whole reference string, returning final stats.
    pub fn run<I: IntoIterator<Item = PageId>>(&mut self, trace: I) -> SimStats {
        for page in trace {
            self.access(page);
        }
        self.stats
    }

    /// True if `page` is currently cached.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Frame holding `page`, if resident.
    pub fn frame_of(&self, page: PageId) -> Option<FrameId> {
        self.map.get(&page).copied()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to the wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the wrapped policy (tests only; bypasses the
    /// simulator's page table, so only use for read-mostly probing).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.map.len()
    }

    /// Cross-check simulator and policy agree on the resident set.
    pub fn check_consistency(&self) {
        self.policy.check_invariants();
        assert_eq!(self.map.len(), self.policy.resident_count());
        for (&page, &frame) in &self.map {
            assert_eq!(
                self.policy.page_at(frame),
                Some(page),
                "frame {frame} should hold page {page}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    #[test]
    fn counts_hits_and_misses() {
        let mut sim = CacheSim::new(Lru::new(2));
        assert!(!sim.access(1));
        assert!(!sim.access(2));
        assert!(sim.access(1));
        assert!(!sim.access(3)); // evicts 2
        assert!(!sim.access(2)); // miss again
        let s = sim.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 4);
        assert!((s.hit_ratio() - 0.2).abs() < 1e-12);
        sim.check_consistency();
    }

    #[test]
    fn run_trace() {
        let mut sim = CacheSim::new(Lru::new(3));
        let stats = sim.run([1, 2, 3, 1, 2, 3, 4, 4, 4]);
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn empty_stats() {
        let s = SimStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.total(), 0);
    }
}
