//! ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003). Cited
//! by the paper as a representative advanced algorithm whose clock
//! approximation (CAR) gives up hit-ratio quality for lock-freedom —
//! exactly the trade-off BP-Wrapper removes.
//!
//! Two resident lists balance recency (`T1`) and frequency (`T2`); two
//! ghost lists (`B1`, `B2`) steer the adaptive target `p` (the desired
//! size of `T1`).

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::linked_set::LinkedSet;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// The ARC replacement policy.
pub struct Arc {
    arena: Arena,
    t1: List, // recency list, front = MRU
    t2: List, // frequency list, front = MRU
    b1: LinkedSet,
    b2: LinkedSet,
    p: usize, // adaptive target size of T1
    table: FrameTable,
}

impl Arc {
    /// Create an ARC policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "ARC needs at least one frame");
        let mut arena = Arena::new(frames);
        let t1 = arena.new_list();
        let t2 = arena.new_list();
        Arc {
            arena,
            t1,
            t2,
            b1: LinkedSet::with_capacity(frames),
            b2: LinkedSet::with_capacity(frames),
            p: 0,
            table: FrameTable::new(frames),
        }
    }

    /// Current adaptation target for `|T1|` (test aid).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sizes of `(T1, T2, B1, B2)` (test aid).
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// True if `page` is remembered in a ghost list (test aid).
    pub fn is_ghost(&self, page: PageId) -> bool {
        self.b1.contains(page) || self.b2.contains(page)
    }

    /// ARC's `REPLACE`: evict from T1 or T2 per the adaptation target,
    /// remembering the victim in the matching ghost list.
    fn replace(
        &mut self,
        in_b2: bool,
        remember_t1: bool,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> Option<(FrameId, PageId)> {
        let prefer_t1 =
            !self.t1.is_empty() && ((in_b2 && self.t1.len() == self.p) || self.t1.len() > self.p);
        for &from_t1 in &[prefer_t1, !prefer_t1] {
            let list = if from_t1 { &self.t1 } else { &self.t2 };
            let found = list.iter_rev(&self.arena).find(|&f| evictable(f));
            if let Some(frame) = found {
                if from_t1 {
                    self.t1.remove(&mut self.arena, frame);
                } else {
                    self.t2.remove(&mut self.arena, frame);
                }
                let victim = self.table.unbind(frame);
                if from_t1 {
                    if remember_t1 {
                        self.b1.insert_front(victim);
                    }
                } else {
                    self.b2.insert_front(victim);
                }
                return Some((frame, victim));
            }
        }
        None
    }
}

impl ReplacementPolicy for Arc {
    fn name(&self) -> &'static str {
        "ARC"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if !self.table.is_present(frame) {
            return;
        }
        // Case I: any hit moves the page to the MRU of T2.
        if self.t1.contains(&self.arena, frame) {
            self.t1.remove(&mut self.arena, frame);
            self.t2.push_front(&mut self.arena, frame);
        } else {
            self.t2.move_to_front(&mut self.arena, frame);
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let c = self.table.frames();
        let in_b1 = self.b1.contains(page);
        let in_b2 = !in_b1 && self.b2.contains(page);
        let mut remember_t1 = true;

        if in_b1 {
            // Case II: recency ghosts growing — favor T1.
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
        } else if in_b2 {
            // Case III: frequency ghosts growing — favor T2.
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
        } else {
            // Case IV: bound the directory at 2c.
            if self.t1.len() + self.b1.len() >= c {
                // Case IV(a): make room in the recency half. If B1 has
                // history, age it out; if B1 is empty then T1 fills the
                // cache and its LRU page is discarded outright below.
                if self.b1.pop_oldest().is_none() {
                    remember_t1 = false;
                }
            } else if self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() >= 2 * c {
                self.b2.pop_oldest();
            }
        }

        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => match self.replace(in_b2, remember_t1, evictable) {
                Some((f, victim)) => (f, MissOutcome::Evicted { frame: f, victim }),
                None => return MissOutcome::NoEvictableFrame,
            },
        };

        self.table.bind(frame, page);
        if in_b1 {
            self.b1.remove(page);
            self.t2.push_front(&mut self.arena, frame);
        } else if in_b2 {
            self.b2.remove(page);
            self.t2.push_front(&mut self.arena, frame);
        } else {
            self.t1.push_front(&mut self.arena, frame);
        }
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        if self.t1.contains(&self.arena, frame) {
            self.t1.remove(&mut self.arena, frame);
        } else {
            self.t2.remove(&mut self.arena, frame);
        }
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        let c = self.table.frames();
        let t1 = self.t1.check(&self.arena);
        let t2 = self.t2.check(&self.arena);
        self.b1.check();
        self.b2.check();
        assert_eq!(t1 + t2, self.table.resident(), "T1+T2 must cover residents");
        assert!(t1 + t2 <= c, "resident lists exceed cache size");
        assert!(self.p <= c, "adaptation target out of range");
        assert!(
            t1 + t2 + self.b1.len() + self.b2.len() <= 2 * c,
            "ARC directory exceeds 2c"
        );
        assert!(t1 + self.b1.len() <= c, "|T1|+|B1| exceeds c");
        for f in 0..c as FrameId {
            let linked = self.t1.contains(&self.arena, f) || self.t2.contains(&self.arena, f);
            assert_eq!(linked, self.table.is_present(f));
            if let Some(p) = self.table.page_at(f) {
                assert!(!self.is_ghost(p), "resident page {p} in ghost list");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn new_pages_enter_t1_hits_promote_to_t2() {
        let mut s = CacheSim::new(Arc::new(4));
        s.access(1);
        s.access(2);
        assert_eq!(s.policy().list_sizes().0, 2); // both in T1
        s.access(1); // promote
        let (t1, t2, _, _) = s.policy().list_sizes();
        assert_eq!((t1, t2), (1, 1));
        s.check_consistency();
    }

    #[test]
    fn b1_ghost_hit_raises_p() {
        let mut s = CacheSim::new(Arc::new(4));
        for p in [1, 2, 3, 4] {
            s.access(p);
        }
        s.access(1); // promote 1 to T2 so |T1| < c
        s.access(5); // evicts 2 (LRU of T1) into B1
        assert!(s.policy().is_ghost(2));
        let p_before = s.policy().p();
        s.access(2); // B1 hit: p increases, page admitted to T2
        assert!(s.policy().p() > p_before);
        let (_, t2, _, _) = s.policy().list_sizes();
        assert!(t2 >= 2);
        s.check_consistency();
    }

    #[test]
    fn full_t1_cold_eviction_not_remembered() {
        // ARC Case IV(a): when T1 alone fills the cache and B1 is empty,
        // the evicted page is discarded without history.
        let mut s = CacheSim::new(Arc::new(2));
        s.access(1);
        s.access(2);
        s.access(3);
        assert!(!s.policy().is_ghost(1));
        s.check_consistency();
    }

    #[test]
    fn b2_ghost_hit_lowers_p() {
        let mut s = CacheSim::new(Arc::new(2));
        // Build a T2 page then evict it into B2.
        s.access(1);
        s.access(1); // 1 in T2
        s.access(2);
        s.access(3); // evict from T1 (2) -> B1
        s.access(4); // continue; eventually 1 leaves T2 -> B2
        s.access(5);
        // Force p up first, then a B2 hit must bring it down.
        let ghosted: Vec<PageId> = (1..6).filter(|&p| s.policy().b2.contains(p)).collect();
        if let Some(&g) = ghosted.first() {
            let before = s.policy().p();
            s.access(g);
            assert!(s.policy().p() <= before);
        }
        s.check_consistency();
    }

    #[test]
    fn directory_bounded_under_churn() {
        let mut s = CacheSim::new(Arc::new(8));
        for p in 0..1000u64 {
            s.access(p % 40);
            if p % 100 == 0 {
                s.check_consistency();
            }
        }
        s.check_consistency();
    }

    #[test]
    fn arc_beats_lru_on_mixed_scan() {
        // Hot set + repeated scans: ARC adapts, LRU thrashes.
        let frames = 32;
        let mut trace = Vec::new();
        for round in 0..60u64 {
            for h in 0..16u64 {
                trace.push(h); // hot set fits easily
            }
            for sc in 0..24u64 {
                trace.push(1000 + round * 24 + sc); // one-shot cold pages
            }
        }
        let mut arc = CacheSim::new(Arc::new(frames));
        let mut lru = CacheSim::new(crate::lru::Lru::new(frames));
        let a = arc.run(trace.iter().copied());
        let b = lru.run(trace.iter().copied());
        assert!(
            a.hit_ratio() >= b.hit_ratio(),
            "ARC {:.3} should not lose to LRU {:.3} here",
            a.hit_ratio(),
            b.hit_ratio()
        );
        arc.check_consistency();
    }

    #[test]
    fn pinned_frames_skipped() {
        let mut s = CacheSim::new(Arc::new(2));
        s.access(1);
        s.access(2);
        let f1 = s.frame_of(1).unwrap();
        let out = s.policy_mut().record_miss(9, None, &mut |f| f != f1);
        assert_ne!(out.frame(), Some(f1));
        assert!(out.victim().is_some());
    }

    #[test]
    fn no_evictable_frame() {
        let mut s = CacheSim::new(Arc::new(2));
        s.access(1);
        s.access(2);
        let out = s.policy_mut().record_miss(9, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }
}
