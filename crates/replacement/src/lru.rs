//! Least Recently Used — the canonical stack algorithm and the baseline
//! every other policy in the paper is defined against.

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// Classic LRU over a fixed set of frames. A single list, MRU at the
/// front; eviction takes the least recently used evictable frame.
pub struct Lru {
    arena: Arena,
    list: List, // front = MRU, back = LRU
    table: FrameTable,
}

impl Lru {
    /// Create an LRU policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "LRU needs at least one frame");
        let mut arena = Arena::new(frames);
        let list = arena.new_list();
        Lru {
            arena,
            list,
            table: FrameTable::new(frames),
        }
    }

    /// Frames in eviction order (LRU first). Test aid.
    pub fn eviction_order(&self) -> Vec<FrameId> {
        self.list.iter_rev(&self.arena).collect()
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, frame: FrameId) {
        if self.table.is_present(frame) {
            self.list.move_to_front(&mut self.arena, frame);
        }
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        if let Some(f) = free {
            self.table.bind(f, page);
            self.list.push_front(&mut self.arena, f);
            return MissOutcome::AdmittedFree(f);
        }
        let Some(frame) = self.list.iter_rev(&self.arena).find(|&f| evictable(f)) else {
            return MissOutcome::NoEvictableFrame;
        };
        let victim = self.table.rebind(frame, page);
        self.list.move_to_front(&mut self.arena, frame);
        MissOutcome::Evicted { frame, victim }
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        self.list.remove(&mut self.arena, frame);
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        assert_eq!(self.list.check(&self.arena), self.table.resident());
        for f in self.list.iter(&self.arena) {
            assert!(self.table.is_present(f), "linked frame {f} not resident");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::miss_full;

    fn fill(lru: &mut Lru, pages: &[PageId]) {
        for (i, &p) in pages.iter().enumerate() {
            let out = lru.record_miss(p, Some(i as FrameId), &mut |_| true);
            assert_eq!(out, MissOutcome::AdmittedFree(i as FrameId));
        }
    }

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new(3);
        fill(&mut lru, &[10, 20, 30]);
        // access order now 30, 20, 10 (MRU..LRU)
        let out = miss_full(&mut lru, 40);
        assert_eq!(out.victim(), Some(10));
        lru.check_invariants();
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = Lru::new(3);
        fill(&mut lru, &[10, 20, 30]);
        lru.record_hit(0); // page 10 becomes MRU
        let out = miss_full(&mut lru, 40);
        assert_eq!(out.victim(), Some(20));
        lru.check_invariants();
    }

    #[test]
    fn eviction_filter_skips_pinned() {
        let mut lru = Lru::new(3);
        fill(&mut lru, &[10, 20, 30]);
        // Frame 0 (page 10, LRU) is pinned: next-oldest 20 goes.
        let out = lru.record_miss(40, None, &mut |f| f != 0);
        assert_eq!(out.victim(), Some(20));
    }

    #[test]
    fn all_pinned_reports_no_victim() {
        let mut lru = Lru::new(2);
        fill(&mut lru, &[1, 2]);
        let out = lru.record_miss(3, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
        assert_eq!(lru.resident_count(), 2);
    }

    #[test]
    fn remove_frees_frame() {
        let mut lru = Lru::new(2);
        fill(&mut lru, &[1, 2]);
        assert_eq!(lru.remove(0), Some(1));
        assert_eq!(lru.remove(0), None);
        assert_eq!(lru.resident_count(), 1);
        // freed frame can be re-supplied as free
        let out = lru.record_miss(3, Some(0), &mut |_| true);
        assert_eq!(out, MissOutcome::AdmittedFree(0));
        lru.check_invariants();
    }

    #[test]
    fn hit_on_evicted_frame_is_ignored() {
        let mut lru = Lru::new(1);
        fill(&mut lru, &[1]);
        lru.remove(0);
        lru.record_hit(0); // must not panic or corrupt state
        lru.check_invariants();
        assert_eq!(lru.resident_count(), 0);
    }

    #[test]
    fn eviction_order_matches_accesses() {
        let mut lru = Lru::new(3);
        fill(&mut lru, &[10, 20, 30]);
        lru.record_hit(1); // 20 MRU
        lru.record_hit(0); // 10 MRU
        assert_eq!(lru.eviction_order(), vec![2, 1, 0]); // 30 oldest
    }
}
