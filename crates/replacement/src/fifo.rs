//! FIFO — evict in admission order, ignore hits entirely. The floor of
//! the policy spectrum: zero hit-path bookkeeping (even cheaper than
//! CLOCK), worst hit ratios on reuse-heavy workloads. Included as the
//! calibration baseline for the hit-ratio studies.

use crate::arena::{Arena, List};
use crate::frame_table::FrameTable;
use crate::traits::{FrameId, MissOutcome, NodeRegion, PageId, ReplacementPolicy};

/// First-in first-out replacement.
pub struct Fifo {
    arena: Arena,
    queue: List, // front = newest admission
    table: FrameTable,
}

impl Fifo {
    /// Create a FIFO policy managing `frames` buffer frames.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "FIFO needs at least one frame");
        let mut arena = Arena::new(frames);
        let queue = arena.new_list();
        Fifo {
            arena,
            queue,
            table: FrameTable::new(frames),
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn frames(&self) -> usize {
        self.table.frames()
    }

    fn resident_count(&self) -> usize {
        self.table.resident()
    }

    fn record_hit(&mut self, _frame: FrameId) {
        // FIFO's defining property: hits cost nothing and change nothing.
    }

    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let (frame, outcome) = match free {
            Some(f) => (f, MissOutcome::AdmittedFree(f)),
            None => {
                let found = self.queue.iter_rev(&self.arena).find(|&f| evictable(f));
                let Some(f) = found else {
                    return MissOutcome::NoEvictableFrame;
                };
                self.queue.remove(&mut self.arena, f);
                let victim = self.table.unbind(f);
                (f, MissOutcome::Evicted { frame: f, victim })
            }
        };
        self.table.bind(frame, page);
        self.queue.push_front(&mut self.arena, frame);
        outcome
    }

    fn remove(&mut self, frame: FrameId) -> Option<PageId> {
        if !self.table.is_present(frame) {
            return None;
        }
        self.queue.remove(&mut self.arena, frame);
        Some(self.table.unbind(frame))
    }

    fn page_at(&self, frame: FrameId) -> Option<PageId> {
        self.table.page_at(frame)
    }

    fn node_region(&self) -> Option<NodeRegion> {
        let (base, stride) = self.arena.raw_parts();
        Some(NodeRegion {
            base,
            stride,
            count: self.frames(),
        })
    }

    fn check_invariants(&self) {
        assert_eq!(self.queue.check(&self.arena), self.table.resident());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_sim::CacheSim;

    #[test]
    fn evicts_in_admission_order_regardless_of_hits() {
        let mut s = CacheSim::new(Fifo::new(3));
        s.access(1);
        s.access(2);
        s.access(3);
        s.access(1); // hit: must NOT refresh 1's position
        s.access(4); // evicts 1 (oldest admission)
        assert!(!s.is_resident(1));
        assert!(s.is_resident(2) && s.is_resident(3) && s.is_resident(4));
        s.check_consistency();
    }

    #[test]
    fn filter_respected() {
        let mut s = CacheSim::new(Fifo::new(2));
        s.access(1);
        s.access(2);
        let f1 = s.frame_of(1).unwrap();
        let out = s.policy_mut().record_miss(3, None, &mut |f| f != f1);
        assert_eq!(out.victim(), Some(2));
        let out = s.policy_mut().record_miss(4, None, &mut |_| false);
        assert_eq!(out, MissOutcome::NoEvictableFrame);
    }

    #[test]
    fn worse_than_lru_on_reuse() {
        let frames = 8;
        // Loop of 6 hot pages + interleaved cold misses: LRU keeps the
        // hot set pinned by recency, FIFO ages it out.
        let mut trace = Vec::new();
        for i in 0..400u64 {
            trace.push(i % 6);
            if i % 3 == 0 {
                trace.push(1_000 + i);
            }
        }
        let mut fifo = CacheSim::new(Fifo::new(frames));
        let mut lru = CacheSim::new(crate::lru::Lru::new(frames));
        let a = fifo.run(trace.iter().copied());
        let b = lru.run(trace.iter().copied());
        assert!(
            a.hits <= b.hits,
            "FIFO ({}) should not beat LRU ({}) here",
            a.hits,
            b.hits
        );
    }
}
