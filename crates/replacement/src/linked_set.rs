//! An ordered set of page ids with O(1) insert, remove, and
//! oldest-element eviction — the shape every ghost ("history") list in
//! this crate needs: 2Q's A1out, ARC's B1/B2, CAR's B1/B2, MQ's Qout, and
//! the non-resident tail bound of LIRS.

use std::collections::HashMap;

use crate::traits::PageId;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    key: PageId,
    prev: u32,
    next: u32,
}

/// Ordered set of [`PageId`]s. Iteration order is insertion order
/// (front = most recently inserted, back = oldest). Re-inserting an
/// existing key moves it to the front.
pub struct LinkedSet {
    map: HashMap<PageId, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl LinkedSet {
    /// Create an empty set. `hint` pre-sizes internal storage.
    pub fn with_capacity(hint: usize) -> Self {
        LinkedSet {
            map: HashMap::with_capacity(hint),
            nodes: Vec::with_capacity(hint),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `key` is a member.
    pub fn contains(&self, key: PageId) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Insert `key` at the front (most-recent position). If already
    /// present, it is moved to the front. Returns true if newly inserted.
    pub fn insert_front(&mut self, key: PageId) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.link_front(idx);
            return false;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].key = key;
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                assert!(i != NIL, "LinkedSet overflow");
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        self.link_front(idx);
        self.map.insert(key, idx);
        true
    }

    /// Remove `key`. Returns true if it was present.
    pub fn remove(&mut self, key: PageId) -> bool {
        match self.map.remove(&key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Remove and return the oldest element (the back).
    pub fn pop_oldest(&mut self) -> Option<PageId> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.nodes[idx as usize].key;
        self.unlink(idx);
        self.map.remove(&key);
        self.free.push(idx);
        Some(key)
    }

    /// Oldest element without removing it.
    pub fn peek_oldest(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| self.nodes[self.tail as usize].key)
    }

    /// Most recently inserted element.
    pub fn peek_newest(&self) -> Option<PageId> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].key)
    }

    /// Iterate newest-to-oldest.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let n = &self.nodes[cur as usize];
                cur = n.next;
                Some(n.key)
            }
        })
    }

    /// Structural self-check for tests.
    pub fn check(&self) {
        let mut count = 0;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            assert_eq!(n.prev, prev);
            assert_eq!(self.map.get(&n.key), Some(&cur));
            prev = cur;
            cur = n.next;
            count += 1;
            assert!(count <= self.map.len(), "cycle in LinkedSet");
        }
        assert_eq!(prev, self.tail);
        assert_eq!(count, self.map.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_order_and_pop() {
        let mut s = LinkedSet::with_capacity(4);
        for k in [1u64, 2, 3] {
            assert!(s.insert_front(k));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.peek_oldest(), Some(1));
        assert_eq!(s.peek_newest(), Some(3));
        assert_eq!(s.pop_oldest(), Some(1));
        assert_eq!(s.pop_oldest(), Some(2));
        assert_eq!(s.pop_oldest(), Some(3));
        assert_eq!(s.pop_oldest(), None);
        s.check();
    }

    #[test]
    fn reinsert_moves_to_front() {
        let mut s = LinkedSet::with_capacity(4);
        s.insert_front(1);
        s.insert_front(2);
        assert!(!s.insert_front(1)); // already present
        assert_eq!(s.peek_newest(), Some(1));
        assert_eq!(s.peek_oldest(), Some(2));
        assert_eq!(s.len(), 2);
        s.check();
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut s = LinkedSet::with_capacity(2);
        s.insert_front(10);
        s.insert_front(20);
        s.insert_front(30);
        assert!(s.remove(20));
        assert!(!s.remove(20));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![30, 10]);
        s.insert_front(40); // reuses freed slot
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![40, 30, 10]);
        s.check();
    }

    #[test]
    fn contains_tracks_membership() {
        let mut s = LinkedSet::with_capacity(1);
        assert!(!s.contains(5));
        s.insert_front(5);
        assert!(s.contains(5));
        s.pop_oldest();
        assert!(!s.contains(5));
    }
}
