//! Core vocabulary types shared by every replacement policy.
//!
//! A policy manages a fixed set of buffer *frames*. The buffer pool performs
//! the page-table lookup, so a **hit** is reported by frame id (no hash
//! lookup inside the policy), while a **miss** is reported by page id so
//! that policies with ghost lists (2Q, LIRS, MQ, ARC, CAR, CLOCK-Pro) can
//! consult their history of evicted pages.
//!
//! This frame-centric design mirrors how PostgreSQL embeds replacement
//! metadata in each `BufferDesc`, and is what lets the BP-Wrapper prefetch
//! technique compute stable addresses for the metadata of queued accesses.

/// Identifier of an on-disk page (what the paper calls a `BufferTag`,
/// flattened to one integer).
pub type PageId = u64;

/// Index of a buffer frame (slot) in the pool, `0..frames`.
pub type FrameId = u32;

/// Result of reporting a miss to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissOutcome {
    /// The page was admitted into the supplied free frame.
    AdmittedFree(FrameId),
    /// The page was admitted into `frame` after evicting `victim` from it.
    Evicted { frame: FrameId, victim: PageId },
    /// Every candidate frame was rejected by the `evictable` filter
    /// (e.g. all pinned). The page was *not* admitted.
    NoEvictableFrame,
}

impl MissOutcome {
    /// Frame the page was admitted into, if it was admitted.
    pub fn frame(&self) -> Option<FrameId> {
        match *self {
            MissOutcome::AdmittedFree(f) => Some(f),
            MissOutcome::Evicted { frame, .. } => Some(frame),
            MissOutcome::NoEvictableFrame => None,
        }
    }

    /// Page that was evicted, if any.
    pub fn victim(&self) -> Option<PageId> {
        match *self {
            MissOutcome::Evicted { victim, .. } => Some(victim),
            _ => None,
        }
    }
}

/// A stable memory region holding per-frame policy metadata, exposed for
/// BP-Wrapper's prefetch technique.
///
/// The paper prefetches "the forward and/or backward pointers involved in
/// the movement of accessed pages" before acquiring the lock. Policies in
/// this crate keep those pointers in a fixed-size node arena whose
/// allocation never moves or grows, so the address of frame `f`'s node is
/// `base + f * stride` for the lifetime of the policy.
///
/// Addresses are carried as `usize` so the descriptor is `Send + Sync`;
/// they are only ever passed to a hardware prefetch instruction, never
/// dereferenced, so concurrent mutation of the nodes is harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRegion {
    /// Address of the node for frame 0.
    pub base: usize,
    /// Bytes between consecutive frame nodes.
    pub stride: usize,
    /// Number of frame nodes (prefetching beyond `count` is invalid).
    pub count: usize,
}

impl NodeRegion {
    /// Address of the node for `frame`, if in range.
    pub fn addr_of(&self, frame: FrameId) -> Option<usize> {
        ((frame as usize) < self.count).then(|| self.base + frame as usize * self.stride)
    }
}

/// A page-replacement algorithm over a fixed set of frames.
///
/// Implementations are **not** internally synchronized: that is the whole
/// point of the paper. Callers either serialize access with a lock
/// (`LockPerAccess`), or wrap the policy in
/// [`BpWrapper`](../../bpw_core/index.html) to batch accesses.
///
/// # Contract
///
/// * `free` passed to [`record_miss`](Self::record_miss) must be `Some`
///   if and only if `resident_count() < frames()`, and must name a frame
///   the policy is not currently tracking.
/// * [`record_hit`](Self::record_hit) must only be called for frames that
///   currently hold a resident page. Hits on untracked frames are ignored
///   (this tolerance is required by delayed batched commits: the page may
///   have been evicted between recording and committing).
pub trait ReplacementPolicy: Send {
    /// Human-readable algorithm name (e.g. `"2Q"`).
    fn name(&self) -> &'static str;

    /// Total number of frames managed.
    fn frames(&self) -> usize;

    /// Number of frames currently holding a resident page.
    fn resident_count(&self) -> usize;

    /// Record a buffer hit on `frame`.
    fn record_hit(&mut self, frame: FrameId);

    /// Record a buffer miss on `page` and choose where to place it.
    ///
    /// `evictable` filters candidate victims (the pool rejects pinned
    /// frames). Policies consider candidates in their natural eviction
    /// order and take the first accepted one.
    fn record_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome;

    /// Forget the page in `frame` (explicit invalidation, e.g. table drop).
    /// Returns the page that was resident there, if any.
    fn remove(&mut self, frame: FrameId) -> Option<PageId>;

    /// Page currently resident in `frame`, if any.
    fn page_at(&self, frame: FrameId) -> Option<PageId>;

    /// All `(frame, page)` pairs currently resident. Intended for tests
    /// and invariant checks; O(frames).
    fn resident_pages(&self) -> Vec<(FrameId, PageId)> {
        (0..self.frames() as FrameId)
            .filter_map(|f| self.page_at(f).map(|p| (f, p)))
            .collect()
    }

    /// Validate internal invariants, panicking on violation.
    /// No-op by default; every policy in this crate overrides it.
    fn check_invariants(&self) {}

    /// Stable region of per-frame metadata for lock-free prefetching,
    /// if the policy can expose one. See [`NodeRegion`].
    fn node_region(&self) -> Option<NodeRegion> {
        None
    }
}

/// Convenience: record a miss with no free frame and no eviction filter.
pub fn miss_full(policy: &mut dyn ReplacementPolicy, page: PageId) -> MissOutcome {
    policy.record_miss(page, None, &mut |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_outcome_accessors() {
        assert_eq!(MissOutcome::AdmittedFree(3).frame(), Some(3));
        assert_eq!(MissOutcome::AdmittedFree(3).victim(), None);
        let e = MissOutcome::Evicted {
            frame: 7,
            victim: 42,
        };
        assert_eq!(e.frame(), Some(7));
        assert_eq!(e.victim(), Some(42));
        assert_eq!(MissOutcome::NoEvictableFrame.frame(), None);
        assert_eq!(MissOutcome::NoEvictableFrame.victim(), None);
    }
}
