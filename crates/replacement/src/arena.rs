//! Intrusive doubly-linked lists over a shared node arena.
//!
//! Replacement policies juggle several lists over the same set of frames
//! (ARC's T1/T2, LIRS's stack S and queue Q, MQ's queue ladder). Storing
//! link words in one fixed arena — indexed by frame id for resident pages,
//! and by allocated ghost slots above `frames` for history entries — gives:
//!
//! * O(1) insert/remove/move with no per-operation allocation,
//! * stable addresses for BP-Wrapper's prefetch technique (the node for
//!   frame `f` lives at a fixed offset for the lifetime of the policy),
//! * cheap membership tests via an owner tag per node.

/// Sentinel index meaning "no node".
pub const NIL: u32 = u32::MAX;

/// Owner tag for a node that is in no list.
pub const NO_LIST: u8 = u8::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    prev: u32,
    next: u32,
    owner: u8,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            prev: NIL,
            next: NIL,
            owner: NO_LIST,
        }
    }
}

/// Fixed-size arena of list nodes. Node indices are assigned by the caller
/// (policies use `0..frames` for resident frames and manage ghost indices
/// with [`GhostSlots`]).
pub struct Arena {
    nodes: Vec<Node>,
    next_list_id: u8,
}

impl Arena {
    /// Create an arena with `n` nodes, all initially unlinked.
    pub fn new(n: usize) -> Self {
        assert!(n < NIL as usize, "arena too large");
        Arena {
            nodes: vec![Node::default(); n],
            next_list_id: 0,
        }
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocate a new list handle with a unique owner id.
    pub fn new_list(&mut self) -> List {
        let id = self.next_list_id;
        assert!(id != NO_LIST, "too many lists for one arena");
        self.next_list_id += 1;
        List {
            head: NIL,
            tail: NIL,
            len: 0,
            id,
        }
    }

    /// Address of node 0 and the byte stride between nodes, for building
    /// a [`NodeRegion`](crate::traits::NodeRegion). The node storage is
    /// allocated once in [`Arena::new`] and never grows or moves, so the
    /// addresses are stable for the arena's lifetime.
    pub fn raw_parts(&self) -> (usize, usize) {
        (self.nodes.as_ptr() as usize, std::mem::size_of::<Node>())
    }

    /// Owner list id of `node`, or [`NO_LIST`].
    pub fn owner(&self, node: u32) -> u8 {
        self.nodes[node as usize].owner
    }

    /// True if `node` belongs to no list.
    pub fn is_free(&self, node: u32) -> bool {
        self.owner(node) == NO_LIST
    }
}

/// A doubly-linked list handle. All operations take the shared [`Arena`].
#[derive(Debug, Clone, Copy)]
pub struct List {
    head: u32,
    tail: u32,
    len: usize,
    id: u8,
}

impl List {
    /// Number of nodes in this list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First (front / MRU) node, or `None`.
    pub fn front(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last (back / LRU) node, or `None`.
    pub fn back(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// True if `node` is a member of this list.
    pub fn contains(&self, arena: &Arena, node: u32) -> bool {
        arena.nodes[node as usize].owner == self.id
    }

    /// Successor of `node` towards the back, or `None`.
    pub fn next(&self, arena: &Arena, node: u32) -> Option<u32> {
        debug_assert!(self.contains(arena, node));
        let n = arena.nodes[node as usize].next;
        (n != NIL).then_some(n)
    }

    /// Predecessor of `node` towards the front, or `None`.
    pub fn prev(&self, arena: &Arena, node: u32) -> Option<u32> {
        debug_assert!(self.contains(arena, node));
        let p = arena.nodes[node as usize].prev;
        (p != NIL).then_some(p)
    }

    /// Link an unowned node at the front.
    pub fn push_front(&mut self, arena: &mut Arena, node: u32) {
        assert!(
            arena.is_free(node),
            "node {node} already in list {}",
            arena.owner(node)
        );
        let n = &mut arena.nodes[node as usize];
        n.owner = self.id;
        n.prev = NIL;
        n.next = self.head;
        if self.head != NIL {
            arena.nodes[self.head as usize].prev = node;
        } else {
            self.tail = node;
        }
        self.head = node;
        self.len += 1;
    }

    /// Link an unowned node at the back.
    pub fn push_back(&mut self, arena: &mut Arena, node: u32) {
        assert!(
            arena.is_free(node),
            "node {node} already in list {}",
            arena.owner(node)
        );
        let n = &mut arena.nodes[node as usize];
        n.owner = self.id;
        n.next = NIL;
        n.prev = self.tail;
        if self.tail != NIL {
            arena.nodes[self.tail as usize].next = node;
        } else {
            self.head = node;
        }
        self.tail = node;
        self.len += 1;
    }

    /// Link an unowned node immediately before member node `pos`.
    pub fn insert_before(&mut self, arena: &mut Arena, pos: u32, node: u32) {
        assert!(
            self.contains(arena, pos),
            "pos {pos} not in list {}",
            self.id
        );
        assert!(
            arena.is_free(node),
            "node {node} already in list {}",
            arena.owner(node)
        );
        let prev = arena.nodes[pos as usize].prev;
        let n = &mut arena.nodes[node as usize];
        n.owner = self.id;
        n.prev = prev;
        n.next = pos;
        arena.nodes[pos as usize].prev = node;
        if prev != NIL {
            arena.nodes[prev as usize].next = node;
        } else {
            self.head = node;
        }
        self.len += 1;
    }

    /// Link an unowned node immediately after member node `pos`.
    pub fn insert_after(&mut self, arena: &mut Arena, pos: u32, node: u32) {
        assert!(
            self.contains(arena, pos),
            "pos {pos} not in list {}",
            self.id
        );
        assert!(
            arena.is_free(node),
            "node {node} already in list {}",
            arena.owner(node)
        );
        let next = arena.nodes[pos as usize].next;
        let n = &mut arena.nodes[node as usize];
        n.owner = self.id;
        n.prev = pos;
        n.next = next;
        arena.nodes[pos as usize].next = node;
        if next != NIL {
            arena.nodes[next as usize].prev = node;
        } else {
            self.tail = node;
        }
        self.len += 1;
    }

    /// Unlink a member node.
    pub fn remove(&mut self, arena: &mut Arena, node: u32) {
        assert!(
            self.contains(arena, node),
            "node {node} not in list {} (owner {})",
            self.id,
            arena.owner(node)
        );
        let Node { prev, next, .. } = arena.nodes[node as usize];
        if prev != NIL {
            arena.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            arena.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        arena.nodes[node as usize] = Node::default();
        self.len -= 1;
    }

    /// Unlink and return the back node.
    pub fn pop_back(&mut self, arena: &mut Arena) -> Option<u32> {
        let t = self.back()?;
        self.remove(arena, t);
        Some(t)
    }

    /// Unlink and return the front node.
    pub fn pop_front(&mut self, arena: &mut Arena) -> Option<u32> {
        let h = self.front()?;
        self.remove(arena, h);
        Some(h)
    }

    /// Move a member node to the front (MRU position).
    pub fn move_to_front(&mut self, arena: &mut Arena, node: u32) {
        if self.head == node {
            return;
        }
        self.remove(arena, node);
        self.push_front(arena, node);
    }

    /// Move a member node to the back.
    pub fn move_to_back(&mut self, arena: &mut Arena, node: u32) {
        if self.tail == node {
            return;
        }
        self.remove(arena, node);
        self.push_back(arena, node);
    }

    /// Iterate node indices front-to-back.
    pub fn iter<'a>(&'a self, arena: &'a Arena) -> impl Iterator<Item = u32> + 'a {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let node = cur;
                cur = arena.nodes[cur as usize].next;
                Some(node)
            }
        })
    }

    /// Iterate node indices back-to-front (eviction order for LRU lists).
    pub fn iter_rev<'a>(&'a self, arena: &'a Arena) -> impl Iterator<Item = u32> + 'a {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let node = cur;
                cur = arena.nodes[cur as usize].prev;
                Some(node)
            }
        })
    }

    /// Walk the list asserting structural consistency; returns length.
    pub fn check(&self, arena: &Arena) -> usize {
        let mut count = 0;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let n = &arena.nodes[cur as usize];
            assert_eq!(n.owner, self.id, "node {cur} owner mismatch");
            assert_eq!(n.prev, prev, "node {cur} prev link broken");
            prev = cur;
            cur = n.next;
            count += 1;
            assert!(count <= self.len, "cycle detected in list {}", self.id);
        }
        assert_eq!(prev, self.tail, "tail mismatch in list {}", self.id);
        assert_eq!(count, self.len, "length mismatch in list {}", self.id);
        count
    }
}

/// Free-slot allocator for ghost nodes living above the frame range of an
/// arena. Policies that remember evicted pages allocate their history
/// entries here.
pub struct GhostSlots {
    free: Vec<u32>,
    base: u32,
    count: usize,
}

impl GhostSlots {
    /// Manage slots `base .. base + n` of an arena.
    pub fn new(base: u32, n: usize) -> Self {
        GhostSlots {
            free: (0..n as u32).rev().map(|i| base + i).collect(),
            base,
            count: n,
        }
    }

    /// First managed slot index.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Total managed slots.
    pub fn capacity(&self) -> usize {
        self.count
    }

    /// Slots currently handed out.
    pub fn in_use(&self) -> usize {
        self.count - self.free.len()
    }

    /// Take a free slot, if any remain.
    pub fn alloc(&mut self) -> Option<u32> {
        self.free.pop()
    }

    /// Return a slot. Must have come from this allocator.
    pub fn dealloc(&mut self, slot: u32) {
        debug_assert!(slot >= self.base && (slot - self.base) < self.count as u32);
        debug_assert!(
            !self.free.contains(&slot),
            "double free of ghost slot {slot}"
        );
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut a = Arena::new(8);
        let mut l = a.new_list();
        for i in 0..4 {
            l.push_front(&mut a, i);
        }
        // front-to-back: 3 2 1 0
        let order: Vec<u32> = l.iter(&a).collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
        let rev: Vec<u32> = l.iter_rev(&a).collect();
        assert_eq!(rev, vec![0, 1, 2, 3]);
        assert_eq!(l.pop_back(&mut a), Some(0));
        assert_eq!(l.pop_front(&mut a), Some(3));
        assert_eq!(l.len(), 2);
        l.check(&a);
    }

    #[test]
    fn move_to_front_and_back() {
        let mut a = Arena::new(4);
        let mut l = a.new_list();
        for i in 0..4 {
            l.push_back(&mut a, i);
        }
        l.move_to_front(&mut a, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        l.move_to_back(&mut a, 0);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![2, 1, 3, 0]);
        l.check(&a);
    }

    #[test]
    fn two_lists_share_arena() {
        let mut a = Arena::new(6);
        let mut x = a.new_list();
        let mut y = a.new_list();
        x.push_back(&mut a, 0);
        x.push_back(&mut a, 1);
        y.push_back(&mut a, 2);
        assert!(x.contains(&a, 0));
        assert!(!y.contains(&a, 0));
        // move node 1 from x to y
        x.remove(&mut a, 1);
        y.push_front(&mut a, 1);
        assert_eq!(x.len(), 1);
        assert_eq!(y.iter(&a).collect::<Vec<_>>(), vec![1, 2]);
        x.check(&a);
        y.check(&a);
    }

    #[test]
    #[should_panic(expected = "already in list")]
    fn double_insert_panics() {
        let mut a = Arena::new(2);
        let mut l = a.new_list();
        l.push_back(&mut a, 0);
        l.push_back(&mut a, 0);
    }

    #[test]
    #[should_panic(expected = "not in list")]
    fn remove_from_wrong_list_panics() {
        let mut a = Arena::new(2);
        let mut x = a.new_list();
        let mut y = a.new_list();
        x.push_back(&mut a, 0);
        y.remove(&mut a, 0);
    }

    #[test]
    fn insert_before_and_after() {
        let mut a = Arena::new(6);
        let mut l = a.new_list();
        l.push_back(&mut a, 0);
        l.push_back(&mut a, 1);
        l.insert_before(&mut a, 1, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![0, 2, 1]);
        l.insert_before(&mut a, 0, 3); // becomes new head
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![3, 0, 2, 1]);
        l.insert_after(&mut a, 1, 4); // becomes new tail
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![3, 0, 2, 1, 4]);
        l.insert_after(&mut a, 0, 5);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![3, 0, 5, 2, 1, 4]);
        l.check(&a);
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn ghost_slots_alloc_dealloc() {
        let mut g = GhostSlots::new(10, 3);
        assert_eq!(g.capacity(), 3);
        let s1 = g.alloc().unwrap();
        let s2 = g.alloc().unwrap();
        let s3 = g.alloc().unwrap();
        assert!(g.alloc().is_none());
        assert_eq!(g.in_use(), 3);
        for s in [s1, s2, s3] {
            assert!((10..13).contains(&s));
        }
        g.dealloc(s2);
        assert_eq!(g.alloc(), Some(s2));
    }

    #[test]
    fn remove_middle_relinks() {
        let mut a = Arena::new(5);
        let mut l = a.new_list();
        for i in 0..5 {
            l.push_back(&mut a, i);
        }
        l.remove(&mut a, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(l.next(&a, 1), Some(3));
        assert_eq!(l.prev(&a, 3), Some(1));
        l.check(&a);
    }
}
