//! Round-trip guarantees for the hand-rolled JSON module: the trace
//! exporter and the server's STATS/METRICS replies all depend on
//! `parse(render(parse(text)))` being lossless.

use bpw_metrics::{Histogram, JsonObject, JsonValue};

/// parse → render → parse must be a fixed point.
fn assert_roundtrip(text: &str) {
    let v1 = JsonValue::parse(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
    let rendered = v1.render();
    let v2 = JsonValue::parse(&rendered)
        .unwrap_or_else(|e| panic!("re-parse of rendered {rendered:?}: {e}"));
    assert_eq!(
        v1, v2,
        "round-trip changed the value (rendered {rendered:?})"
    );
    // Rendering is deterministic: a second render is byte-identical.
    assert_eq!(v2.render(), rendered);
}

#[test]
fn nested_objects_and_arrays_round_trip() {
    assert_roundtrip(r#"{"a":{"b":[1,2,{"c":[[],{}]}],"d":null},"e":[true,false]}"#);
    assert_roundtrip("[]");
    assert_roundtrip("{}");
    assert_roundtrip(r#"[[[[1]]],{"deep":{"deeper":{"deepest":0}}}]"#);
}

#[test]
fn escape_sequences_round_trip() {
    assert_roundtrip(r#""quote \" backslash \\ newline \n tab \t cr \r""#);
    assert_roundtrip(r#""control   and unicode é snowman ☃""#);
    assert_roundtrip(r#"{"key with \"quotes\"":"value\nwith\nnewlines"}"#);
    // Solidus and the two-char escapes parse to the same chars however
    // they were written, and re-render canonically.
    let v = JsonValue::parse(
        r#""a\/b
c""#,
    )
    .unwrap();
    assert_eq!(v.as_str(), Some("a/b\nc"));
    assert_roundtrip(
        r#""a\/b
c""#,
    );
}

#[test]
fn large_integers_round_trip_exactly() {
    // Everything up to 2^53 is exact in an f64 and must render as an
    // integer literal, not in exponent notation.
    let max_exact = (1u64 << 53).to_string();
    assert_roundtrip(&max_exact);
    let v = JsonValue::parse(&max_exact).unwrap();
    assert_eq!(v.render(), max_exact);
    assert_eq!(v.as_u64(), Some(1u64 << 53));

    assert_roundtrip("9007199254740992"); // 2^53
    assert_roundtrip("-9007199254740992");
    assert_roundtrip("123456789012345");
    // Beyond 2^53 the *parsed* f64 value still round-trips (even though
    // the decimal text may not survive verbatim).
    assert_roundtrip("18446744073709551615");
    assert_roundtrip("1e300");
    assert_roundtrip("-2.5e-7");
    assert_roundtrip("0.1");
}

#[test]
fn negative_and_fractional_numbers_round_trip() {
    assert_roundtrip("[-1,0,1,-0.5,3.25,1000000]");
    // -0.0 compares equal to 0.0; rendering as 0 is acceptable.
    assert_roundtrip("-0.0");
}

#[test]
fn builder_output_round_trips() {
    let mut o = JsonObject::new();
    o.field_u64("count", u64::MAX / 2)
        .field_f64("ratio", 0.123456789)
        .field_str("name", "zipf \"0.86\"\n\ttail")
        .field_bool("ok", true)
        .field_raw("nested", r#"{"xs":[1,2,3],"s":""}"#);
    assert_roundtrip(&o.finish());
}

#[test]
fn histogram_json_with_buckets_round_trips() {
    let h = Histogram::new();
    for v in [0u64, 1, 5, 5, 900, u64::MAX] {
        h.record(v);
    }
    let text = h.to_json();
    assert_roundtrip(&text);
    let v = JsonValue::parse(&text).unwrap();
    let JsonValue::Arr(buckets) = v.get("buckets").unwrap() else {
        panic!("buckets must be an array");
    };
    // Occupied buckets: {0}, {1}, {5,5} in [4,7], {900} in [512,1023],
    // and u64::MAX clamped into bucket 63 (floor 2^62).
    let pairs: Vec<(u64, u64)> = buckets
        .iter()
        .map(|b| {
            let JsonValue::Arr(pair) = b else {
                panic!("bucket entries are [lower, count] pairs")
            };
            // Bucket 63's lower bound (2^62) exceeds as_u64's 2^53
            // exactness guard, but powers of two are exact in f64.
            (pair[0].as_f64().unwrap() as u64, pair[1].as_u64().unwrap())
        })
        .collect();
    assert_eq!(pairs, vec![(0, 1), (1, 1), (4, 2), (512, 1), (1 << 62, 1)]);
    assert_eq!(
        pairs.iter().map(|&(_, c)| c).sum::<u64>(),
        v.get("count").unwrap().as_u64().unwrap()
    );
}

#[test]
fn empty_histogram_buckets_render_as_empty_array() {
    let h = Histogram::new();
    let v = JsonValue::parse(&h.to_json()).unwrap();
    assert_eq!(v.get("buckets"), Some(&JsonValue::Arr(vec![])));
    assert_roundtrip(&h.to_json());
}
