//! # bpw-metrics
//!
//! Instrumentation shared by the BP-Wrapper reproduction: padded atomic
//! counters, lock-behaviour statistics matching the paper's metrics
//! (contentions per million accesses, lock time per access), and a
//! log2-bucketed histogram for response times.

pub mod counters;
pub mod histogram;
pub mod json;
pub mod lock_stats;
pub mod seqlock;

pub use counters::{Counter, Gauge, MaxGauge};
pub use histogram::Histogram;
pub use json::{JsonError, JsonObject, JsonValue};
pub use lock_stats::{LockShardSummary, LockSnapshot, LockStats};
pub use seqlock::{Seqlock, SnapshotCache};
