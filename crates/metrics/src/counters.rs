//! Cache-line-padded atomic counters for hot-path instrumentation.
//!
//! The paper's whole subject is cross-processor cache-line traffic, so
//! the instrumentation must not introduce false sharing of its own:
//! every counter lives on its own cache line (`crossbeam`'s
//! `CachePadded`), and all updates are `Relaxed` — we only ever read
//! aggregates after a run quiesces.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// A monotonically increasing event counter, safe to bump from any
/// thread without synchronization overhead beyond the atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: CachePadded<AtomicU64>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// An up/down gauge for population counts (open connections, in-flight
/// requests): increments on entry, decrements on exit, and remembers
/// its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: CachePadded<AtomicU64>,
    peak: CachePadded<AtomicU64>,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// One more member in the population.
    #[inline]
    pub fn incr(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// One fewer. Saturates at zero rather than wrapping, so a stray
    /// double-decrement corrupts one reading, not every later one.
    #[inline]
    pub fn decr(&self) {
        let mut cur = self.value.load(Ordering::Relaxed);
        while cur > 0 {
            match self.value.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record an instantaneous sample (e.g. a per-critical-section
    /// depth): replaces the current value and raises the peak.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current population.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest population ever observed.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A gauge tracking a maximum observed value.
#[derive(Debug, Default)]
pub struct MaxGauge {
    value: CachePadded<AtomicU64>,
}

impl MaxGauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation, keeping the maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Largest observation so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basic() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_concurrent_sum() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_population_and_peak() {
        let g = Gauge::new();
        g.incr();
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 3);
        g.decr();
        g.decr();
        g.decr(); // extra decrement saturates instead of wrapping
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 3);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge::new();
        g.observe(5);
        g.observe(3);
        g.observe(9);
        g.observe(1);
        assert_eq!(g.get(), 9);
    }
}
