//! Lock-behaviour statistics matching the paper's measurements.
//!
//! The paper reports two lock metrics:
//!
//! * **Average lock contention** (§IV-C): "a lock contention happens when
//!   a lock request cannot be immediately satisfied", normalized to
//!   contentions **per million page accesses** — [`LockStats::contentions_per_million`].
//! * **Lock acquisition and holding time per access** (Fig. 2):
//!   [`LockStats::hold_ns`] plus [`LockStats::wait_ns`] divided by the
//!   accesses they covered.

use std::time::Duration;

use crate::counters::Counter;

/// Shared, thread-safe lock statistics. One instance is attached to each
/// replacement-algorithm lock; every wrapper implementation reports into
/// it.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Successful lock acquisitions (blocking or try-lock).
    pub acquisitions: Counter,
    /// Acquisitions that could not be satisfied immediately
    /// (the paper's "lock contention" events).
    pub contentions: Counter,
    /// Non-blocking `try_lock` attempts that failed.
    pub trylock_failures: Counter,
    /// Total nanoseconds spent waiting for the lock.
    pub wait_ns: Counter,
    /// Total nanoseconds the lock was held.
    pub hold_ns: Counter,
    /// Page accesses whose bookkeeping the lock protected.
    pub accesses_covered: Counter,
}

/// An owned copy of [`LockStats`] at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Successful lock acquisitions.
    pub acquisitions: u64,
    /// Blocked acquisitions (paper's contention events).
    pub contentions: u64,
    /// Failed try-lock attempts.
    pub trylock_failures: u64,
    /// Nanoseconds spent waiting.
    pub wait_ns: u64,
    /// Nanoseconds spent holding.
    pub hold_ns: u64,
    /// Accesses covered.
    pub accesses_covered: u64,
}

impl LockStats {
    /// New, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successful acquisition.
    #[inline]
    pub fn record_acquisition(&self, contended: bool, wait: Duration) {
        self.acquisitions.incr();
        if contended {
            self.contentions.incr();
        }
        self.wait_ns.add(wait.as_nanos() as u64);
    }

    /// Record a failed try-lock.
    #[inline]
    pub fn record_trylock_failure(&self) {
        self.trylock_failures.incr();
    }

    /// Record a completed critical section covering `accesses` page
    /// accesses.
    #[inline]
    pub fn record_release(&self, held: Duration, accesses: u64) {
        self.hold_ns.add(held.as_nanos() as u64);
        self.accesses_covered.add(accesses);
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> LockSnapshot {
        LockSnapshot {
            acquisitions: self.acquisitions.get(),
            contentions: self.contentions.get(),
            trylock_failures: self.trylock_failures.get(),
            wait_ns: self.wait_ns.get(),
            hold_ns: self.hold_ns.get(),
            accesses_covered: self.accesses_covered.get(),
        }
    }

    /// The paper's "average lock contention": blocked acquisitions per
    /// million page accesses. `total_accesses` is the workload's access
    /// count (hits + misses), not just those that took the lock.
    pub fn contentions_per_million(&self, total_accesses: u64) -> f64 {
        if total_accesses == 0 {
            return 0.0;
        }
        self.contentions.get() as f64 * 1e6 / total_accesses as f64
    }
}

/// Aggregate view over a family of sharded locks (e.g. the buffer
/// pool's per-shard miss locks): totals across shards plus the worst
/// single shard's wait, which totals alone would hide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockShardSummary {
    /// Number of shards aggregated.
    pub shards: usize,
    /// Acquisitions summed over all shards.
    pub total_acquisitions: u64,
    /// Contentions summed over all shards.
    pub total_contentions: u64,
    /// Wait time summed over all shards.
    pub total_wait_ns: u64,
    /// Hold time summed over all shards.
    pub total_hold_ns: u64,
    /// The largest per-shard cumulative wait (hotspot indicator).
    pub max_wait_ns: u64,
}

impl LockShardSummary {
    /// Aggregate a family of per-shard snapshots.
    pub fn from_snapshots(shards: &[LockSnapshot]) -> Self {
        let mut s = LockShardSummary {
            shards: shards.len(),
            ..Self::default()
        };
        for snap in shards {
            s.total_acquisitions += snap.acquisitions;
            s.total_contentions += snap.contentions;
            s.total_wait_ns += snap.wait_ns;
            s.total_hold_ns += snap.hold_ns;
            s.max_wait_ns = s.max_wait_ns.max(snap.wait_ns);
        }
        s
    }
}

impl LockSnapshot {
    /// Element-wise sum with another snapshot (aggregating a lock
    /// family into the legacy single-lock view).
    pub fn merge(&self, other: &LockSnapshot) -> LockSnapshot {
        LockSnapshot {
            acquisitions: self.acquisitions + other.acquisitions,
            contentions: self.contentions + other.contentions,
            trylock_failures: self.trylock_failures + other.trylock_failures,
            wait_ns: self.wait_ns + other.wait_ns,
            hold_ns: self.hold_ns + other.hold_ns,
            accesses_covered: self.accesses_covered + other.accesses_covered,
        }
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &LockSnapshot) -> LockSnapshot {
        LockSnapshot {
            acquisitions: self.acquisitions - earlier.acquisitions,
            contentions: self.contentions - earlier.contentions,
            trylock_failures: self.trylock_failures - earlier.trylock_failures,
            wait_ns: self.wait_ns - earlier.wait_ns,
            hold_ns: self.hold_ns - earlier.hold_ns,
            accesses_covered: self.accesses_covered - earlier.accesses_covered,
        }
    }

    /// Fig. 2's metric: (wait + hold) time per covered access.
    pub fn lock_time_per_access_ns(&self) -> f64 {
        if self.accesses_covered == 0 {
            return 0.0;
        }
        (self.wait_ns + self.hold_ns) as f64 / self.accesses_covered as f64
    }

    /// Mean accesses committed per lock acquisition (the effective batch
    /// size achieved).
    pub fn accesses_per_acquisition(&self) -> f64 {
        if self.acquisitions == 0 {
            return 0.0;
        }
        self.accesses_covered as f64 / self.acquisitions as f64
    }

    /// Blocked acquisitions per million covered accesses.
    pub fn contentions_per_million(&self, total_accesses: u64) -> f64 {
        if total_accesses == 0 {
            return 0.0;
        }
        self.contentions as f64 * 1e6 / total_accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = LockStats::new();
        s.record_acquisition(false, Duration::from_nanos(100));
        s.record_acquisition(true, Duration::from_nanos(900));
        s.record_trylock_failure();
        s.record_release(Duration::from_nanos(500), 16);
        s.record_release(Duration::from_nanos(300), 1);
        let snap = s.snapshot();
        assert_eq!(snap.acquisitions, 2);
        assert_eq!(snap.contentions, 1);
        assert_eq!(snap.trylock_failures, 1);
        assert_eq!(snap.wait_ns, 1000);
        assert_eq!(snap.hold_ns, 800);
        assert_eq!(snap.accesses_covered, 17);
    }

    #[test]
    fn per_million_normalization() {
        let s = LockStats::new();
        for _ in 0..5 {
            s.record_acquisition(true, Duration::ZERO);
        }
        assert_eq!(s.contentions_per_million(1_000_000), 5.0);
        assert_eq!(s.contentions_per_million(500_000), 10.0);
        assert_eq!(s.contentions_per_million(0), 0.0);
    }

    #[test]
    fn snapshot_delta_and_derived() {
        let s = LockStats::new();
        s.record_acquisition(false, Duration::from_nanos(10));
        s.record_release(Duration::from_nanos(90), 10);
        let a = s.snapshot();
        s.record_acquisition(true, Duration::from_nanos(40));
        s.record_release(Duration::from_nanos(60), 10);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.acquisitions, 1);
        assert_eq!(d.contentions, 1);
        assert!((d.lock_time_per_access_ns() - 10.0).abs() < 1e-9);
        assert!((d.accesses_per_acquisition() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = LockSnapshot {
            acquisitions: 1,
            contentions: 2,
            trylock_failures: 3,
            wait_ns: 4,
            hold_ns: 5,
            accesses_covered: 6,
        };
        let b = LockSnapshot {
            acquisitions: 10,
            contentions: 20,
            trylock_failures: 30,
            wait_ns: 40,
            hold_ns: 50,
            accesses_covered: 60,
        };
        let m = a.merge(&b);
        assert_eq!(m.acquisitions, 11);
        assert_eq!(m.contentions, 22);
        assert_eq!(m.trylock_failures, 33);
        assert_eq!(m.wait_ns, 44);
        assert_eq!(m.hold_ns, 55);
        assert_eq!(m.accesses_covered, 66);
    }

    #[test]
    fn shard_summary_totals_and_max() {
        let shards = vec![
            LockSnapshot {
                acquisitions: 5,
                contentions: 1,
                wait_ns: 100,
                hold_ns: 10,
                ..Default::default()
            },
            LockSnapshot {
                acquisitions: 7,
                contentions: 2,
                wait_ns: 900,
                hold_ns: 20,
                ..Default::default()
            },
            LockSnapshot::default(),
        ];
        let s = LockShardSummary::from_snapshots(&shards);
        assert_eq!(s.shards, 3);
        assert_eq!(s.total_acquisitions, 12);
        assert_eq!(s.total_contentions, 3);
        assert_eq!(s.total_wait_ns, 1000);
        assert_eq!(s.total_hold_ns, 30);
        assert_eq!(s.max_wait_ns, 900);
        assert_eq!(LockShardSummary::from_snapshots(&[]).shards, 0);
    }

    #[test]
    fn empty_snapshot_derived_are_zero() {
        let d = LockSnapshot::default();
        assert_eq!(d.lock_time_per_access_ns(), 0.0);
        assert_eq!(d.accesses_per_acquisition(), 0.0);
        assert_eq!(d.contentions_per_million(100), 0.0);
    }
}
