//! Hand-rolled JSON encoding and decoding — no serde.
//!
//! The metrics crate ships its numbers across process boundaries (the
//! page server's `STATS` reply, experiment artifacts) as JSON. The
//! workspace builds offline with no serde available, so this module
//! provides the two pieces actually needed: an escape-correct object
//! writer ([`JsonObject`]) and a small recursive-descent parser
//! ([`JsonValue::parse`]) for consuming those replies in clients and
//! tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn escape_str_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values have no JSON
/// representation and are emitted as `null`.
pub fn write_f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is valid JSON for every
        // finite double ("25" for 25.0, "1e300", ...).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object: `{"k":v,...}`.
///
/// ```
/// use bpw_metrics::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_u64("count", 3).field_str("name", "zipf \"0.86\"");
/// assert_eq!(o.finish(), r#"{"count":3,"name":"zipf \"0.86\""}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_str_into(&mut self.buf, k);
        self.buf.push(':');
        self
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`null` if non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64_into(&mut self.buf, v);
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape_str_into(&mut self.buf, v);
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON (for nesting
    /// objects built elsewhere). The caller vouches for its validity.
    pub fn field_raw(&mut self, k: &str, raw_json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw_json);
        self
    }

    /// Close the object and return the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64; exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

/// Error from [`JsonValue::parse`]: a message and the byte offset where
/// parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    JsonError {
                                        message: "truncated \\u escape".into(),
                                        offset: self.pos,
                                    }
                                })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                                message: "invalid \\u escape".into(),
                                offset: self.pos,
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: "invalid \\u escape".into(),
                                offset: self.pos,
                            })?;
                            // Surrogate pairs are not needed for metric
                            // payloads; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Num(v)),
            _ => {
                self.pos = start;
                self.err(format!("invalid number `{text}`"))
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

impl JsonValue {
    /// Parse one JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters");
        }
        Ok(v)
    }

    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render back to JSON text. `parse(render(v)) == v` for every
    /// value this type can hold: numbers round-trip because integral
    /// values within the exact-f64 range print as integers and
    /// everything else uses shortest-roundtrip float formatting;
    /// object keys keep the `BTreeMap`'s deterministic order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    write_f64_into(out, *v);
                }
            }
            JsonValue::Str(s) => escape_str_into(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_str_into(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl crate::Histogram {
    /// Render this histogram's summary as a JSON object:
    /// `count`, `mean`, `max`, the `p50`/`p95`/`p99`/`p999` quantiles
    /// (all in the recorded unit), and `buckets` — the occupied
    /// buckets as `[lower_bound, count]` pairs so consumers can
    /// rebuild the full distribution, not just the summary.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("count", self.count())
            .field_f64("mean", self.mean())
            .field_u64("max", self.max())
            .field_u64("p50", self.quantile(0.50))
            .field_u64("p95", self.quantile(0.95))
            .field_u64("p99", self.quantile(0.99))
            .field_u64("p999", self.quantile(0.999))
            .field_raw("buckets", &self.buckets_to_json());
        o.finish()
    }

    /// The occupied buckets as a JSON array of `[lower_bound, count]`
    /// pairs (empty buckets are omitted; an empty histogram renders
    /// `[]`).
    pub fn buckets_to_json(&self) -> String {
        let mut out = String::from("[");
        let mut any = false;
        for (lower, _, count) in self.buckets() {
            if count == 0 {
                continue;
            }
            if any {
                out.push(',');
            }
            any = true;
            let _ = write!(out, "[{lower},{count}]");
        }
        out.push(']');
        out
    }
}

impl crate::LockSnapshot {
    /// Render this snapshot as a JSON object: the six raw counters plus
    /// the derived mean batch size (`accesses_per_acquisition`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("acquisitions", self.acquisitions)
            .field_u64("contentions", self.contentions)
            .field_u64("trylock_failures", self.trylock_failures)
            .field_u64("wait_ns", self.wait_ns)
            .field_u64("hold_ns", self.hold_ns)
            .field_u64("accesses_covered", self.accesses_covered)
            .field_f64("accesses_per_acquisition", self.accesses_per_acquisition());
        o.finish()
    }
}

impl crate::LockShardSummary {
    /// Render as a JSON object: shard count, summed counters, and the
    /// hottest shard's cumulative wait.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("shards", self.shards as u64)
            .field_u64("total_acquisitions", self.total_acquisitions)
            .field_u64("total_contentions", self.total_contentions)
            .field_u64("total_wait_ns", self.total_wait_ns)
            .field_u64("total_hold_ns", self.total_hold_ns)
            .field_u64("max_wait_ns", self.max_wait_ns);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, LockSnapshot};

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut s = String::new();
        escape_str_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn object_builder_round_trips_through_parser() {
        let mut o = JsonObject::new();
        o.field_u64("n", 42)
            .field_f64("pi", 3.5)
            .field_str("name", "he said \"hi\"\n")
            .field_bool("ok", true)
            .field_f64("bad", f64::NAN)
            .field_raw("nested", r#"{"x":1}"#);
        let text = o.finish();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("pi").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("he said \"hi\"\n"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        assert_eq!(v.get("nested").unwrap().get("x").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn parser_handles_arrays_numbers_and_whitespace() {
        let v = JsonValue::parse(" [1, -2.5, 1e3, \"x\", null, [true]] ").unwrap();
        let JsonValue::Arr(items) = &v else {
            panic!("not an array")
        };
        assert_eq!(items.len(), 6);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_f64(), Some(1000.0));
        assert_eq!(items[4], JsonValue::Null);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} x").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn parser_decodes_escapes() {
        let v = JsonValue::parse(r#""aA\n\"\\""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\"\\"));
    }

    #[test]
    fn histogram_json_has_ordered_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let v = JsonValue::parse(&h.to_json()).unwrap();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(1000));
        let p50 = v.get("p50").unwrap().as_u64().unwrap();
        let p99 = v.get("p99").unwrap().as_u64().unwrap();
        let max = v.get("max").unwrap().as_u64().unwrap();
        assert!(p50 > 0 && p50 <= p99 && p99 <= max);
        assert_eq!(max, 1000);
    }

    #[test]
    fn empty_histogram_serializes_to_zeros() {
        let v = JsonValue::parse(&Histogram::new().to_json()).unwrap();
        assert_eq!(v.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("p99").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn lock_snapshot_json_round_trips() {
        let snap = LockSnapshot {
            acquisitions: 10,
            contentions: 2,
            trylock_failures: 3,
            wait_ns: 400,
            hold_ns: 600,
            accesses_covered: 320,
        };
        let v = JsonValue::parse(&snap.to_json()).unwrap();
        assert_eq!(v.get("acquisitions").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("contentions").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("accesses_per_acquisition").unwrap().as_f64(),
            Some(32.0)
        );
    }
}
