//! A log2-bucketed histogram for latency-style measurements.
//!
//! Values are binned by their bit length, giving ~2× resolution across
//! the full `u64` range with a fixed 64-slot footprint — adequate for
//! response-time distributions where we report means and coarse
//! percentiles, and cheap enough for hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-size concurrent histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; 64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        64 - v.leading_zeros() as usize // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, ...
    }

    /// Lowest value that lands in bucket `i` (its representative).
    fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = Self::bucket_index(v).min(63);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean of all samples (sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`q` in `[0,1]`): lower bound of the bucket
    /// containing the q-th sample. Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// Merge another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Reset all buckets to zero.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(2), 2);
        assert_eq!(Histogram::bucket_floor(3), 4);
    }

    #[test]
    fn mean_is_exact() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let median = h.quantile(0.5);
        // 500 lives in bucket [256, 512): floor 256.
        assert_eq!(median, 256);
        let p99 = h.quantile(0.99);
        assert_eq!(p99, 512); // 990 in [512, 1024)
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1 -> smallest sample's bucket
    }

    #[test]
    fn merge_and_clear() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }
}
