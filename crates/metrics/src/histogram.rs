//! A log2-bucketed histogram for latency-style measurements.
//!
//! Values are binned by their bit length, giving ~2× resolution across
//! the full `u64` range with a fixed 64-slot footprint — adequate for
//! response-time distributions where we report means and coarse
//! percentiles, and cheap enough for hot paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-size concurrent histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; 64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        64 - v.leading_zeros() as usize // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, ...
    }

    /// Lowest value that lands in bucket `i` (its representative).
    fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = Self::bucket_index(v).min(63);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean of all samples (sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts: `(lower, upper, count)` for each of the 64
    /// buckets, bounds inclusive. Bucket 0 holds only the value 0;
    /// bucket `i` holds `[2^(i-1), 2^i - 1]`; bucket 63 additionally
    /// absorbs the clamp of 64-bit values (so its upper bound is
    /// `u64::MAX`).
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        (0..64)
            .map(|i| {
                let upper = match i {
                    0 => 0,
                    63 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                (
                    Self::bucket_floor(i),
                    upper,
                    self.buckets[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Approximate quantile (`q` in `[0,1]`): lower bound of the bucket
    /// containing the q-th sample. Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// Merge another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Reset all buckets to zero.
    pub fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(2), 2);
        assert_eq!(Histogram::bucket_floor(3), 4);
    }

    #[test]
    fn mean_is_exact() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let median = h.quantile(0.5);
        // 500 lives in bucket [256, 512): floor 256.
        assert_eq!(median, 256);
        let p99 = h.quantile(0.99);
        assert_eq!(p99, 512); // 990 in [512, 1024)
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1 -> smallest sample's bucket
    }

    #[test]
    fn merge_and_clear() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn quantile_edge_values_zero_and_max() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 0, "a lone 0 lives in bucket 0");
        h.record(u64::MAX);
        // u64::MAX clamps into bucket 63 (floor 2^62).
        assert_eq!(h.quantile(1.0), 1u64 << 62);
        assert_eq!(h.max(), u64::MAX);
        // Out-of-range q is clamped, not a panic.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 1u64 << 62);
    }

    #[test]
    fn bucket_63_clamp_merges_top_two_bit_lengths() {
        // Values of bit length 63 land in bucket 63 naturally; bit
        // length 64 is clamped into the same bucket.
        let h = Histogram::new();
        h.record(1u64 << 62); // bit length 63 -> index 63
        h.record(u64::MAX); // bit length 64 -> clamped to 63
        let b = h.buckets();
        assert_eq!(b[63], (1u64 << 62, u64::MAX, 2));
        assert_eq!(b.iter().map(|&(_, _, c)| c).sum::<u64>(), 2);
    }

    #[test]
    fn buckets_report_bounds_and_counts() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        let b = h.buckets();
        assert_eq!(b.len(), 64);
        assert_eq!(b[0], (0, 0, 1));
        assert_eq!(b[1], (1, 1, 1));
        assert_eq!(b[2], (2, 3, 2));
        assert_eq!(b[3], (4, 7, 2));
        assert_eq!(b[4], (8, 15, 1));
        // Bounds tile the u64 range with no gaps.
        for w in b.windows(2) {
            assert_eq!(w[0].1.wrapping_add(1), w[1].0);
        }
        assert_eq!(
            b.iter().map(|&(_, _, c)| c).sum::<u64>(),
            h.count(),
            "bucket counts must total the sample count"
        );
    }

    #[test]
    fn merged_histogram_preserves_buckets_and_quantiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        let whole = Histogram::new();
        for v in 1..=1000u64 {
            whole.record(v);
        }
        assert_eq!(a.buckets(), whole.buckets());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
