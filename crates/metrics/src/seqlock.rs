//! Seqlock-published snapshots: lock-free readers over a `Copy` value
//! that a (rare) writer replaces wholesale.
//!
//! The STATS/METRICS scrape path aggregates dozens of counters and
//! per-shard lock-stat families into one snapshot. Doing that walk on
//! every scrape makes monitoring interfere with the data path — each
//! counter load drags a hot cache line into shared state, forcing the
//! next worker increment to re-acquire exclusive ownership. A seqlock
//! inverts the cost: one writer performs the walk once and publishes
//! the result; any number of readers copy it out with two sequence
//! loads and no stores to shared memory at all, retrying in the
//! (rare) case a writer ran concurrently.
//!
//! The protocol is the classic even/odd sequence:
//!
//! * writer: `seq += 1` (odd = write in progress), release fence,
//!   store the payload, `seq += 1` (even) with release ordering;
//! * reader: load `seq` (acquire), skip if odd, copy the payload,
//!   acquire fence, re-load `seq`; equal and even ⇒ the copy is a
//!   consistent snapshot, otherwise retry.
//!
//! The payload copy itself uses volatile reads — the standard seqlock
//! compromise (a racing read's bytes may be torn, but a torn copy is
//! *always* discarded by the sequence check before anyone looks at
//! it). `T: Copy` keeps `Drop` out of the discarded-copy path.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// A `Copy` value published by occasional writers to lock-free readers.
///
/// Writers are serialized against each other by a CAS on the sequence
/// word ([`Seqlock::try_write`] fails instead of blocking when another
/// writer holds it), so no external writer lock is needed.
#[derive(Debug, Default)]
pub struct Seqlock<T> {
    seq: AtomicU64,
    data: UnsafeCell<T>,
}

// Readers copy the payload out racily and validate; writers are
// CAS-serialized. T crosses threads by value, hence Send.
unsafe impl<T: Copy + Send> Sync for Seqlock<T> {}

impl<T: Copy> Seqlock<T> {
    /// A seqlock initially holding `value`.
    pub fn new(value: T) -> Self {
        Seqlock {
            seq: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Copy the current value out without writing any shared memory.
    /// Spins only while a writer is mid-publish (a few stores).
    pub fn read(&self) -> T {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: a racing writer may be mutating `data`; the
            // volatile read tolerates the tear and the sequence check
            // below discards any copy that overlapped a write.
            let value = unsafe { std::ptr::read_volatile(self.data.get()) };
            fence(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return value;
            }
        }
    }

    /// Publish `value` if no other writer is mid-publish. Returns
    /// `false` (and writes nothing) when one is — the caller's stale
    /// read is still consistent, so skipping is always safe.
    pub fn try_write(&self, value: T) -> bool {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            return false;
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // SAFETY: the odd sequence value claimed exclusive write
        // access; readers observing it retry instead of copying.
        unsafe { std::ptr::write_volatile(self.data.get(), value) };
        self.seq.store(s + 2, Ordering::Release);
        true
    }

    /// Publish `value`, spinning out any concurrent writer first.
    pub fn write(&self, value: T) {
        while !self.try_write(value) {
            std::hint::spin_loop();
        }
    }

    /// How many publishes have completed (sequence / 2; odd sequences
    /// are transient). Diagnostic only.
    pub fn writes(&self) -> u64 {
        self.seq.load(Ordering::Relaxed) / 2
    }
}

/// A [`Seqlock`] fronted by a refresh interval: readers get the cached
/// snapshot for free, and at most one caller per elapsed interval pays
/// for re-aggregation.
///
/// Time is supplied by the caller as nanoseconds on any monotone clock
/// (the server passes `Instant` deltas from process start) — keeping
/// the type clock-free makes the TTL logic trivially testable.
#[derive(Debug, Default)]
pub struct SnapshotCache<T> {
    slot: Seqlock<T>,
    /// Timestamp (caller's clock, ns) of the last completed refresh; 0
    /// means never. Doubles as the refresh mutex: the CAS winner is
    /// the one caller that re-aggregates.
    refreshed_at: AtomicU64,
    refreshes: AtomicU64,
}

impl<T: Copy> SnapshotCache<T> {
    /// An empty cache holding `initial` (served until the first
    /// refresh).
    pub fn new(initial: T) -> Self {
        SnapshotCache {
            slot: Seqlock::new(initial),
            refreshed_at: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// Get the snapshot as of `now_ns`, re-aggregating via `refresh`
    /// only if the cached one is older than `ttl_ns`. Concurrent
    /// callers during a refresh read the previous snapshot instead of
    /// piling onto the aggregation — that is the scrape-interference
    /// fix: N scrapers cost one walk per TTL, not N.
    pub fn get(&self, now_ns: u64, ttl_ns: u64, refresh: impl FnOnce() -> T) -> T {
        let last = self.refreshed_at.load(Ordering::Acquire);
        let stale = last == 0 || now_ns.saturating_sub(last) >= ttl_ns;
        if stale
            && self
                .refreshed_at
                .compare_exchange(last, now_ns.max(1), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            let value = refresh();
            self.slot.write(value);
            self.refreshes.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        self.slot.read()
    }

    /// Completed refreshes (how many times the aggregation ran).
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn read_returns_latest_write() {
        let s = Seqlock::new((1u64, 2u64));
        assert_eq!(s.read(), (1, 2));
        s.write((3, 4));
        assert_eq!(s.read(), (3, 4));
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn torn_reads_are_impossible() {
        // Writer publishes (n, 2n) pairs; readers must never observe a
        // pair violating the invariant — a torn copy would.
        let s = std::sync::Arc::new(Seqlock::new((0u64, 0u64)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                let stop = std::sync::Arc::clone(&stop);
                sc.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (a, b) = s.read();
                        assert_eq!(b, 2 * a, "torn seqlock read");
                    }
                });
            }
            for n in 1..=100_000u64 {
                s.write((n, 2 * n));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(s.read(), (100_000, 200_000));
    }

    #[test]
    fn try_write_skips_when_contended() {
        // Force an odd (writer-held) sequence and verify try_write
        // refuses rather than corrupting the in-progress publish.
        let s = Seqlock::new(7u64);
        s.seq.store(1, Ordering::Relaxed);
        assert!(!s.try_write(9));
        s.seq.store(2, Ordering::Relaxed);
        assert!(s.try_write(9));
        assert_eq!(s.read(), 9);
    }

    #[test]
    fn cache_serves_cached_until_ttl() {
        let calls = AtomicUsize::new(0);
        let c = SnapshotCache::new(0u64);
        let get = |now: u64| {
            c.get(now, 100, || {
                calls.fetch_add(1, Ordering::Relaxed);
                now * 10
            })
        };
        assert_eq!(get(1), 10, "first call always refreshes");
        assert_eq!(get(50), 10, "inside TTL: cached");
        assert_eq!(get(99), 10, "still inside");
        assert_eq!(get(101), 1010, "TTL elapsed: re-aggregated");
        assert_eq!(get(150), 1010);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(c.refreshes(), 2);
    }

    #[test]
    fn concurrent_scrapes_pay_one_walk_per_ttl() {
        let c = std::sync::Arc::new(SnapshotCache::new(0u64));
        let walks = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                let walks = std::sync::Arc::clone(&walks);
                sc.spawn(move || {
                    for now in 1..=1000u64 {
                        let v = c.get(now, u64::MAX, || {
                            walks.fetch_add(1, Ordering::Relaxed);
                            42
                        });
                        // Readers may see the initial value only while
                        // the single refresh is still in flight.
                        assert!(v == 0 || v == 42);
                    }
                });
            }
        });
        assert_eq!(
            walks.load(Ordering::Relaxed),
            1,
            "8 scrapers x 1000 reads must trigger exactly one aggregation"
        );
        assert_eq!(c.get(2000, u64::MAX, || unreachable!()), 42);
    }
}
