//! Admission control between connection threads and the worker pool.
//!
//! The server's request queue is where overload becomes visible, so the
//! policy decision lives here rather than in the protocol or worker
//! code. Three policies:
//!
//! * **Block** — producers wait for queue space; nothing is refused.
//!   End-to-end latency absorbs the overload (the e2e tests rely on the
//!   zero-loss guarantee).
//! * **Shed** — a full queue refuses immediately; the connection thread
//!   replies `BUSY` without the request ever queueing.
//! * **DeadlineDrop** — requests always queue, but carry a deadline; a
//!   worker that dequeues an expired request replies `DROPPED` without
//!   executing it. Expiry is checked at *dequeue*, where staleness is
//!   actually known, not at enqueue.

use std::str::FromStr;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};

use bpw_metrics::MaxGauge;
use std::sync::Arc;

/// How the request queue behaves at (and past) capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block producers until a slot frees up; never refuse work.
    #[default]
    Block,
    /// Refuse immediately when the queue is full (`BUSY` reply).
    Shed,
    /// Queue everything but discard requests older than this once a
    /// worker picks them up (`DROPPED` reply).
    DeadlineDrop(Duration),
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Block => f.write_str("block"),
            AdmissionPolicy::Shed => f.write_str("shed"),
            AdmissionPolicy::DeadlineDrop(d) => write!(f, "drop:{}", d.as_millis()),
        }
    }
}

impl FromStr for AdmissionPolicy {
    type Err = String;

    /// `"block"`, `"shed"`, or `"drop:MILLIS"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "block" => Ok(AdmissionPolicy::Block),
            "shed" => Ok(AdmissionPolicy::Shed),
            other => match other.strip_prefix("drop:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| AdmissionPolicy::DeadlineDrop(Duration::from_millis(ms)))
                    .map_err(|e| format!("bad deadline {ms:?}: {e}")),
                None => Err(format!(
                    "unknown admission policy {other:?} (want block, shed, or drop:MS)"
                )),
            },
        }
    }
}

/// What `submit` did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// Queued (possibly after blocking).
    Queued,
    /// Refused under [`AdmissionPolicy::Shed`].
    Shed,
    /// All workers are gone; the server is shutting down.
    Closed,
}

/// What a non-blocking [`AdmissionQueue::offer_at`] did with a request.
#[derive(Debug)]
pub enum Offered<T> {
    /// Queued without blocking.
    Queued,
    /// Refused under [`AdmissionPolicy::Shed`] (reply `BUSY`).
    Shed,
    /// The queue is full under a blocking policy; the item comes back
    /// so the caller can park it and retry when capacity frees up —
    /// the event loop's version of "the producer waits".
    Full(T),
    /// All workers are gone; the server is shutting down.
    Closed,
}

/// What a worker got from `pop`.
#[derive(Debug)]
pub enum Popped<T> {
    /// A live request.
    Item(T),
    /// A request whose deadline passed while it sat in the queue. The
    /// worker must still reply `DROPPED` to it.
    Expired(T),
    /// Nothing arrived within the timeout; re-check shutdown and loop.
    Timeout,
    /// All producers are gone.
    Disconnected,
}

struct Entry<T> {
    item: T,
    enqueued: Instant,
}

/// A bounded MPMC request queue with policy-aware admission.
///
/// Cloneable on both ends: every connection thread holds an
/// [`AdmissionQueue`] (producer side), every worker holds a
/// [`WorkQueue`] (consumer side). Queue depth is tracked with a
/// [`MaxGauge`] so STATS can report the high-water mark.
pub struct AdmissionQueue<T> {
    tx: Sender<Entry<T>>,
    policy: AdmissionPolicy,
    depth: Arc<MaxGauge>,
}

impl<T> Clone for AdmissionQueue<T> {
    fn clone(&self) -> Self {
        AdmissionQueue {
            tx: self.tx.clone(),
            policy: self.policy,
            depth: Arc::clone(&self.depth),
        }
    }
}

/// The consumer side of an [`AdmissionQueue`].
pub struct WorkQueue<T> {
    rx: Receiver<Entry<T>>,
    policy: AdmissionPolicy,
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> Self {
        WorkQueue {
            rx: self.rx.clone(),
            policy: self.policy,
        }
    }
}

/// Build a queue holding at most `capacity` requests.
pub fn admission_queue<T>(
    capacity: usize,
    policy: AdmissionPolicy,
) -> (AdmissionQueue<T>, WorkQueue<T>) {
    let (tx, rx) = channel::bounded(capacity);
    (
        AdmissionQueue {
            tx,
            policy,
            depth: Arc::new(MaxGauge::new()),
        },
        WorkQueue { rx, policy },
    )
}

impl<T> AdmissionQueue<T> {
    /// Submit a request under the queue's policy.
    pub fn submit(&self, item: T) -> Admitted {
        let entry = Entry {
            item,
            enqueued: Instant::now(),
        };
        match self.policy {
            AdmissionPolicy::Shed => match self.tx.try_send(entry) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Admitted::Shed,
                Err(TrySendError::Disconnected(_)) => return Admitted::Closed,
            },
            AdmissionPolicy::Block | AdmissionPolicy::DeadlineDrop(_) => {
                if self.tx.send(entry).is_err() {
                    return Admitted::Closed;
                }
            }
        }
        self.depth.observe(self.tx.len() as u64);
        Admitted::Queued
    }

    /// Submit without ever blocking the caller — the admission path for
    /// the event-loop frontend, whose one thread owns every connection
    /// and must not stall on any of them.
    ///
    /// `enqueued` backdates the entry: a request that sat parked in the
    /// loop's stall buffer keeps its original arrival time, so
    /// [`AdmissionPolicy::DeadlineDrop`] measures true end-to-end
    /// staleness exactly as the blocking path does.
    pub fn offer_at(&self, item: T, enqueued: Instant) -> Offered<T> {
        match self.tx.try_send(Entry { item, enqueued }) {
            Ok(()) => {
                self.depth.observe(self.tx.len() as u64);
                Offered::Queued
            }
            Err(TrySendError::Full(entry)) => match self.policy {
                AdmissionPolicy::Shed => Offered::Shed,
                AdmissionPolicy::Block | AdmissionPolicy::DeadlineDrop(_) => {
                    Offered::Full(entry.item)
                }
            },
            Err(TrySendError::Disconnected(_)) => Offered::Closed,
        }
    }

    /// Highest queue depth observed at any submit.
    pub fn peak_depth(&self) -> u64 {
        self.depth.get()
    }

    /// Shared handle to the depth gauge, so stats reporting can outlive
    /// (and live apart from) the queue's sender side.
    pub fn depth_gauge(&self) -> Arc<MaxGauge> {
        Arc::clone(&self.depth)
    }

    /// Requests queued right now.
    pub fn depth(&self) -> usize {
        self.tx.len()
    }

    /// Policy this queue was built with.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }
}

impl<T> WorkQueue<T> {
    /// Wait up to `timeout` for a request, classifying it against the
    /// deadline policy.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(entry) => {
                if let AdmissionPolicy::DeadlineDrop(deadline) = self.policy {
                    if entry.enqueued.elapsed() > deadline {
                        return Popped::Expired(entry.item);
                    }
                }
                Popped::Item(entry.item)
            }
            Err(RecvTimeoutError::Timeout) => Popped::Timeout,
            Err(RecvTimeoutError::Disconnected) => Popped::Disconnected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn policy_parsing_round_trips() {
        for s in ["block", "shed", "drop:25"] {
            let p: AdmissionPolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("drop:".parse::<AdmissionPolicy>().is_err());
        assert!("drop:abc".parse::<AdmissionPolicy>().is_err());
        assert!("lru".parse::<AdmissionPolicy>().is_err());
    }

    #[test]
    fn shed_refuses_when_full() {
        let (aq, wq) = admission_queue::<u32>(2, AdmissionPolicy::Shed);
        assert_eq!(aq.submit(1), Admitted::Queued);
        assert_eq!(aq.submit(2), Admitted::Queued);
        assert_eq!(aq.submit(3), Admitted::Shed);
        match wq.pop(Duration::from_millis(10)) {
            Popped::Item(1) => {}
            other => panic!("expected Item(1), got {other:?}"),
        }
        assert_eq!(aq.submit(3), Admitted::Queued);
        assert!(aq.peak_depth() >= 2);
    }

    #[test]
    fn block_waits_for_capacity() {
        let (aq, wq) = admission_queue::<u32>(1, AdmissionPolicy::Block);
        assert_eq!(aq.submit(1), Admitted::Queued);
        let producer = {
            let aq = aq.clone();
            thread::spawn(move || aq.submit(2))
        };
        // The producer must stay stuck until we pop: give it a bounded
        // window to (wrongly) finish, then require it did not.
        assert!(
            !crate::poll::poll_until(Duration::from_millis(20), || producer.is_finished()),
            "submit must block while the queue is full"
        );
        match wq.pop(Duration::from_millis(100)) {
            Popped::Item(1) => {}
            other => panic!("expected Item(1), got {other:?}"),
        }
        // Popping freed capacity; the producer must now complete — FIFO
        // order proves it waited rather than jumping the queue.
        assert_eq!(producer.join().unwrap(), Admitted::Queued);
        match wq.pop(Duration::from_secs(5)) {
            Popped::Item(2) => {}
            other => panic!("expected Item(2), got {other:?}"),
        }
    }

    #[test]
    fn expired_requests_are_classified_at_dequeue() {
        let (aq, wq) =
            admission_queue::<u32>(8, AdmissionPolicy::DeadlineDrop(Duration::from_millis(5)));
        let submitted = std::time::Instant::now();
        assert_eq!(aq.submit(7), Admitted::Queued);
        // Wait on the condition itself (queue time past the deadline),
        // not a fixed sleep that merely implies it.
        crate::poll::wait_for(Duration::from_secs(5), "deadline exceeded", || {
            submitted.elapsed() > Duration::from_millis(6)
        });
        match wq.pop(Duration::from_millis(10)) {
            Popped::Expired(7) => {}
            other => panic!("expected Expired(7), got {other:?}"),
        }
        // A fresh request under a generous deadline survives.
        let (aq, wq) =
            admission_queue::<u32>(8, AdmissionPolicy::DeadlineDrop(Duration::from_secs(10)));
        assert_eq!(aq.submit(8), Admitted::Queued);
        match wq.pop(Duration::from_millis(10)) {
            Popped::Item(8) => {}
            other => panic!("expected Item(8), got {other:?}"),
        }
    }

    #[test]
    fn offer_never_blocks_and_returns_the_item_when_full() {
        let (aq, wq) = admission_queue::<u32>(1, AdmissionPolicy::Block);
        assert!(matches!(aq.offer_at(1, Instant::now()), Offered::Queued));
        // Full under Block: the item comes back for a later retry.
        match aq.offer_at(2, Instant::now()) {
            Offered::Full(2) => {}
            other => panic!("expected Full(2), got {other:?}"),
        }
        match wq.pop(Duration::from_millis(50)) {
            Popped::Item(1) => {}
            other => panic!("expected Item(1), got {other:?}"),
        }
        assert!(matches!(aq.offer_at(2, Instant::now()), Offered::Queued));

        // Full under Shed: refused outright, same as submit.
        let (aq, _wq) = admission_queue::<u32>(1, AdmissionPolicy::Shed);
        assert!(matches!(aq.offer_at(1, Instant::now()), Offered::Queued));
        assert!(matches!(aq.offer_at(2, Instant::now()), Offered::Shed));
    }

    #[test]
    fn offer_backdates_the_deadline_clock() {
        // A request that waited in the loop's stall buffer keeps its
        // original arrival time: offered "in the past", it must pop as
        // Expired under a deadline shorter than that backdating.
        let (aq, wq) =
            admission_queue::<u32>(8, AdmissionPolicy::DeadlineDrop(Duration::from_millis(10)));
        let long_ago = Instant::now() - Duration::from_millis(250);
        assert!(matches!(aq.offer_at(5, long_ago), Offered::Queued));
        match wq.pop(Duration::from_millis(50)) {
            Popped::Expired(5) => {}
            other => panic!("expected Expired(5), got {other:?}"),
        }
    }

    #[test]
    fn drop_of_consumers_closes_admission() {
        let (aq, wq) = admission_queue::<u32>(1, AdmissionPolicy::Block);
        drop(wq);
        assert_eq!(aq.submit(1), Admitted::Closed);
    }

    #[test]
    fn timeout_and_disconnect_surface_to_workers() {
        let (aq, wq) = admission_queue::<u32>(1, AdmissionPolicy::Block);
        match wq.pop(Duration::from_millis(5)) {
            Popped::Timeout => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        drop(aq);
        match wq.pop(Duration::from_millis(5)) {
            Popped::Disconnected => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}
