//! `bpw-server` binary: run the page service, drive one with load, or
//! run the built-in coarse-vs-BP-Wrapper comparison.
//!
//! ```text
//! bpw-server serve   [--addr H:P] [--mode threaded|eventloop] [--workers N]
//!                    [--queue N] [--policy P] [--max-pipeline N]
//!                    [--frames N] [--page-size B] [--pages N] [--manager SPEC]
//!                    [--combining off|overflow|flat] [--miss-shards N] [--slo-us U]
//!                    [--adaptive true]
//!                    [--faulty true] [--fault-seed S] [--fail-reads-ppm N]
//!                    [--fail-writes-ppm N] [--spike-ppm N] [--spike-us U]
//! bpw-server loadgen --addr H:P [--connections N] [--requests N]
//!                    [--write-fraction F] [--rate RPS | --think MS]
//!                    [--pipeline N]
//!                    [--workload zipf|dbt1|dbt2|scan] [--zipf-pages N]
//!                    [--theta F] [--seed S]
//! bpw-server bench   [--out FILE] [--requests N] [--connections LIST]
//!                    [--fe-connections LIST] [--pipeline N] [--quick true]
//! bpw-server smoke   [--out FILE] [--faulty true]
//! bpw-server chaos   [--out FILE] [--requests N] [--fault-seed S]
//! bpw-server stages  [--out FILE] [--requests N] [--slo-us U]
//!                    [--mode threaded|eventloop]
//! ```
//!
//! `serve --slo-us U` arms the tail-latency flight recorder: tracing
//! turns on, and any request slower than U microseconds (or ending
//! `ERR_IO`) is captured as an exemplar — its span chain, pulled from
//! the per-thread trace rings — fetchable via the `EXEMPLARS` opcode
//! as Chrome-trace JSON.
//!
//! `stages` is the stage-breakdown experiment: a `--slo-us`-armed
//! server under Zipf load, reporting where each opcode's latency goes
//! (decode, queue wait, pin/hit, miss I/O, batch commit, reply flush)
//! as per-stage p50/p99/p999 rows in `results/stage_latency.jsonl`.
//!
//! `smoke` is the CI self-test: it starts an in-process server, checks
//! STATS and METRICS payloads, runs a traced workload, and validates
//! the exported Chrome trace. With `--faulty true` the server runs over
//! a fault-injecting disk and the run additionally proves degraded-mode
//! behaviour (ERR_IO surfaces, no frame is wedged).
//!
//! `chaos` is the degraded-mode experiment: the same load at increasing
//! storage fault rates, recording throughput, error mix, and the pool's
//! retry/repair counters to a JSON-lines artifact.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use bpw_metrics::JsonObject;
use bpw_server::{loadgen, FaultPlan, FrontendMode, LoadConfig, LoadMode, Server, ServerConfig};
use bpw_workloads::{Workload, WorkloadKind, ZipfWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    let flags = parse_flags(args.collect());
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "bench" => cmd_bench(&flags),
        "smoke" => cmd_smoke(&flags),
        "chaos" => cmd_chaos(&flags),
        "stages" => cmd_stages(&flags),
        _ => {
            eprintln!(
                "usage: bpw-server <serve|loadgen|bench|smoke|chaos|stages> [flags]  (see --help in src/main.rs)"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("bpw-server {cmd}: {e}");
        std::process::exit(1);
    }
}

/// `--key value` pairs; repeated keys keep the last value.
fn parse_flags(argv: Vec<String>) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("ignoring stray argument {a:?}");
            continue;
        };
        match it.next() {
            Some(v) => {
                flags.insert(key.to_string(), v);
            }
            None => {
                eprintln!("flag --{key} needs a value");
                std::process::exit(2);
            }
        }
    }
    flags
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        Some(v) => v.parse().map_err(|e| format!("--{key} {v:?}: {e}")),
        None => Ok(default),
    }
}

/// Fault-injection flags -> an optional [`FaultPlan`]. `--faulty true`
/// alone enables a default plan (2% transient read+write faults, 1%
/// latency spikes); the per-rate flags refine or enable one explicitly.
fn fault_plan(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    let faulty: bool = get(flags, "faulty", false)?;
    let read_ppm: u32 = get(flags, "fail-reads-ppm", 0)?;
    let write_ppm: u32 = get(flags, "fail-writes-ppm", 0)?;
    let spike_ppm: u32 = get(flags, "spike-ppm", 0)?;
    if !faulty && read_ppm == 0 && write_ppm == 0 && spike_ppm == 0 {
        return Ok(None);
    }
    let d = FaultPlan::default();
    Ok(Some(FaultPlan {
        seed: get(flags, "fault-seed", d.seed)?,
        read_fail_ppm: if faulty && read_ppm == 0 {
            20_000
        } else {
            read_ppm
        },
        write_fail_ppm: if faulty && write_ppm == 0 {
            20_000
        } else {
            write_ppm
        },
        spike_ppm: if faulty && spike_ppm == 0 {
            10_000
        } else {
            spike_ppm
        },
        spike: Duration::from_micros(get(flags, "spike-us", 500)?),
        ..d
    }))
}

fn server_config(flags: &HashMap<String, String>) -> Result<ServerConfig, String> {
    let d = ServerConfig::default();
    Ok(ServerConfig {
        addr: flags.get("addr").cloned().unwrap_or(d.addr),
        workers: get(flags, "workers", d.workers)?,
        queue_capacity: get(flags, "queue", d.queue_capacity)?,
        policy: get(flags, "policy", d.policy)?,
        frames: get(flags, "frames", d.frames)?,
        page_size: get(flags, "page-size", d.page_size)?,
        pages: get(flags, "pages", d.pages)?,
        manager: flags.get("manager").cloned().unwrap_or(d.manager),
        combining: get(flags, "combining", d.combining)?,
        miss_shards: match flags.get("miss-shards") {
            Some(v) => Some(v.parse().map_err(|e| format!("--miss-shards {v:?}: {e}"))?),
            None => None,
        },
        fault_plan: fault_plan(flags)?,
        mode: get(flags, "mode", d.mode)?,
        max_pipeline: get(flags, "max-pipeline", d.max_pipeline)?,
        slo_us: match flags.get("slo-us") {
            Some(v) => Some(v.parse().map_err(|e| format!("--slo-us {v:?}: {e}"))?),
            None => None,
        },
        adaptive: get(flags, "adaptive", d.adaptive)?,
    })
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let config = server_config(flags)?;
    let server = Server::start(config.clone()).map_err(|e| e.to_string())?;
    println!(
        "bpw-server listening on {} — {} frontend, manager {}, {} workers, policy {}, queue {}",
        server.addr(),
        config.mode,
        server.pool().manager().name(),
        config.workers,
        config.policy,
        config.queue_capacity
    );
    server.wait_stop_requested();
    println!("shutdown requested; final stats:\n{}", server.stats_json());
    server.join();
    Ok(())
}

fn build_workload(flags: &HashMap<String, String>) -> Result<Box<dyn Workload>, String> {
    let name = flags.get("workload").map(String::as_str).unwrap_or("zipf");
    if name == "zipf" {
        let pages: u64 = get(flags, "zipf-pages", 16_384)?;
        let theta: f64 = get(flags, "theta", 0.86)?;
        return Ok(Box::new(ZipfWorkload::new(pages, theta, 8)));
    }
    let kind: WorkloadKind = name.parse()?;
    Ok(kind.build())
}

fn load_config(flags: &HashMap<String, String>) -> Result<LoadConfig, String> {
    let d = LoadConfig::default();
    let mode = match (flags.get("rate"), flags.get("think")) {
        (Some(_), Some(_)) => return Err("--rate and --think are mutually exclusive".into()),
        (Some(r), None) => LoadMode::Open {
            rate_per_sec: r.parse().map_err(|e| format!("--rate {r:?}: {e}"))?,
        },
        (None, Some(t)) => LoadMode::Closed {
            think: Duration::from_millis(t.parse().map_err(|e| format!("--think {t:?}: {e}"))?),
        },
        (None, None) => d.mode,
    };
    Ok(LoadConfig {
        connections: get(flags, "connections", d.connections)?,
        requests_per_conn: get(flags, "requests", d.requests_per_conn)?,
        write_fraction: get(flags, "write-fraction", d.write_fraction)?,
        mode,
        seed: get(flags, "seed", d.seed)?,
        put_len: get(flags, "put-len", d.put_len)?,
        pipeline: get(flags, "pipeline", d.pipeline)?,
    })
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr: SocketAddr = flags
        .get("addr")
        .ok_or("loadgen needs --addr")?
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    let workload = build_workload(flags)?;
    let cfg = load_config(flags)?;
    let report = loadgen::run(addr, workload.as_ref(), &cfg);
    println!("{}", report.summary());
    println!("{}", report.to_json());
    Ok(())
}

/// The headline end-to-end comparison: the same load through the same
/// server, differing only in the replacement manager's synchronization
/// scheme — and, in a second section, differing only in the frontend's
/// concurrency model (thread-per-connection vs readiness event loop).
/// Writes a JSON-lines artifact and prints a table.
///
/// `--quick true` runs only the frontend comparison at 16 connections
/// and fails unless the event loop at least matches the threaded
/// frontend's throughput — the CI regression gate for the loop.
fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/server_bench.jsonl".into());
    let quick: bool = get(flags, "quick", false)?;
    let requests: u64 = get(flags, "requests", if quick { 6_000 } else { 20_000 })?;
    let conn_list = flags
        .get("connections")
        .cloned()
        .unwrap_or_else(|| "1,2,4,8".into());
    let workers: usize = get(flags, "workers", 4)?;
    let connections: Vec<usize> = conn_list
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("--connections {s:?}: {e}"))
        })
        .collect::<Result<_, String>>()?;

    let workload = ZipfWorkload::new(16_384, 0.86, 8);
    let mut lines = Vec::new();
    if !quick {
        println!(
            "{:<12} {:>5} {:>10} {:>10} {:>10} {:>12} {:>10}",
            "manager", "conns", "req/s", "p99_us", "p999_us", "contention/M", "lock/M"
        );
        for manager in ["coarse-2q", "wrapped-2q"] {
            for &conns in &connections {
                let server = Server::start(ServerConfig {
                    workers,
                    frames: 4096,
                    page_size: 256,
                    pages: 16_384,
                    manager: manager.into(),
                    ..ServerConfig::default()
                })
                .map_err(|e| e.to_string())?;
                let report = loadgen::run(
                    server.addr(),
                    &workload,
                    &LoadConfig {
                        connections: conns,
                        requests_per_conn: requests / conns.max(1) as u64,
                        write_fraction: 0.1,
                        ..LoadConfig::default()
                    },
                );
                let stats = server.pool().stats();
                let accesses = stats.hits.load(std::sync::atomic::Ordering::Relaxed)
                    + stats.misses.load(std::sync::atomic::Ordering::Relaxed);
                let lock = server.pool().manager().lock_snapshot();
                let cpm = lock.contentions_per_million(accesses);
                // On a 1-core host contention events are rare for every
                // scheme; acquisitions per access expose the amortization.
                let apm = if accesses == 0 {
                    0.0
                } else {
                    lock.acquisitions as f64 * 1e6 / accesses as f64
                };
                println!(
                    "{:<12} {:>5} {:>10.0} {:>10} {:>10} {:>12.1} {:>10.0}",
                    manager,
                    conns,
                    report.throughput(),
                    report.latency_ns.quantile(0.99) / 1_000,
                    report.latency_ns.quantile(0.999) / 1_000,
                    cpm,
                    apm
                );
                let mut o = JsonObject::new();
                o.field_str("manager", manager)
                    .field_u64("connections", conns as u64)
                    .field_u64("workers", workers as u64)
                    .field_f64("contentions_per_million", cpm)
                    .field_u64("lock_acquisitions", lock.acquisitions)
                    .field_f64("lock_acquisitions_per_million", apm)
                    .field_u64("pool_accesses", accesses)
                    .field_raw("load", &report.to_json());
                lines.push(o.finish());
                server.join();
            }
        }
    }

    // Frontend crossover: the same manager and load, threaded vs event
    // loop, with pipelined clients at climbing connection counts. The
    // threaded frontend pays a thread (stack + context switches) per
    // connection; the loop pays one epoll registration — so the gap
    // should widen with connections.
    let fe_conn_list = flags.get("fe-connections").cloned().unwrap_or_else(|| {
        if quick {
            "16".into()
        } else {
            "4,16,64".into()
        }
    });
    let fe_connections: Vec<usize> = fe_conn_list
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("--fe-connections {s:?}: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let pipeline: usize = get(flags, "pipeline", 8)?;
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "frontend", "conns", "req/s", "p99_us", "p999_us", "wakeups", "ready/wakeup"
    );
    let mut fe_throughput: HashMap<(String, usize), f64> = HashMap::new();
    for mode in [FrontendMode::Threaded, FrontendMode::EventLoop] {
        for &conns in &fe_connections {
            let server = Server::start(ServerConfig {
                workers,
                frames: 4096,
                page_size: 256,
                pages: 16_384,
                manager: "wrapped-2q".into(),
                mode,
                ..ServerConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let report = loadgen::run(
                server.addr(),
                &workload,
                &LoadConfig {
                    connections: conns,
                    requests_per_conn: (requests / conns.max(1) as u64).max(pipeline as u64),
                    write_fraction: 0.1,
                    pipeline,
                    ..LoadConfig::default()
                },
            );
            let m = server.metrics();
            let wakeups = m.epoll_wakeups.get();
            let ready_mean = m.ready_per_wakeup.mean();
            println!(
                "{:<10} {:>5} {:>10.0} {:>10} {:>10} {:>9} {:>12.2}",
                mode.to_string(),
                conns,
                report.throughput(),
                report.latency_ns.quantile(0.99) / 1_000,
                report.latency_ns.quantile(0.999) / 1_000,
                wakeups,
                ready_mean
            );
            let mut o = JsonObject::new();
            o.field_str("frontend", &mode.to_string())
                .field_str("manager", "wrapped-2q")
                .field_u64("connections", conns as u64)
                .field_u64("workers", workers as u64)
                .field_u64("pipeline", pipeline as u64)
                .field_u64("epoll_wakeups", wakeups)
                .field_f64("ready_per_wakeup_mean", ready_mean)
                .field_u64("short_writes", m.short_writes.get())
                .field_u64("connections_peak", m.connections_open.peak())
                .field_raw("pipeline_depth", &m.pipeline_depth.to_json())
                .field_raw("load", &report.to_json());
            lines.push(o.finish());
            fe_throughput.insert((mode.to_string(), conns), report.throughput());
            server.join();
        }
    }
    let top = *fe_connections.iter().max().unwrap_or(&0);
    let threaded = fe_throughput
        .get(&("threaded".to_string(), top))
        .copied()
        .unwrap_or(0.0);
    let evl = fe_throughput
        .get(&("eventloop".to_string(), top))
        .copied()
        .unwrap_or(0.0);
    println!(
        "frontend crossover at {top} connections: eventloop {evl:.0} req/s vs threaded {threaded:.0} req/s ({:+.1}%)",
        if threaded > 0.0 { (evl / threaded - 1.0) * 100.0 } else { 0.0 }
    );
    if quick && evl < threaded {
        return Err(format!(
            "event-loop frontend regressed below threaded at {top} connections: {evl:.0} < {threaded:.0} req/s"
        ));
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} rows to {out}", lines.len());
    Ok(())
}

/// Degraded-mode experiment: the same Zipf load at increasing storage
/// fault rates. Records throughput, the OK/ERR_IO mix, retry/repair
/// counters, and the frame-accounting invariant to a JSON-lines
/// artifact (`results/fault_injection.jsonl`).
fn cmd_chaos(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/fault_injection.jsonl".into());
    let requests: u64 = get(flags, "requests", 8_000)?;
    let seed: u64 = get(flags, "fault-seed", 0xC4A0)?;
    let workload = ZipfWorkload::new(4_096, 0.86, 8);
    let mut lines = Vec::new();
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>9} {:>9} {:>7}",
        "fault_ppm", "req/s", "ok", "io_err", "retries", "repairs", "frames"
    );
    for fault_ppm in [0u32, 10_000, 50_000, 200_000] {
        let server = Server::start(ServerConfig {
            workers: 4,
            frames: 512,
            page_size: 256,
            pages: 4_096,
            fault_plan: Some(FaultPlan {
                seed,
                read_fail_ppm: fault_ppm,
                write_fail_ppm: fault_ppm / 2,
                spike_ppm: fault_ppm / 4,
                ..FaultPlan::default()
            }),
            ..ServerConfig::default()
        })
        .map_err(|e| e.to_string())?;
        let report = loadgen::run(
            server.addr(),
            &workload,
            &LoadConfig {
                connections: 4,
                requests_per_conn: requests / 4,
                write_fraction: 0.2,
                ..LoadConfig::default()
            },
        );
        let stats = server.pool().stats();
        let ord = std::sync::atomic::Ordering::Relaxed;
        let retries = stats.io_retries.load(ord);
        let hard_errors = stats.io_errors.load(ord);
        let frames = server.pool().frames();
        let accounted = server.pool().free_frames() + server.pool().resident_count();
        if accounted != frames {
            return Err(format!(
                "fault_ppm {fault_ppm}: frame accounting broken ({accounted} of {frames})"
            ));
        }
        // Recovery: clear the faults and re-read; everything must be OK.
        server
            .faulty_disk()
            .expect("chaos has a disk")
            .clear_faults();
        let mut client = bpw_server::Client::connect(server.addr()).map_err(|e| e.to_string())?;
        for page in 0..128u64 {
            match client.get(page).map_err(|e| e.to_string())? {
                bpw_server::Response::Ok(_) => {}
                other => {
                    return Err(format!(
                        "fault_ppm {fault_ppm}: GET {page} after recovery: {other:?}"
                    ))
                }
            }
        }
        println!(
            "{:>10} {:>10.0} {:>8} {:>8} {:>9} {:>9} {:>7}",
            fault_ppm,
            report.throughput(),
            report.ok,
            report.io_errors,
            retries,
            hard_errors,
            "ok"
        );
        let mut o = JsonObject::new();
        o.field_u64("fault_ppm", fault_ppm as u64)
            .field_u64("fault_seed", seed)
            .field_u64("io_retries", retries)
            .field_u64("io_errors", hard_errors)
            .field_u64("frames", frames as u64)
            .field_u64("frames_accounted", accounted as u64)
            .field_bool("recovered", true)
            .field_raw("load", &report.to_json());
        lines.push(o.finish());
        drop(client); // close the socket so join() can reap its connection thread
        server.join();
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} rows to {out}", lines.len());
    Ok(())
}

/// Stage-breakdown experiment: one `--slo-us`-armed server under Zipf
/// load, then per-opcode, per-stage latency quantiles out of STATS into
/// a JSON-lines artifact (`results/stage_latency.jsonl`) — where does a
/// GET's time actually go, and how much of the tail is queueing versus
/// miss I/O.
fn cmd_stages(flags: &HashMap<String, String>) -> Result<(), String> {
    use bpw_metrics::JsonValue;

    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/stage_latency.jsonl".into());
    let requests: u64 = get(flags, "requests", 8_000)?;
    let slo_us: u64 = get(flags, "slo-us", 500)?;
    let mode: FrontendMode = get(flags, "mode", FrontendMode::Threaded)?;
    let server = Server::start(ServerConfig {
        workers: 4,
        frames: 1024,
        page_size: 256,
        pages: 16_384,
        mode,
        slo_us: Some(slo_us),
        ..ServerConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let workload = ZipfWorkload::new(16_384, 0.86, 8);
    let report = loadgen::run(
        server.addr(),
        &workload,
        &LoadConfig {
            connections: 4,
            requests_per_conn: requests / 4,
            write_fraction: 0.1,
            ..LoadConfig::default()
        },
    );
    if report.ok == 0 {
        return Err("stage run completed no requests".into());
    }
    let mut client = bpw_server::Client::connect(server.addr()).map_err(|e| e.to_string())?;
    let stats = client.stats().map_err(|e| e.to_string())?;
    let v = JsonValue::parse(&stats).map_err(|e| format!("STATS invalid: {e}"))?;
    let stages = v.get("stages").ok_or("STATS lacks a stages sub-object")?;
    let slo = v
        .get("slo_violations")
        .ok_or("STATS lacks slo_violations")?;
    let exemplars = client.exemplars().map_err(|e| e.to_string())?;
    let ev = JsonValue::parse(&exemplars).map_err(|e| format!("EXEMPLARS invalid: {e}"))?;
    let captured = ev
        .get("otherData")
        .and_then(|o| o.get("captured_total"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);

    let mut lines = Vec::new();
    println!(
        "{:<5} {:<13} {:>8} {:>10} {:>10} {:>10}",
        "op", "stage", "count", "p50_ns", "p99_ns", "p999_ns"
    );
    for op in ["get", "put", "scan"] {
        let per_op = stages
            .get(op)
            .ok_or_else(|| format!("stages lacks {op:?}"))?;
        for stage in [
            "decode",
            "queue_wait",
            "pin_hit",
            "miss_io",
            "batch_commit",
            "reply_flush",
        ] {
            let h = per_op
                .get(stage)
                .ok_or_else(|| format!("stages.{op} lacks {stage:?}"))?;
            let q = |key: &str| h.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            let count = q("count");
            if count > 0 {
                println!(
                    "{:<5} {:<13} {:>8} {:>10} {:>10} {:>10}",
                    op,
                    stage,
                    count,
                    q("p50"),
                    q("p99"),
                    q("p999")
                );
            }
            let mut o = JsonObject::new();
            o.field_str("op", op)
                .field_str("stage", stage)
                .field_u64("count", count)
                .field_u64("p50_ns", q("p50"))
                .field_u64("p99_ns", q("p99"))
                .field_u64("p999_ns", q("p999"))
                .field_u64("max_ns", q("max"))
                .field_u64("slo_us", slo_us)
                .field_str("frontend", &mode.to_string())
                .field_u64(
                    "slo_violations",
                    slo.get(op).and_then(JsonValue::as_u64).unwrap_or(0),
                )
                .field_u64("exemplars_captured", captured);
            lines.push(o.finish());
        }
    }
    println!(
        "slo {slo_us}us: {} violations, {captured} exemplars captured",
        v.get("slo_violations")
            .map(|s| ["get", "put", "scan"]
                .iter()
                .filter_map(|op| s.get(op).and_then(JsonValue::as_u64))
                .sum::<u64>())
            .unwrap_or(0)
    );
    client.shutdown().map_err(|e| e.to_string())?;
    drop(client);
    server.join();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, lines.join("\n") + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} rows to {out}", lines.len());
    Ok(())
}

/// CI self-test: exercise STATS, METRICS, and the tracing pipeline
/// end-to-end against a live server, failing loudly on any malformed
/// payload.
fn cmd_smoke(flags: &HashMap<String, String>) -> Result<(), String> {
    use bpw_metrics::JsonValue;

    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/smoke.trace.json".into());
    let plan = fault_plan(flags)?;
    let faulty = plan.is_some();
    let server = Server::start(ServerConfig {
        workers: 2,
        frames: 256,
        page_size: 256,
        pages: 4096,
        fault_plan: plan,
        ..ServerConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let mut client = bpw_server::Client::connect(server.addr()).map_err(|e| e.to_string())?;

    // 1. STATS parses and carries the new observability fields.
    let stats = client.stats().map_err(|e| e.to_string())?;
    let v = JsonValue::parse(&stats).map_err(|e| format!("STATS is not valid JSON: {e}"))?;
    for key in ["ok", "replacement_lock", "miss_lock", "miss_locks", "trace"] {
        if v.get(key).is_none() {
            return Err(format!("STATS JSON is missing {key:?}: {stats}"));
        }
    }

    // 2. METRICS is a well-formed exposition with a useful sample count.
    let metrics = client.metrics().map_err(|e| e.to_string())?;
    let samples = bpw_trace::validate_exposition(&metrics)
        .map_err(|e| format!("METRICS exposition is malformed: {e}"))?;
    if samples < 20 {
        return Err(format!("METRICS has only {samples} samples:\n{metrics}"));
    }

    // 3. A traced workload produces a loadable Chrome trace with spans
    //    from several threads.
    bpw_trace::clear();
    bpw_trace::set_enabled(true);
    let workload = ZipfWorkload::new(4096, 0.86, 8);
    let report = loadgen::run(
        server.addr(),
        &workload,
        &LoadConfig {
            connections: 4,
            requests_per_conn: 2_000,
            write_fraction: 0.1,
            ..LoadConfig::default()
        },
    );
    bpw_trace::set_enabled(false);
    if report.ok == 0 {
        return Err("traced workload completed no requests".into());
    }
    let events = bpw_trace::drain();
    let tids: std::collections::HashSet<u32> = events.iter().map(|e| e.tid).collect();
    if events.is_empty() || tids.len() < 2 {
        return Err(format!(
            "traced run produced {} events from {} threads (want >=2 threads)",
            events.len(),
            tids.len()
        ));
    }
    bpw_trace::write_chrome_trace(&out, &events).map_err(|e| format!("write {out}: {e}"))?;
    let trace_json = std::fs::read_to_string(&out).map_err(|e| e.to_string())?;
    let tv = JsonValue::parse(&trace_json).map_err(|e| format!("trace JSON invalid: {e}"))?;
    let Some(JsonValue::Arr(items)) = tv.get("traceEvents") else {
        return Err("trace JSON lacks a traceEvents array".into());
    };
    if items.len() != events.len() {
        return Err(format!(
            "trace JSON has {} events, drained {}",
            items.len(),
            events.len()
        ));
    }

    // 4. METRICS reflects the traced run (the trace gauges moved).
    let metrics = client.metrics().map_err(|e| e.to_string())?;
    if !metrics.contains("bpw_trace_threads") {
        return Err("METRICS lost the trace health gauges".into());
    }

    // 5. Degraded mode (--faulty): the run survived a flaky disk —
    //    transient faults were retried, nothing wedged a frame, and once
    //    the faults clear every page is reachable again.
    if faulty {
        let stats = server.pool().stats();
        let retries = stats.io_retries.load(std::sync::atomic::Ordering::Relaxed);
        if retries == 0 {
            return Err("faulty smoke injected no retried faults".into());
        }
        let frames = server.pool().frames();
        let accounted = server.pool().free_frames() + server.pool().resident_count();
        if accounted != frames {
            return Err(format!(
                "frame accounting broken after faults: {accounted} of {frames}"
            ));
        }
        let disk = server.faulty_disk().expect("faulty config has a disk");
        disk.clear_faults();
        for page in 0..64u64 {
            match client.get(page).map_err(|e| e.to_string())? {
                bpw_server::Response::Ok(_) => {}
                other => return Err(format!("GET {page} after recovery: {other:?}")),
            }
        }
        println!(
            "degraded mode ok: {retries} retries, {} hard errors, frames intact",
            stats.io_errors.load(std::sync::atomic::Ordering::Relaxed)
        );
    }

    client.shutdown().map_err(|e| e.to_string())?;
    drop(client); // join() waits for live connections to close
    server.join();

    // 6. Flight recorder: a server armed with an impossible SLO (1us)
    //    must capture exemplars and serve them as valid Chrome-trace
    //    JSON over the EXEMPLARS opcode.
    bpw_trace::flight::clear();
    let slo_server = Server::start(ServerConfig {
        workers: 2,
        frames: 256,
        page_size: 256,
        pages: 4096,
        slo_us: Some(1),
        ..ServerConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let mut slo_client =
        bpw_server::Client::connect(slo_server.addr()).map_err(|e| e.to_string())?;
    for page in 0..64u64 {
        slo_client.get(page).map_err(|e| e.to_string())?;
    }
    let exemplars = slo_client.exemplars().map_err(|e| e.to_string())?;
    let ev = JsonValue::parse(&exemplars).map_err(|e| format!("EXEMPLARS JSON invalid: {e}"))?;
    let Some(JsonValue::Arr(spans)) = ev.get("traceEvents") else {
        return Err("EXEMPLARS lacks a traceEvents array".into());
    };
    let captured = ev
        .get("otherData")
        .and_then(|o| o.get("exemplars"))
        .and_then(|e| match e {
            JsonValue::Arr(items) => Some(items.len()),
            _ => None,
        })
        .unwrap_or(0);
    if captured == 0 || spans.is_empty() {
        return Err(format!(
            "flight recorder captured {captured} exemplars / {} spans (want >=1 of each): {exemplars}",
            spans.len()
        ));
    }
    slo_client.shutdown().map_err(|e| e.to_string())?;
    drop(slo_client);
    slo_server.join();
    bpw_trace::flight::clear();

    println!(
        "smoke ok: {samples} exposition samples, {} trace events from {} threads, {captured} exemplars -> {out}",
        events.len(),
        tids.len()
    );
    Ok(())
}
