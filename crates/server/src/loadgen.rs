//! The built-in load generator: drives a running server with the
//! workloads from `bpw-workloads` and measures end-to-end latency.
//!
//! Two driving disciplines:
//!
//! * **Closed-loop** — N connections, each sending its next request as
//!   soon as the previous reply lands, with optional think time at
//!   transaction boundaries. Throughput is whatever the server sustains.
//! * **Open-loop** — requests are due on a fixed schedule regardless of
//!   reply progress. Latency is measured from each request's *intended*
//!   arrival time, not from when the backlogged client got around to
//!   sending it — the standard defence against coordinated omission,
//!   without which a stalled server grades its own homework.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bpw_metrics::{Histogram, JsonObject};
use bpw_workloads::{zipf::splitmix64, PageStream, Workload};

use crate::client::Client;
use crate::protocol::Response;

/// How the generator paces requests.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Each connection sends as fast as replies return, pausing `think`
    /// between transactions.
    Closed {
        /// Pause at each transaction boundary.
        think: Duration,
    },
    /// Requests are due at a fixed aggregate rate, split evenly across
    /// connections.
    Open {
        /// Total intended requests per second across all connections.
        rate_per_sec: f64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Requests each connection sends.
    pub requests_per_conn: u64,
    /// Fraction of requests that are PUTs (the rest are GETs).
    pub write_fraction: f64,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Base RNG seed; connection `t` derives its stream from
    /// `(seed, t)`.
    pub seed: u64,
    /// PUT payload length (capped by the server's page size).
    pub put_len: usize,
    /// Requests each connection keeps in flight: 1 is strict
    /// request/reply; above 1 the driver writes a whole batch before
    /// reading any reply (the client side of request pipelining).
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests_per_conn: 10_000,
            write_fraction: 0.1,
            mode: LoadMode::Closed {
                think: Duration::ZERO,
            },
            seed: 0x10AD,
            put_len: 16,
            pipeline: 1,
        }
    }
}

/// What a load run produced.
#[derive(Debug)]
pub struct LoadReport {
    /// Per-request latency in nanoseconds (all connections merged).
    pub latency_ns: Histogram,
    /// Requests sent.
    pub sent: u64,
    /// `OK` replies.
    pub ok: u64,
    /// `BUSY` replies (shed).
    pub busy: u64,
    /// `DROPPED` replies (deadline).
    pub dropped: u64,
    /// `ERR` replies or transport failures.
    pub errors: u64,
    /// `ERR_IO` replies (storage failed after server-side retries).
    pub io_errors: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Completed (`OK`) requests per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.wall.as_secs_f64()
        }
    }

    /// One-line human summary (the shutdown banner).
    pub fn summary(&self) -> String {
        format!(
            "{} ok / {} sent ({} busy, {} dropped, {} err, {} io_err) in {:.2}s — {:.0} req/s; \
             latency p50={}us p95={}us p99={}us p999={}us max={}us",
            self.ok,
            self.sent,
            self.busy,
            self.dropped,
            self.errors,
            self.io_errors,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.latency_ns.quantile(0.50) / 1_000,
            self.latency_ns.quantile(0.95) / 1_000,
            self.latency_ns.quantile(0.99) / 1_000,
            self.latency_ns.quantile(0.999) / 1_000,
            self.latency_ns.max() / 1_000,
        )
    }

    /// Render as JSON (experiment artifacts).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("sent", self.sent)
            .field_u64("ok", self.ok)
            .field_u64("busy", self.busy)
            .field_u64("dropped", self.dropped)
            .field_u64("errors", self.errors)
            .field_u64("io_errors", self.io_errors)
            .field_f64("wall_secs", self.wall.as_secs_f64())
            .field_f64("throughput_rps", self.throughput())
            .field_raw("latency_ns", &self.latency_ns.to_json());
        o.finish()
    }
}

#[derive(Default)]
struct Tallies {
    sent: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    dropped: AtomicU64,
    errors: AtomicU64,
    io_errors: AtomicU64,
}

/// Run a load against `addr`. Blocks until every connection finishes.
pub fn run(addr: SocketAddr, workload: &dyn Workload, cfg: &LoadConfig) -> LoadReport {
    let latency = Histogram::new();
    let tallies = Tallies::default();
    let started = Instant::now();
    std::thread::scope(|sc| {
        for t in 0..cfg.connections {
            let latency = &latency;
            let tallies = &tallies;
            sc.spawn(move || drive_connection(addr, workload, cfg, t, latency, tallies));
        }
    });
    LoadReport {
        latency_ns: latency,
        sent: tallies.sent.load(Ordering::Relaxed),
        ok: tallies.ok.load(Ordering::Relaxed),
        busy: tallies.busy.load(Ordering::Relaxed),
        dropped: tallies.dropped.load(Ordering::Relaxed),
        errors: tallies.errors.load(Ordering::Relaxed),
        io_errors: tallies.io_errors.load(Ordering::Relaxed),
        wall: started.elapsed(),
    }
}

fn drive_connection(
    addr: SocketAddr,
    workload: &dyn Workload,
    cfg: &LoadConfig,
    conn_id: usize,
    latency: &Histogram,
    tallies: &Tallies,
) {
    let Ok(mut client) = Client::connect(addr) else {
        tallies
            .errors
            .fetch_add(cfg.requests_per_conn, Ordering::Relaxed);
        tallies
            .sent
            .fetch_add(cfg.requests_per_conn, Ordering::Relaxed);
        return;
    };
    let mut stream = PageStream::for_thread(workload, conn_id, cfg.seed);
    // Deterministic per-connection coin for the GET/PUT mix.
    let mut coin = cfg.seed ^ (conn_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let write_threshold = (cfg.write_fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let per_conn_interval = match cfg.mode {
        LoadMode::Open { rate_per_sec } => {
            let per_conn = rate_per_sec / cfg.connections.max(1) as f64;
            Some(Duration::from_secs_f64(1.0 / per_conn.max(1e-6)))
        }
        LoadMode::Closed { .. } => None,
    };
    let start = Instant::now();
    let pipeline = cfg.pipeline.max(1);

    let mut i = 0u64;
    let mut reqs: Vec<crate::protocol::Request> = Vec::with_capacity(pipeline);
    while i < cfg.requests_per_conn {
        // Open loop: request i is *due* at start + i*interval; latency is
        // measured from that intended point even if we fell behind. A
        // pipelined batch is paced and measured from its first request.
        let measure_from = match per_conn_interval {
            Some(interval) => {
                let due = start + interval.mul_f64(i as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                due
            }
            None => Instant::now(),
        };

        let batch = pipeline.min((cfg.requests_per_conn - i) as usize);
        reqs.clear();
        for _ in 0..batch {
            let page = stream.next_page();
            coin = splitmix64(coin);
            reqs.push(if coin < write_threshold {
                crate::protocol::Request::Put {
                    page,
                    data: put_payload(page, cfg.put_len, cfg.seed),
                }
            } else {
                crate::protocol::Request::Get { page }
            });
        }
        tallies.sent.fetch_add(batch as u64, Ordering::Relaxed);
        match client.call_pipelined(&reqs) {
            Ok(resps) => {
                for resp in resps {
                    latency.record(measure_from.elapsed().as_nanos() as u64);
                    match resp {
                        Response::Ok(_) => tallies.ok.fetch_add(1, Ordering::Relaxed),
                        Response::Busy => tallies.busy.fetch_add(1, Ordering::Relaxed),
                        Response::Dropped => tallies.dropped.fetch_add(1, Ordering::Relaxed),
                        Response::Err(_) => tallies.errors.fetch_add(1, Ordering::Relaxed),
                        Response::IoError(_) => tallies.io_errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }
            Err(_) => {
                // Connection is broken; stop this driver — but charge its
                // remaining requests (like the connect-failure path does)
                // so `sent == connections * requests_per_conn` and
                // throughput/error-rate comparisons stay honest.
                let unfinished = cfg.requests_per_conn - i; // this batch + the rest
                tallies.errors.fetch_add(unfinished, Ordering::Relaxed);
                // This round's batch is already in `sent`.
                tallies
                    .sent
                    .fetch_add(unfinished - batch as u64, Ordering::Relaxed);
                return;
            }
        }
        i += batch as u64;

        if let LoadMode::Closed { think } = cfg.mode {
            if !think.is_zero() && stream.at_transaction_boundary() {
                std::thread::sleep(think);
            }
        }
    }
}

/// A PUT body that keeps pages self-identifying: the first 8 bytes are
/// the page id (matching `SimDisk`'s fill convention), the rest a
/// deterministic function of `(page, seed)` so readers can verify it.
pub fn put_payload(page: u64, len: usize, seed: u64) -> Vec<u8> {
    let len = len.max(8);
    let mut body = vec![0u8; len];
    body[..8].copy_from_slice(&page.to_le_bytes());
    let fill = (page ^ seed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .to_le_bytes()[0];
    for b in &mut body[8..] {
        *b = fill;
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_self_identifying_and_deterministic() {
        let a = put_payload(42, 16, 7);
        let b = put_payload(42, 16, 7);
        assert_eq!(a, b);
        assert_eq!(u64::from_le_bytes(a[..8].try_into().unwrap()), 42);
        assert_ne!(put_payload(42, 16, 8)[8], a[8], "fill varies with the seed");
        assert_eq!(put_payload(1, 3, 0).len(), 8, "length is floored at the id");
    }

    #[test]
    fn broken_connections_charge_their_remaining_requests() {
        // A "server" that answers exactly one request per connection and
        // then hangs up mid-run: the generator must still account for
        // every request it intended to send.
        use crate::protocol::{read_frame, write_frame};
        use bpw_workloads::synthetic::Uniform;
        use std::io::{BufReader, BufWriter};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let connections = 3usize;
        let server = std::thread::spawn(move || {
            for _ in 0..connections {
                let (stream, _) = listener.accept().unwrap();
                let mut r = BufReader::new(stream.try_clone().unwrap());
                let mut w = BufWriter::new(stream);
                let mut buf = Vec::new();
                if read_frame(&mut r, &mut buf).unwrap_or(false) {
                    let _ = write_frame(&mut w, &Response::Ok(vec![0u8; 8]).encode());
                }
                // Drop: the client's next request hits a dead socket.
            }
        });
        let cfg = LoadConfig {
            connections,
            requests_per_conn: 7,
            write_fraction: 0.0,
            ..LoadConfig::default()
        };
        let report = run(addr, &Uniform::new(64, 4), &cfg);
        server.join().unwrap();
        assert_eq!(
            report.sent,
            connections as u64 * cfg.requests_per_conn,
            "broken connections must charge their remaining requests"
        );
        assert_eq!(report.ok, connections as u64);
        assert_eq!(report.ok + report.errors, report.sent);
    }

    #[test]
    fn empty_report_summary_is_sane() {
        let r = LoadReport {
            latency_ns: Histogram::new(),
            sent: 0,
            ok: 0,
            busy: 0,
            dropped: 0,
            errors: 0,
            io_errors: 0,
            wall: Duration::ZERO,
        };
        assert_eq!(r.throughput(), 0.0);
        assert!(r.summary().contains("0 ok / 0 sent"));
        assert!(r.to_json().starts_with('{'));
    }
}
