//! The page service: acceptor, connection threads, and a fixed worker
//! pool over one shared [`BufferPool`].
//!
//! Connection threads do protocol work only (read, decode, enqueue,
//! await reply, write); every page access happens on a worker that owns
//! a long-lived [`PoolSession`] — the per-thread state BP-Wrapper's
//! batching needs to amortize the replacement lock. Between the two
//! sits the admission queue (see [`crate::backpressure`]), which is
//! where overload policy is applied.
//!
//! `STATS`, `METRICS`, and `SHUTDOWN` are served on the connection
//! thread itself, bypassing the queue: observability and control must
//! keep working when the data path is saturated.

use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bpw_bufferpool::{
    BufferPool, ClockManager, CoarseManager, FaultPlan, FaultyDisk, PoolSession,
    ReplacementManager, SimDisk, Storage, SwapManager, WrappedManager,
};
use bpw_core::{Combining, WrapperConfig};
use bpw_metrics::JsonObject;
use bpw_replacement::{Advisor, AdvisorConfig, PolicyKind, SampleTap};
use crossbeam::channel::{self, Sender};

use crate::backpressure::{
    admission_queue, AdmissionPolicy, AdmissionQueue, Admitted, Popped, WorkQueue,
};
use crate::eventloop::{self, Completions};
use crate::metrics::{OpKind, PoolCounters, ServerMetrics, Stage, StatsSnapshot};
use crate::protocol::{self, fnv1a, Request, Response};

/// Which concurrency model serves client sockets.
///
/// Both frontends speak the same protocol over the same worker pool and
/// admission queue; only the socket-handling strategy differs, so the
/// choice is a deployment knob rather than a behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontendMode {
    /// One thread per connection, blocking I/O, strict request/reply.
    #[default]
    Threaded,
    /// One readiness event loop (epoll) multiplexing every connection,
    /// with request pipelining and batched writes.
    EventLoop,
}

impl std::fmt::Display for FrontendMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrontendMode::Threaded => "threaded",
            FrontendMode::EventLoop => "eventloop",
        })
    }
}

impl std::str::FromStr for FrontendMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "threaded" => Ok(FrontendMode::Threaded),
            "eventloop" | "event-loop" | "evl" => Ok(FrontendMode::EventLoop),
            other => Err(format!(
                "unknown frontend mode {other:?} (want threaded or eventloop)"
            )),
        }
    }
}

/// A buffer pool whose synchronization scheme was chosen at runtime.
pub type DynPool = BufferPool<Box<dyn ReplacementManager>>;

/// Everything needed to start a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing page requests.
    pub workers: usize,
    /// Admission queue capacity (requests).
    pub queue_capacity: usize,
    /// Overload policy.
    pub policy: AdmissionPolicy,
    /// Buffer pool frames.
    pub frames: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Page-id universe; requests beyond `0..pages` get `ERR`.
    pub pages: u64,
    /// Manager spec, e.g. `"wrapped-2q"` (see [`build_manager`]).
    pub manager: String,
    /// Combining commit mode for `wrapped-*` managers
    /// (`--combining off|overflow|flat`): `overflow` publishes only
    /// when a queue fills against a busy lock; `flat` publishes on any
    /// contended threshold crossing and lock holders drain every
    /// pending slot. Off by default (paper-faithful baseline).
    pub combining: Combining,
    /// Override the miss-path partition width (`Some(1)` restores the
    /// seed's single global miss lock; `None` keeps the default of one
    /// lock per page-table shard).
    pub miss_shards: Option<usize>,
    /// When set, the simulated disk is wrapped in a [`FaultyDisk`]
    /// driven by this plan (chaos testing; see
    /// [`Server::faulty_disk`]).
    pub fault_plan: Option<FaultPlan>,
    /// How client sockets are served (`--mode threaded|eventloop`).
    pub mode: FrontendMode,
    /// Event-loop mode only: requests a single connection may have in
    /// flight before the loop stops reading from it.
    pub max_pipeline: usize,
    /// Latency SLO in microseconds (`--slo-us`). When set, tracing is
    /// enabled, the flight recorder arms, and any request slower than
    /// this (or ending `ERR_IO`) is captured as an exemplar fetchable
    /// via `EXEMPLARS`. `None` keeps the recorder off and tracing
    /// untouched.
    pub slo_us: Option<u64>,
    /// `--adaptive true`: wrap the (necessarily `wrapped-*`) manager in a
    /// [`SwapManager`], sample the fetch stream into shadow caches, and
    /// let the advisor thread hot-swap the policy when a challenger
    /// sustainably wins. ADVISOR state is exported via STATS/METRICS.
    pub adaptive: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 256,
            policy: AdmissionPolicy::Block,
            frames: 1024,
            page_size: 4096,
            pages: 1 << 20,
            manager: "wrapped-2q".into(),
            combining: Combining::Off,
            miss_shards: None,
            fault_plan: None,
            mode: FrontendMode::Threaded,
            max_pipeline: 64,
            slo_us: None,
            adaptive: false,
        }
    }
}

/// Request-scoped identity, minted at admission and carried with the
/// job so every layer (queue, worker, pool, commit, reply) can stamp
/// its trace events and stage samples with the owning request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RequestCtx {
    /// Process-unique request id (never 0 — 0 means "unattributed").
    pub(crate) id: u64,
    /// The owning connection's id.
    pub(crate) conn: u64,
    /// The request's opcode byte.
    pub(crate) opcode: u8,
}

static NEXT_REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
static NEXT_CONN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Mint a process-unique request id (monotonic, starts at 1).
pub(crate) fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Mint a process-unique connection id (monotonic, starts at 1).
pub(crate) fn next_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Build a replacement manager from a spec string:
///
/// * `clock` — PostgreSQL-style CLOCK with lock-free hits
/// * `coarse-<policy>` — `<policy>` behind one lock per access
/// * `wrapped-<policy>` — `<policy>` behind BP-Wrapper
///
/// where `<policy>` is anything [`PolicyKind`] parses (`2q`, `lirs`,
/// `lru`, `arc`, ...).
pub fn build_manager(spec: &str, frames: usize) -> Result<Box<dyn ReplacementManager>, String> {
    build_manager_with(spec, frames, WrapperConfig::default())
}

/// [`build_manager`] with an explicit [`WrapperConfig`] for `wrapped-*`
/// specs (`clock` and `coarse-*` ignore it).
pub fn build_manager_with(
    spec: &str,
    frames: usize,
    wrapper: WrapperConfig,
) -> Result<Box<dyn ReplacementManager>, String> {
    let spec = spec.trim().to_ascii_lowercase();
    if spec == "clock" {
        return Ok(Box::new(ClockManager::new(frames)));
    }
    if let Some(policy) = spec.strip_prefix("coarse-") {
        let kind: PolicyKind = policy.parse()?;
        return Ok(Box::new(CoarseManager::new(kind.build(frames))));
    }
    if let Some(policy) = spec.strip_prefix("wrapped-") {
        let kind: PolicyKind = policy.parse()?;
        return Ok(Box::new(WrappedManager::new(kind.build(frames), wrapper)));
    }
    Err(format!(
        "unknown manager spec {spec:?} (want clock, coarse-<policy>, or wrapped-<policy>)"
    ))
}

/// One queued request: the decoded message, when it was admitted, and
/// where the reply goes.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) admitted: Instant,
    pub(crate) ctx: RequestCtx,
    pub(crate) reply: ReplyTo,
}

/// Where a worker delivers a finished [`Response`]: a blocked
/// connection thread (threaded frontend) or the event loop's completion
/// queue, tagged with the connection token and pipeline sequence number
/// so the loop can put it back in request order.
pub(crate) enum ReplyTo {
    Channel(Sender<Response>),
    Loop {
        completions: Arc<Completions>,
        token: u64,
        seq: u64,
    },
}

impl ReplyTo {
    pub(crate) fn send(self, resp: Response) {
        match self {
            ReplyTo::Channel(tx) => {
                // The receiver may have given up (connection died); the
                // work is simply discarded.
                let _ = tx.send(resp);
            }
            ReplyTo::Loop {
                completions,
                token,
                seq,
            } => completions.push(token, seq, resp),
        }
    }
}

/// Adaptive-replacement state shared between the advisor thread and the
/// STATS/METRICS renderers.
pub(crate) struct AdaptiveShared {
    /// The hot-swappable manager (the pool's `Box<dyn ReplacementManager>`
    /// forwards `swap_to` into this same instance via its `Arc`).
    pub(crate) swap: Arc<SwapManager>,
    /// Expert scorer; the advisor thread holds this lock only while
    /// feeding drained samples, never across a swap.
    pub(crate) advisor: Mutex<Advisor>,
    /// The lossy sampled-access ring the fetch path feeds.
    pub(crate) tap: Arc<SampleTap>,
}

/// Shared state every thread of the server sees. Deliberately does NOT
/// hold the admission queue's sender side: workers carry this struct,
/// and a worker owning a sender to its own queue would keep the channel
/// connected forever and deadlock shutdown.
pub(crate) struct Shared {
    pub(crate) pool: Arc<DynPool>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) pages: u64,
    /// Queue-depth high-water mark (mirrors the admission queue's gauge).
    pub(crate) depth: Arc<bpw_metrics::MaxGauge>,
    /// Seqlock-cached pool-side aggregation for STATS/METRICS: one
    /// scrape per [`STATS_TTL`] pays the counter walk; the rest read
    /// the published snapshot without touching data-path cache lines.
    pub(crate) stats_cache: bpw_metrics::SnapshotCache<StatsSnapshot>,
    /// Present when the config enabled `--adaptive`.
    pub(crate) adaptive: Option<Arc<AdaptiveShared>>,
}

/// How long a published [`StatsSnapshot`] is served before a scrape
/// re-aggregates. Short enough that monitoring stays fresh; long enough
/// that a scrape storm (many Prometheus pollers, dashboards) costs the
/// data path one walk per interval instead of one per scrape.
pub(crate) const STATS_TTL: Duration = Duration::from_millis(10);

/// Monotone nanoseconds since the first call (the clock handed to the
/// snapshot cache; `Instant` itself cannot live in an atomic).
pub(crate) fn scrape_clock_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

impl Shared {
    /// The current pool-side scalar snapshot, at most [`STATS_TTL`]
    /// stale, aggregating under the seqlock when it is older.
    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats_cache
            .get(scrape_clock_ns(), STATS_TTL.as_nanos() as u64, || {
                self.aggregate_stats()
            })
    }

    /// The uncached aggregation walk: every pool/lock scalar a scrape
    /// renders. This is the work the seqlock cache amortizes.
    pub(crate) fn aggregate_stats(&self) -> StatsSnapshot {
        let stats = self.pool.stats();
        StatsSnapshot {
            pool: PoolCounters {
                hits: stats.hits.load(Ordering::Relaxed),
                misses: stats.misses.load(Ordering::Relaxed),
                writebacks: stats.writebacks.load(Ordering::Relaxed),
                io_retries: stats.io_retries.load(Ordering::Relaxed),
                io_errors: stats.io_errors.load(Ordering::Relaxed),
                free_list_steals: self.pool.free_list_steals(),
                free_list_cold_pushes: self.pool.free_list_cold_pushes(),
                pin_cas_retries: stats.pin_cas_retries.load(Ordering::Relaxed),
                pin_underflows: stats.pin_underflows.load(Ordering::Relaxed),
                page_table_fallback_reads: self.pool.page_table_fallback_reads(),
            },
            lock: self.pool.manager().lock_snapshot(),
            miss_lock: self.pool.miss_lock_snapshot(),
            miss_locks: self.pool.miss_lock_summary(),
            combining: self.pool.manager().combining_snapshot(),
            peak_queue_depth: self.depth.get(),
        }
    }
}

/// A running page service. Dropping without [`join`](Self::join) leaks
/// the threads; tests and binaries should always join.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Present when the config asked for fault injection; tests and the
    /// chaos driver use it to steer faults mid-run.
    faulty: Option<Arc<FaultyDisk>>,
    /// The server's own sender handle; dropped during [`join`](Self::join)
    /// so the workers see the channel disconnect once every connection
    /// thread's clone is gone too.
    admission: Option<AdmissionQueue<Job>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Ring-trim janitor (present when `slo_us` armed the flight
    /// recorder): the trace rings drop-and-count on overflow, so a
    /// steady-state server would stop capturing NEW events once they
    /// fill. The janitor keeps a recent window live by discarding
    /// events older than ~1s.
    janitor: Option<JoinHandle<()>>,
    /// True when this server armed the flight recorder (and therefore
    /// owns disarming it on join).
    armed_flight: bool,
    /// Advisor thread (present with `--adaptive`): drains the sample
    /// tap, scores shadow caches, and hot-swaps the winning policy.
    advisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and acceptor, and return.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let wrapper = WrapperConfig::default().with_combining_mode(config.combining);
        let manager = build_manager_with(&config.manager, config.frames, wrapper)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        // Adaptive mode: interpose the hot-swap layer and set up the
        // sampled tap + expert scorer. Only wrapped-* managers make
        // sense to adapt between (the advisor swaps among them).
        let mut adaptive = None;
        let manager: Box<dyn ReplacementManager> = if config.adaptive {
            let incumbent: PolicyKind = config
                .manager
                .trim()
                .to_ascii_lowercase()
                .strip_prefix("wrapped-")
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "--adaptive requires a wrapped-<policy> manager",
                    )
                })?
                .parse()
                .map_err(|e: String| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            let advisor_cfg = AdvisorConfig {
                shadow_frames: config.frames.min(256),
                window: 256,
                sample_period: 4,
                ..AdvisorConfig::default()
            };
            let candidates = [
                PolicyKind::Lru,
                PolicyKind::TwoQ,
                PolicyKind::Lirs,
                PolicyKind::Arc,
            ];
            let swap = Arc::new(SwapManager::new(manager));
            let state = Arc::new(AdaptiveShared {
                swap: Arc::clone(&swap),
                advisor: Mutex::new(Advisor::new(&candidates, incumbent, advisor_cfg)),
                tap: Arc::new(SampleTap::new(advisor_cfg.sample_period, 4096)),
            });
            adaptive = Some(state);
            Box::new(swap)
        } else {
            manager
        };
        let mut faulty = None;
        let storage: Arc<dyn Storage> = match config.fault_plan {
            Some(plan) => {
                let disk = Arc::new(FaultyDisk::new(Arc::new(SimDisk::instant()), plan));
                faulty = Some(Arc::clone(&disk));
                disk
            }
            None => Arc::new(SimDisk::instant()),
        };
        let mut pool = BufferPool::new(config.frames, config.page_size, manager, storage);
        if let Some(shards) = config.miss_shards {
            pool = pool.with_miss_shards(shards);
        }
        if let Some(state) = &adaptive {
            pool = pool.with_sample_tap(Arc::clone(&state.tap));
        }
        let pool = Arc::new(pool);
        let (admission, work) = admission_queue(config.queue_capacity, config.policy);
        let shared = Arc::new(Shared {
            pool,
            metrics: ServerMetrics::shared(),
            stop: Arc::new(AtomicBool::new(false)),
            pages: config.pages,
            depth: admission.depth_gauge(),
            stats_cache: bpw_metrics::SnapshotCache::default(),
            adaptive,
        });

        // Advisor thread: drain the tap, feed the shadow caches, and
        // hot-swap when a challenger sustainably beats the incumbent.
        // The swap itself goes through `BufferPool::swap_manager`, which
        // freezes residency under the miss-shard locks.
        let advisor = shared.adaptive.as_ref().map(|state| {
            let state = Arc::clone(state);
            let shared = Arc::clone(&shared);
            let frames = config.frames;
            thread::Builder::new()
                .name("bpw-advisor".into())
                .spawn(move || {
                    let mut buf = Vec::new();
                    while !shared.stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(2));
                        buf.clear();
                        state.tap.drain(&mut buf);
                        let nominated = {
                            let mut adv = state.advisor.lock().expect("advisor lock");
                            for &p in &buf {
                                adv.observe(p);
                            }
                            adv.nominate()
                        };
                        if let Some(kind) = nominated {
                            let spec = format!("wrapped-{}", kind.name().to_ascii_lowercase());
                            let next = build_manager_with(&spec, frames, wrapper)
                                .expect("nominated policies always build");
                            if shared.pool.swap_manager(next).is_some() {
                                state.advisor.lock().expect("advisor lock").adopt(kind);
                            }
                        }
                    }
                })
                .expect("spawn advisor")
        });

        let mut janitor = None;
        let armed_flight = config.slo_us.is_some();
        if let Some(slo_us) = config.slo_us {
            bpw_trace::flight::arm(
                slo_us.saturating_mul(1_000),
                bpw_trace::flight::DEFAULT_EXEMPLAR_CAPACITY,
            );
            bpw_trace::set_enabled(true);
            let stop = Arc::clone(&shared.stop);
            janitor = Some(
                thread::Builder::new()
                    .name("bpw-trace-janitor".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            thread::sleep(Duration::from_millis(25));
                            bpw_trace::trim_older_than(1_000_000_000);
                        }
                    })
                    .expect("spawn trace janitor"),
            );
        }

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let work = work.clone();
                thread::Builder::new()
                    .name(format!("bpw-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &work))
                    .expect("spawn worker")
            })
            .collect();
        drop(work);

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = match config.mode {
            FrontendMode::Threaded => {
                let shared = Arc::clone(&shared);
                let conns = Arc::clone(&conns);
                let admission = admission.clone();
                thread::Builder::new()
                    .name("bpw-acceptor".into())
                    .spawn(move || accept_loop(&listener, &shared, &admission, &conns))
                    .expect("spawn acceptor")
            }
            FrontendMode::EventLoop => {
                listener.set_nonblocking(true)?;
                let completions = Arc::new(Completions::new()?);
                let shared = Arc::clone(&shared);
                let admission = admission.clone();
                let max_pipeline = config.max_pipeline.max(1);
                thread::Builder::new()
                    .name("bpw-evl-loop".into())
                    .spawn(move || {
                        eventloop::run(listener, shared, admission, completions, max_pipeline)
                    })
                    .expect("spawn event loop")
            }
        };

        Ok(Server {
            addr,
            shared,
            faulty,
            admission: Some(admission),
            acceptor: Some(acceptor),
            workers,
            conns,
            janitor,
            armed_flight,
            advisor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics (shared with all threads).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.shared.metrics
    }

    /// The underlying buffer pool.
    pub fn pool(&self) -> &Arc<DynPool> {
        &self.shared.pool
    }

    /// The fault-injecting disk, when the config enabled one.
    pub fn faulty_disk(&self) -> Option<&Arc<FaultyDisk>> {
        self.faulty.as_ref()
    }

    /// The hot-swap layer, when the config enabled `--adaptive`. Tests
    /// use this to drive swaps directly and read swap/migration counts.
    pub fn adaptive_swap(&self) -> Option<&Arc<SwapManager>> {
        self.shared.adaptive.as_ref().map(|a| &a.swap)
    }

    /// Render the same JSON a `STATS` request returns.
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Render the same text a `METRICS` request returns.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// Has a stop been requested (via [`stop`](Self::stop) or a client
    /// `SHUTDOWN`)?
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until a stop is requested.
    pub fn wait_stop_requested(&self) {
        while !self.stop_requested() {
            thread::sleep(Duration::from_millis(25));
        }
    }

    /// Ask the server to stop accepting new connections.
    pub fn stop(&self) {
        request_stop(&self.shared.stop, self.addr);
    }

    /// Stop accepting, wait for live connections to finish, drain the
    /// queue, and join every thread.
    pub fn join(mut self) {
        self.stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Connection threads exit when their client closes; each drops
        // its admission-queue clone on the way out.
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
        // Dropping the last sender disconnects the channel; workers
        // drain whatever is queued and exit.
        drop(self.admission.take());
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        if let Some(j) = self.janitor.take() {
            let _ = j.join();
        }
        if let Some(a) = self.advisor.take() {
            let _ = a.join();
        }
        if self.armed_flight {
            // This server turned the recorder (and tracing) on; leave
            // the process the way we found it so tests sharing the
            // global collector don't observe a stray armed recorder.
            bpw_trace::flight::disarm();
            bpw_trace::set_enabled(false);
        }
    }
}

/// Flag a stop and poke the acceptor awake with a throwaway connection.
pub(crate) fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
        drop(s);
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    admission: &AdmissionQueue<Job>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let admission = admission.clone();
        let addr = listener.local_addr().expect("listener addr");
        let handle = thread::Builder::new()
            .name("bpw-conn".into())
            .spawn(move || {
                shared.metrics.connections_open.incr();
                let _ = serve_connection(stream, &shared, &admission, addr);
                shared.metrics.connections_open.decr();
            })
            .expect("spawn connection thread");
        conns.lock().expect("conns lock").push(handle);
    }
}

/// One client connection: strict request/reply in order.
fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    admission: &AdmissionQueue<Job>,
    addr: SocketAddr,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let conn_id = next_conn_id();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    while protocol::read_frame(&mut reader, &mut buf)? {
        // The request clock starts when its frame is fully read — queue
        // wait and every later stage are measured against this instant.
        let admitted = Instant::now();
        let req = match Request::decode(&buf) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics.errors.incr();
                protocol::write_frame(&mut writer, &Response::Err(e.to_string()).encode())?;
                break; // framing is suspect; drop the connection
            }
        };
        let decode_ns = admitted.elapsed().as_nanos() as u64;
        match req {
            Request::Stats => {
                let resp = Response::Ok(stats_json(shared).into_bytes());
                protocol::write_frame(&mut writer, &resp.encode())?;
                continue;
            }
            Request::Metrics => {
                let resp = Response::Ok(metrics_text(shared).into_bytes());
                protocol::write_frame(&mut writer, &resp.encode())?;
                continue;
            }
            Request::Exemplars => {
                let resp = Response::Ok(bpw_trace::flight::exemplars_json().into_bytes());
                protocol::write_frame(&mut writer, &resp.encode())?;
                continue;
            }
            Request::Shutdown => {
                // Flag the stop before acknowledging: a client that has
                // seen the OK must observe `stop_requested()` as true.
                request_stop(&shared.stop, addr);
                protocol::write_frame(&mut writer, &Response::Ok(Vec::new()).encode())?;
                writer.flush()?;
                continue;
            }
            _ => {}
        }
        let kind = match &req {
            Request::Get { .. } => OpKind::Get,
            Request::Put { .. } => OpKind::Put,
            Request::Scan { .. } => OpKind::Scan,
            _ => unreachable!("handled above"),
        };
        let ctx = RequestCtx {
            id: next_request_id(),
            conn: conn_id,
            opcode: req.opcode(),
        };
        shared.metrics.record_stage(kind, Stage::Decode, decode_ns);
        // Everything this thread records from here to the reply belongs
        // to this request; the worker stamps its own thread separately.
        bpw_trace::set_current_request(ctx.id);
        bpw_trace::instant(bpw_trace::EventKind::ServerEnqueue, req.opcode() as u64);
        let (reply_tx, reply_rx) = channel::bounded(1);
        let resp = match admission.submit(Job {
            req,
            admitted,
            ctx,
            reply: ReplyTo::Channel(reply_tx),
        }) {
            Admitted::Queued => reply_rx
                .recv()
                .unwrap_or_else(|_| Response::Err("server shut down before replying".into())),
            Admitted::Shed => Response::Busy,
            Admitted::Closed => Response::Err("server is shutting down".into()),
        };
        let flush_t0 = Instant::now();
        protocol::write_frame(&mut writer, &resp.encode())?;
        shared.metrics.record_stage(
            kind,
            Stage::ReplyFlush,
            flush_t0.elapsed().as_nanos() as u64,
        );
        let status: u8 = match &resp {
            Response::Ok(_) => 0,
            Response::Busy => 1,
            Response::Dropped => 2,
            Response::Err(_) => 3,
            Response::IoError(_) => 4,
        };
        let total_ns = admitted.elapsed().as_nanos() as u64;
        // The reply span must land in the ring BEFORE a flight capture
        // snapshots it, or the exemplar's chain ends at the worker.
        bpw_trace::span_backdated(bpw_trace::EventKind::ServerReply, total_ns, status as u64);
        if bpw_trace::flight::should_capture(total_ns, status) {
            shared.metrics.record_slo_violation(kind);
            bpw_trace::flight::capture(ctx.id, ctx.conn, ctx.opcode, status, total_ns);
        }
        bpw_trace::set_current_request(0);
        match resp {
            Response::Ok(_) => shared.metrics.record_ok(kind, admitted),
            Response::Busy => shared.metrics.busy.incr(),
            Response::Dropped => shared.metrics.dropped.incr(),
            Response::Err(_) => shared.metrics.errors.incr(),
            Response::IoError(_) => shared.metrics.io_errors.incr(),
        }
    }
    Ok(())
}

fn worker_loop(shared: &Shared, work: &WorkQueue<Job>) {
    let mut session = shared.pool.session();
    loop {
        match work.pop(Duration::from_millis(50)) {
            Popped::Item(job) => {
                bpw_trace::set_current_request(job.ctx.id);
                let waited_ns = job.admitted.elapsed().as_nanos() as u64;
                shared.metrics.queue_wait_ns.record(waited_ns);
                bpw_trace::span_backdated(
                    bpw_trace::EventKind::ServerDequeue,
                    waited_ns,
                    job.req.opcode() as u64,
                );
                let kind = op_kind(&job.req);
                if let Some(kind) = kind {
                    shared
                        .metrics
                        .record_stage(kind, Stage::QueueWait, waited_ns);
                }
                // Fresh stage scratch for this request (an idle-timeout
                // flush may have left commit time behind on this thread).
                bpw_trace::stage::reset();
                let span = bpw_trace::span_start();
                let exec_t0 = Instant::now();
                let resp = execute(&mut session, shared, &job.req);
                let exec_ns = exec_t0.elapsed().as_nanos() as u64;
                bpw_trace::span_end(
                    bpw_trace::EventKind::PinOrMiss,
                    span,
                    job.req.opcode() as u64,
                );
                if let Some(kind) = kind {
                    let scratch = bpw_trace::stage::take();
                    // Whatever execute() spent beyond attributed miss
                    // I/O and batch commits is the hit path's own cost.
                    let pin_hit =
                        exec_ns.saturating_sub(scratch.miss_io_ns + scratch.batch_commit_ns);
                    shared.metrics.record_stage(kind, Stage::PinHit, pin_hit);
                    if scratch.miss_io_ns > 0 {
                        shared
                            .metrics
                            .record_stage(kind, Stage::MissIo, scratch.miss_io_ns);
                    }
                    if scratch.batch_commit_ns > 0 {
                        shared.metrics.record_stage(
                            kind,
                            Stage::BatchCommit,
                            scratch.batch_commit_ns,
                        );
                    }
                }
                job.reply.send(resp);
                bpw_trace::set_current_request(0);
            }
            Popped::Expired(job) => {
                job.reply.send(Response::Dropped);
            }
            Popped::Timeout => {
                // Idle: commit any deferred BP-Wrapper bookkeeping so the
                // replacement algorithm doesn't go stale between bursts.
                session.flush();
            }
            Popped::Disconnected => break,
        }
    }
}

/// The latency bucket a queued request belongs to (`None` for control
/// requests, which never reach the queue).
pub(crate) fn op_kind(req: &Request) -> Option<OpKind> {
    match req {
        Request::Get { .. } => Some(OpKind::Get),
        Request::Put { .. } => Some(OpKind::Put),
        Request::Scan { .. } => Some(OpKind::Scan),
        _ => None,
    }
}

/// Run one data request against the pool.
fn execute(
    session: &mut PoolSession<'_, Box<dyn ReplacementManager>>,
    shared: &Shared,
    req: &Request,
) -> Response {
    let page_size = shared.pool.page_size();
    match req {
        Request::Get { page } => {
            if *page >= shared.pages {
                return Response::Err(format!("page {page} outside 0..{}", shared.pages));
            }
            match session.fetch(*page) {
                Ok(pinned) => Response::Ok(pinned.read(|data| data.to_vec())),
                Err(e) => Response::IoError(e.to_string()),
            }
        }
        Request::Put { page, data } => {
            if *page >= shared.pages {
                return Response::Err(format!("page {page} outside 0..{}", shared.pages));
            }
            if data.len() > page_size {
                return Response::Err(format!(
                    "PUT of {} bytes exceeds the {page_size}-byte page",
                    data.len()
                ));
            }
            match session.fetch(*page) {
                Ok(pinned) => {
                    pinned.write(|dst| dst[..data.len()].copy_from_slice(data));
                    Response::Ok(Vec::new())
                }
                Err(e) => Response::IoError(e.to_string()),
            }
        }
        Request::Scan { start, len } => {
            let end = match start.checked_add(*len as u64) {
                Some(end) if end <= shared.pages => end,
                _ => {
                    return Response::Err(format!("SCAN {start}+{len} outside 0..{}", shared.pages))
                }
            };
            let mut checksum = 0u64;
            for page in *start..end {
                match session.fetch(page) {
                    Ok(pinned) => checksum = pinned.read(|data| fnv1a(checksum, data)),
                    Err(e) => return Response::IoError(e.to_string()),
                }
            }
            let mut payload = Vec::with_capacity(12);
            payload.extend_from_slice(&len.to_le_bytes());
            payload.extend_from_slice(&checksum.to_le_bytes());
            Response::Ok(payload)
        }
        Request::Stats | Request::Shutdown | Request::Metrics | Request::Exemplars => {
            Response::Err("control requests are not executed by workers".into())
        }
    }
}

/// Render the ADVISOR sub-object for STATS: expert scores, swap/
/// migration counters, and tap health.
pub(crate) fn advisor_json(state: &AdaptiveShared) -> String {
    let snap = state.advisor.lock().expect("advisor lock").snapshot();
    let mut experts = String::from("[");
    for (i, e) in snap.experts.iter().enumerate() {
        if i > 0 {
            experts.push(',');
        }
        let mut eo = JsonObject::new();
        eo.field_str("policy", e.policy.name())
            .field_f64("ewma", e.ewma)
            .field_f64("lifetime_hit_ratio", e.lifetime_hit_ratio);
        experts.push_str(&eo.finish());
    }
    experts.push(']');
    let mut o = JsonObject::new();
    o.field_str("incumbent", snap.incumbent.name());
    match snap.leader {
        Some(l) => o.field_str("leader", l.name()),
        None => o.field_raw("leader", "null"),
    };
    o.field_u64("lead_streak", snap.lead_streak as u64)
        .field_u64("samples", snap.samples)
        .field_u64("windows", snap.windows)
        .field_u64("adoptions", snap.adoptions)
        .field_u64("swaps", state.swap.swaps())
        .field_u64("migrations", state.swap.migrations())
        .field_u64("pages_transferred", state.swap.pages_transferred())
        .field_u64("advice_recovered", state.swap.advice_recovered())
        .field_u64("tap_pushed", state.tap.pushed())
        .field_u64("tap_dropped", state.tap.dropped())
        .field_str("live_manager", &state.swap.current_name())
        .field_raw("experts", &experts);
    o.finish()
}

pub(crate) fn stats_json(shared: &Shared) -> String {
    let advisor = shared.adaptive.as_deref().map(advisor_json);
    shared
        .metrics
        .to_json_with(&shared.stats_snapshot(), advisor.as_deref())
}

/// Prometheus-style text exposition: the METRICS reply. Same sources
/// as `stats_json` (pool-side scalars through the same seqlock-cached
/// snapshot), plus the trace collector's own health counters.
pub(crate) fn metrics_text(shared: &Shared) -> String {
    let m = &shared.metrics;
    let snap = shared.stats_snapshot();
    let pool = &snap.pool;
    let mut w = bpw_trace::PromWriter::new();
    w.labeled_counter(
        "bpw_requests_total",
        "Requests by reply status.",
        "status",
        &[
            ("ok", m.ok.get()),
            ("busy", m.busy.get()),
            ("dropped", m.dropped.get()),
            ("error", m.errors.get()),
            ("io_error", m.io_errors.get()),
        ],
    )
    .gauge(
        "bpw_queue_depth_peak",
        "Admission-queue depth high-water mark.",
        snap.peak_queue_depth as f64,
    )
    .histogram("bpw_get_latency_ns", "End-to-end GET latency.", &m.get_ns)
    .histogram("bpw_put_latency_ns", "End-to-end PUT latency.", &m.put_ns)
    .histogram(
        "bpw_scan_latency_ns",
        "End-to-end SCAN latency.",
        &m.scan_ns,
    )
    .histogram(
        "bpw_queue_wait_ns",
        "Time queued before a worker picked the request up.",
        &m.queue_wait_ns,
    )
    .gauge(
        "bpw_connections_open",
        "Client connections currently open.",
        m.connections_open.get() as f64,
    )
    .gauge(
        "bpw_connections_peak",
        "Open-connection high-water mark.",
        m.connections_open.peak() as f64,
    )
    .counter(
        "bpw_epoll_wakeups_total",
        "Event-loop wakeups (epoll_wait returns with work).",
        m.epoll_wakeups.get(),
    )
    .counter(
        "bpw_short_writes_total",
        "Nonblocking writes that accepted only part of the buffer.",
        m.short_writes.get(),
    )
    .histogram(
        "bpw_pipeline_depth",
        "In-flight pipelined requests per connection, observed at admission.",
        &m.pipeline_depth,
    )
    .histogram(
        "bpw_ready_events_per_wakeup",
        "Ready fds delivered per epoll wakeup.",
        &m.ready_per_wakeup,
    )
    .counter(
        "bpw_pool_hits_total",
        "Fetches served from the buffer.",
        pool.hits,
    )
    .counter(
        "bpw_pool_misses_total",
        "Fetches that read storage.",
        pool.misses,
    )
    .counter(
        "bpw_pool_writebacks_total",
        "Dirty victims written back.",
        pool.writebacks,
    )
    .counter(
        "bpw_pool_io_retries_total",
        "Storage operations retried after a transient fault.",
        pool.io_retries,
    )
    .counter(
        "bpw_pool_io_errors_total",
        "Storage operations failed after exhausting retries.",
        pool.io_errors,
    )
    .counter(
        "bpw_pin_cas_retries_total",
        "Fast-path pin CAS retries (packed-header contention signal).",
        pool.pin_cas_retries,
    )
    .counter(
        "bpw_pin_underflow_total",
        "Unpins that found the pin count at zero (saturated, not wrapped).",
        pool.pin_underflows,
    )
    .counter(
        "bpw_page_table_fallback_reads_total",
        "Page-table lookups that fell back to the locked path.",
        pool.page_table_fallback_reads,
    )
    .lock_snapshot("bpw_lock", "replacement", &snap.lock)
    .lock_snapshot("bpw_lock", "miss", &snap.miss_lock);
    // Per-shard miss-lock series: where on the partition the miss path's
    // remaining serialization concentrates.
    let shard_snaps = shared.pool.miss_lock_shard_snapshots();
    let labels: Vec<String> = (0..shard_snaps.len()).map(|i| i.to_string()).collect();
    let acq: Vec<(&str, u64)> = labels
        .iter()
        .zip(&shard_snaps)
        .map(|(l, s)| (l.as_str(), s.acquisitions))
        .collect();
    let wait: Vec<(&str, u64)> = labels
        .iter()
        .zip(&shard_snaps)
        .map(|(l, s)| (l.as_str(), s.wait_ns))
        .collect();
    w.labeled_counter(
        "bpw_miss_shard_acquisitions_total",
        "Miss-path lock acquisitions by page-table shard.",
        "shard",
        &acq,
    )
    .labeled_counter(
        "bpw_miss_shard_wait_ns_total",
        "Nanoseconds waited on each shard's miss lock.",
        "shard",
        &wait,
    )
    .gauge(
        "bpw_miss_lock_shards",
        "Miss-path partition width (shard locks).",
        shard_snaps.len() as f64,
    )
    .counter(
        "bpw_free_list_steals_total",
        "Free-list pops served by stealing from another stripe.",
        pool.free_list_steals,
    )
    .counter(
        "bpw_free_list_cold_pushes_total",
        "Frames parked on the free list's cold stack by frame repair.",
        pool.free_list_cold_pushes,
    )
    .gauge(
        "bpw_trace_enabled",
        "1 when event tracing is recording.",
        bpw_trace::enabled() as u64 as f64,
    )
    .counter(
        "bpw_trace_dropped_events_total",
        "Trace events lost to ring overflow.",
        bpw_trace::dropped(),
    )
    .gauge(
        "bpw_trace_threads",
        "Threads that have recorded at least one trace event.",
        bpw_trace::thread_count() as f64,
    );
    // Per-opcode stage attribution: one histogram metric, op × stage
    // labeled series.
    let mut stage_cells: Vec<([(&str, &str); 2], &bpw_metrics::Histogram)> = Vec::new();
    for kind in OpKind::ALL {
        for stage in Stage::ALL {
            stage_cells.push((
                [("op", kind.name()), ("stage", stage.name())],
                m.stages(kind).get(stage),
            ));
        }
    }
    let stage_series: Vec<(&[(&str, &str)], &bpw_metrics::Histogram)> =
        stage_cells.iter().map(|(l, h)| (&l[..], *h)).collect();
    w.labeled_histograms(
        "bpw_stage_latency_ns",
        "Request latency attributed to one pipeline stage, per opcode.",
        &stage_series,
    );
    let slo_series: Vec<(&str, u64)> = OpKind::ALL
        .iter()
        .map(|k| (k.name(), m.slo_violations[k.index()].get()))
        .collect();
    w.labeled_counter(
        "bpw_slo_violations_total",
        "Requests that exceeded --slo-us or ended ERR_IO, per opcode.",
        "op",
        &slo_series,
    );
    // Per-ring drop counters: which recording thread is losing events.
    let drops = bpw_trace::ring_drops();
    let tid_labels: Vec<String> = drops.iter().map(|(tid, _)| tid.to_string()).collect();
    let drop_series: Vec<(&str, u64)> = tid_labels
        .iter()
        .zip(&drops)
        .map(|(l, (_, d))| (l.as_str(), *d))
        .collect();
    w.labeled_counter(
        "bpw_trace_ring_dropped_events_total",
        "Trace events lost to ring overflow, per recording thread.",
        "tid",
        &drop_series,
    )
    .counter(
        "bpw_exemplars_captured_total",
        "Slow or ERR_IO requests captured by the flight recorder.",
        bpw_trace::flight::captured_total(),
    )
    .gauge(
        "bpw_flight_slo_ns",
        "Armed flight-recorder SLO in nanoseconds (0 = disarmed).",
        bpw_trace::flight::slo_ns() as f64,
    );
    // Flat-combining commit-path counters (wrapped managers only).
    if let Some(c) = snap.combining {
        w.labeled_counter(
            "bpw_combining_batches_total",
            "Publication-slot batch events on the combining commit path.",
            "event",
            &[
                ("published", c.published),
                ("publish_fallback", c.publish_fallbacks),
                ("reclaimed", c.reclaimed),
                ("combined", c.combined_batches),
            ],
        )
        .counter(
            "bpw_combining_entries_total",
            "Accesses applied from other threads' combined batches.",
            c.combined_entries,
        )
        .counter(
            "bpw_combining_passes_total",
            "Drain passes executed by combining critical sections.",
            c.combine_passes,
        )
        .gauge(
            "bpw_combining_depth_last",
            "Batches drained in the most recent combining critical section.",
            c.combine_depth_last as f64,
        )
        .gauge(
            "bpw_combining_depth_peak",
            "Most batches ever drained in one combining critical section.",
            c.combine_depth_peak as f64,
        );
    }
    // Adaptive-replacement series (`--adaptive` servers only).
    if let Some(state) = shared.adaptive.as_deref() {
        let snap = state.advisor.lock().expect("advisor lock").snapshot();
        w.counter(
            "bpw_advisor_samples_total",
            "Sampled accesses scored by the shadow caches.",
            snap.samples,
        )
        .counter(
            "bpw_advisor_windows_total",
            "Scoring windows closed by the advisor.",
            snap.windows,
        )
        .counter(
            "bpw_advisor_adoptions_total",
            "Challenger policies adopted (hot-swapped in).",
            snap.adoptions,
        )
        .counter(
            "bpw_advisor_swaps_total",
            "Manager hot-swaps completed.",
            state.swap.swaps(),
        )
        .counter(
            "bpw_advisor_migrations_total",
            "Lazy handle migrations after swaps.",
            state.swap.migrations(),
        )
        .counter(
            "bpw_advisor_pages_transferred_total",
            "Resident pages carried across swaps via export/import.",
            state.swap.pages_transferred(),
        )
        .counter(
            "bpw_advisor_advice_recovered_total",
            "Published accesses drained off retired managers' boards.",
            state.swap.advice_recovered(),
        )
        .counter(
            "bpw_advisor_tap_dropped_total",
            "Samples overwritten before the advisor drained them.",
            state.tap.dropped(),
        );
        let names: Vec<&str> = snap.experts.iter().map(|e| e.policy.name()).collect();
        let ewma_ppm: Vec<(&str, u64)> = names
            .iter()
            .zip(&snap.experts)
            .map(|(n, e)| (*n, (e.ewma * 1e6) as u64))
            .collect();
        w.labeled_counter(
            "bpw_advisor_expert_ewma_ppm",
            "Each expert's EWMA shadow hit ratio, parts per million.",
            "policy",
            &ewma_ppm,
        );
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_specs_parse() {
        for spec in [
            "clock",
            "coarse-2q",
            "coarse-lirs",
            "wrapped-2q",
            "wrapped-lru",
            "WRAPPED-ARC",
        ] {
            let m = build_manager(spec, 64).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(!m.name().is_empty());
        }
        assert!(build_manager("fine-2q", 64).is_err());
        assert!(build_manager("wrapped-nosuch", 64).is_err());
    }

    #[test]
    fn server_starts_and_joins() {
        let server = Server::start(ServerConfig {
            workers: 2,
            frames: 16,
            page_size: 64,
            pages: 128,
            ..ServerConfig::default()
        })
        .expect("start");
        assert_ne!(server.addr().port(), 0);
        let json = server.stats_json();
        assert!(json.starts_with('{'), "stats must be JSON: {json}");
        server.join();
    }
}
