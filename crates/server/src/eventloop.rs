//! The readiness event-loop frontend: one thread multiplexing every
//! client connection over epoll (via `bpw-evl`), with request
//! pipelining and batched writes.
//!
//! ## Why it exists
//!
//! The threaded frontend spends a thread per connection; tens of
//! thousands of mostly-idle connections means tens of thousands of
//! stacks and a scheduler meltdown long before BP-Wrapper's lock-free
//! batching becomes the bottleneck. Here, socket I/O is owned by a
//! single loop thread; decoded requests still flow through the same
//! admission queue to the same worker pool (each worker holding its
//! long-lived `PoolSession`), so overload policy and every replacement
//! scheme behave identically in both modes.
//!
//! ## Per-connection state machine
//!
//! Bytes arrive in arbitrary fragments and are fed to an incremental
//! [`FrameDecoder`]; each complete frame gets the connection's next
//! **sequence number**. Data requests are offered (never blockingly
//! submitted) to the admission queue and executed by workers, which may
//! finish out of order; control requests (`STATS`/`METRICS`/`SHUTDOWN`)
//! are answered inline by the loop thread. Completed responses park in
//! a per-connection reorder buffer and are released strictly in
//! sequence order — the pipelining contract is "responses in request
//! order", byte-identical to what the threaded frontend produces.
//!
//! ## Flow control without blocking
//!
//! The loop thread must never wait on anything. Three valves:
//!
//! * **Pipeline cap** — at most `max_pipeline` requests in flight per
//!   connection; past that the connection's read interest is dropped
//!   (level-triggered epoll makes re-arming free).
//! * **Stall buffer** — under `Block`/`DeadlineDrop`, a full admission
//!   queue hands the request back ([`Offered::Full`]); it parks in
//!   arrival order and is re-offered when a completion signals that a
//!   worker freed capacity. The request keeps its original admission
//!   time, so deadlines measure true staleness.
//! * **Write buffer** — responses coalesce into one [`WriteBuf`] per
//!   connection, flushed once per wakeup; a short write registers write
//!   interest instead of spinning.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bpw_evl::{Epoll, Interest, Ready, WakeFd, WriteBuf};

use crate::backpressure::{AdmissionQueue, Offered};
use crate::metrics::{OpKind, Stage};
use crate::protocol::{FrameDecoder, Request, Response};
use crate::server::{
    metrics_text, next_conn_id, next_request_id, op_kind, stats_json, Job, ReplyTo, RequestCtx,
    Shared,
};

const TOK_LISTENER: u64 = 0;
const TOK_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Socket-read budget per connection per wakeup: large enough to drain
/// a deep pipeline burst in one pass, small enough that one firehose
/// connection cannot starve the rest (level-triggered epoll re-delivers
/// whatever is left).
const READ_CHUNK: usize = 16 * 1024;
const MAX_READS_PER_WAKEUP: usize = 8;

/// Worker-to-loop completion channel: finished responses accumulate
/// under a mutex (held for a push or a swap, never across I/O) and the
/// eventfd wakes the loop — once per batch, not per response, because
/// only the first push into an empty queue notifies.
pub(crate) struct Completions {
    queue: Mutex<Vec<(u64, u64, Response)>>,
    wake: WakeFd,
}

impl Completions {
    pub(crate) fn new() -> io::Result<Completions> {
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
        })
    }

    /// Deliver a worker's response for `(token, seq)`.
    pub(crate) fn push(&self, token: u64, seq: u64, resp: Response) {
        let was_empty = {
            let mut q = self.queue.lock().expect("completions lock");
            let was_empty = q.is_empty();
            q.push((token, seq, resp));
            was_empty
        };
        if was_empty {
            self.wake.notify();
        }
    }

    fn drain(&self) -> Vec<(u64, u64, Response)> {
        std::mem::take(&mut *self.queue.lock().expect("completions lock"))
    }
}

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    /// Process-unique connection id (same id space as the threaded
    /// frontend's connections) — stamped into every request's ctx.
    id: u64,
    decoder: FrameDecoder,
    wbuf: WriteBuf,
    /// Sequence number the next decoded frame will get.
    next_seq: u64,
    /// Sequence number of the next response to put on the wire.
    next_to_send: u64,
    /// Completed responses waiting for their turn (reorder buffer).
    pending: BTreeMap<u64, Response>,
    /// Admission time, op kind, and request ctx of data requests, by
    /// seq — consumed when the response is written (metrics + reply
    /// trace + flight capture).
    meta: HashMap<u64, (OpKind, Instant, RequestCtx)>,
    /// Data requests handed to workers and not yet completed.
    inflight: usize,
    /// Decoded data requests a full admission queue handed back. Each
    /// keeps its original admission time and ctx across re-offers, so
    /// deadlines and queue-wait attribution measure true staleness.
    stalled: VecDeque<(u64, Request, Instant, RequestCtx)>,
    /// Peer closed its write half; serve what was received, then close.
    peer_eof: bool,
    /// Fatal frame/decode error: the seq of the final (ERR) response.
    /// Nothing past it is read or answered; close once it is written.
    close_after: Option<u64>,
    /// Interest currently registered with epoll, to skip no-op MODs.
    registered: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            id: next_conn_id(),
            decoder: FrameDecoder::new(),
            wbuf: WriteBuf::new(),
            next_seq: 0,
            next_to_send: 0,
            pending: BTreeMap::new(),
            meta: HashMap::new(),
            inflight: 0,
            stalled: VecDeque::new(),
            peer_eof: false,
            close_after: None,
            registered: (true, false),
        }
    }

    /// All work this connection will ever produce has been written.
    fn drained(&self) -> bool {
        self.inflight == 0
            && self.stalled.is_empty()
            && self.pending.is_empty()
            && self.wbuf.is_empty()
    }

    /// Should the loop keep reading from this socket?
    fn wants_read(&self, max_pipeline: usize) -> bool {
        !self.peer_eof
            && self.close_after.is_none()
            && self.stalled.is_empty()
            && self.inflight < max_pipeline
    }
}

/// Everything the loop owns; lives on the loop thread's stack.
struct EventLoop {
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    shared: Arc<Shared>,
    admission: AdmissionQueue<Job>,
    completions: Arc<Completions>,
    max_pipeline: usize,
}

/// Run the loop until a stop is requested *and* every connection has
/// gone away — the same lifetime the threaded frontend's acceptor plus
/// connection threads have collectively.
pub(crate) fn run(
    listener: TcpListener,
    shared: Arc<Shared>,
    admission: AdmissionQueue<Job>,
    completions: Arc<Completions>,
    max_pipeline: usize,
) {
    let epoll = Epoll::new(512).expect("epoll_create");
    epoll
        .add(&listener, TOK_LISTENER, Interest::READ)
        .expect("register listener");
    epoll
        .add(&completions.wake, TOK_WAKE, Interest::READ)
        .expect("register wake fd");
    let mut el = EventLoop {
        epoll,
        listener: Some(listener),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        shared,
        admission,
        completions,
        max_pipeline,
    };

    let mut ready_buf: Vec<Ready> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    // Tokens with possible new output/stall/close work this wakeup.
    let mut dirty: Vec<u64> = Vec::new();

    loop {
        ready_buf.clear();
        match el.epoll.wait(Some(Duration::from_millis(50))) {
            Ok(events) => ready_buf.extend(events),
            Err(e) => panic!("epoll_wait failed: {e}"),
        }
        let woke = Instant::now();
        let stop = el.shared.stop.load(Ordering::SeqCst);
        if stop {
            if let Some(l) = el.listener.take() {
                let _ = el.epoll.delete(&l);
                // Dropping closes the listening socket; racing connects
                // get refused exactly as when the threaded acceptor dies.
            }
        }

        dirty.clear();
        let mut woke_for_completions = false;
        for &ev in &ready_buf {
            match ev.token {
                TOK_WAKE => {
                    el.completions.wake.drain();
                    woke_for_completions = true;
                }
                TOK_LISTENER => el.accept_ready(stop),
                token => {
                    if el.conns.contains_key(&token) {
                        el.conn_event(token, ev, &mut scratch);
                        dirty.push(token);
                    }
                }
            }
        }

        // Route completed work to its reorder buffer. A completion also
        // means a worker freed queue capacity, so every connection with
        // stalled requests becomes eligible for a retry.
        let done = el.completions.drain();
        if !done.is_empty() || woke_for_completions {
            for token in el
                .conns
                .iter()
                .filter(|(_, c)| !c.stalled.is_empty())
                .map(|(&t, _)| t)
            {
                dirty.push(token);
            }
        }
        for (token, seq, resp) in done {
            if let Some(conn) = el.conns.get_mut(&token) {
                conn.inflight -= 1;
                conn.pending.insert(seq, resp);
                dirty.push(token);
            }
            // else: the connection died mid-request; the worker's
            // effort is discarded, its frames already unpinned.
        }

        dirty.sort_unstable();
        dirty.dedup();
        for &token in &dirty {
            el.service(token);
        }

        if !ready_buf.is_empty() {
            el.shared.metrics.epoll_wakeups.incr();
            el.shared
                .metrics
                .ready_per_wakeup
                .record(ready_buf.len() as u64);
            bpw_trace::span_backdated(
                bpw_trace::EventKind::EpollWakeup,
                woke.elapsed().as_nanos() as u64,
                ready_buf.len() as u64,
            );
        }

        if el.shared.stop.load(Ordering::SeqCst) && el.listener.is_none() && el.conns.is_empty() {
            break;
        }
    }
}

impl EventLoop {
    /// Accept until the backlog is dry. During shutdown the listener is
    /// gone, so `stop` here only covers the race where a connect landed
    /// in the backlog just before the flag flipped: accept and drop.
    fn accept_ready(&mut self, stop: bool) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) if stop => drop(stream),
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(&stream, token, Interest::READ).is_err() {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    self.shared.metrics.connections_open.incr();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// One readiness event for a connection.
    fn conn_event(&mut self, token: u64, ev: Ready, scratch: &mut [u8]) {
        if ev.hangup {
            // ERR/HUP: both directions are gone; nothing more can be
            // read or written. In-flight completions get discarded.
            self.close(token);
            return;
        }
        if ev.readable {
            self.read_ready(token, scratch);
        }
        // Writability is handled in `service` (flush runs every wakeup
        // for dirty connections); the event only needs to mark dirty.
    }

    /// Pull bytes, feed the decoder, dispatch complete frames.
    fn read_ready(&mut self, token: u64, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.wants_read(self.max_pipeline) {
            return;
        }
        for _ in 0..MAX_READS_PER_WAKEUP {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.push(&scratch[..n]);
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.dispatch_frames(token);
    }

    /// Decode buffered bytes into requests until the decoder runs dry,
    /// a fatal frame error poisons the stream, or flow control says
    /// stop handing out work.
    fn dispatch_frames(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after.is_some() {
                return;
            }
            match conn.decoder.next_frame() {
                Ok(None) => return,
                Ok(Some(body)) => {
                    // The request clock starts the moment its frame is
                    // complete — NOT at the epoll wakeup, which may
                    // have delivered a whole pipeline burst whose later
                    // frames would otherwise inherit the first frame's
                    // wait and inflate every reply span downstream.
                    let admitted = Instant::now();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    match Request::decode(&body) {
                        Ok(req) => {
                            let decode_ns = admitted.elapsed().as_nanos() as u64;
                            self.dispatch_request(token, seq, req, admitted, decode_ns)
                        }
                        Err(e) => {
                            // Same contract as the threaded frontend:
                            // answer ERR, then drop the connection —
                            // after every earlier response has gone out
                            // in order.
                            self.shared.metrics.errors.incr();
                            conn.pending.insert(seq, Response::Err(e.to_string()));
                            conn.close_after = Some(seq);
                            return;
                        }
                    }
                }
                Err(e) => {
                    self.shared.metrics.errors.incr();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(seq, Response::Err(e.to_string()));
                    conn.close_after = Some(seq);
                    return;
                }
            }
        }
    }

    /// Route one decoded request: control inline, data to the workers.
    /// `admitted` is the frame-decode-complete instant from
    /// `dispatch_frames`; `decode_ns` is what `Request::decode` cost.
    fn dispatch_request(
        &mut self,
        token: u64,
        seq: u64,
        req: Request,
        admitted: Instant,
        decode_ns: u64,
    ) {
        let resp = match &req {
            Request::Stats => Some(Response::Ok(stats_json(&self.shared).into_bytes())),
            Request::Metrics => Some(Response::Ok(metrics_text(&self.shared).into_bytes())),
            Request::Exemplars => Some(Response::Ok(
                bpw_trace::flight::exemplars_json().into_bytes(),
            )),
            Request::Shutdown => {
                // Flag first: a client that has seen the OK must observe
                // `stop_requested()` as true. The listener itself is
                // closed by the main loop on its next pass.
                self.shared.stop.store(true, Ordering::SeqCst);
                Some(Response::Ok(Vec::new()))
            }
            _ => None,
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(resp) = resp {
            conn.pending.insert(seq, resp);
            return;
        }
        let ctx = RequestCtx {
            id: next_request_id(),
            conn: conn.id,
            opcode: req.opcode(),
        };
        if let Some(kind) = op_kind(&req) {
            self.shared
                .metrics
                .record_stage(kind, Stage::Decode, decode_ns);
        }
        if conn.stalled.is_empty() {
            self.offer(token, seq, req, admitted, ctx);
        } else {
            // Order guarantee: nothing may overtake an already-stalled
            // request on its way into the queue.
            conn.stalled.push_back((seq, req, admitted, ctx));
        }
    }

    /// Offer a data request to the admission queue (non-blocking).
    fn offer(&mut self, token: u64, seq: u64, req: Request, admitted: Instant, ctx: RequestCtx) {
        let kind = match &req {
            Request::Get { .. } => OpKind::Get,
            Request::Put { .. } => OpKind::Put,
            Request::Scan { .. } => OpKind::Scan,
            _ => unreachable!("control requests are dispatched inline"),
        };
        // Attribute the enqueue event, then detach: the loop thread is
        // about to work on other requests, and its wakeup spans must
        // stay unowned.
        bpw_trace::set_current_request(ctx.id);
        bpw_trace::instant(bpw_trace::EventKind::ServerEnqueue, req.opcode() as u64);
        bpw_trace::set_current_request(0);
        let job = Job {
            req,
            admitted,
            ctx,
            reply: ReplyTo::Loop {
                completions: Arc::clone(&self.completions),
                token,
                seq,
            },
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match self.admission.offer_at(job, admitted) {
            Offered::Queued => {
                conn.inflight += 1;
                conn.meta.insert(seq, (kind, admitted, ctx));
                self.shared
                    .metrics
                    .pipeline_depth
                    .record(conn.inflight as u64);
            }
            Offered::Shed => {
                // Counted at reply-write via `meta`, exactly like a
                // threaded connection counting its BUSY.
                conn.meta.insert(seq, (kind, admitted, ctx));
                conn.pending.insert(seq, Response::Busy);
            }
            Offered::Full(job) => {
                conn.stalled.push_back((seq, job.req, admitted, ctx));
            }
            Offered::Closed => {
                conn.meta.insert(seq, (kind, admitted, ctx));
                conn.pending
                    .insert(seq, Response::Err("server is shutting down".into()));
            }
        }
    }

    /// Post-event work for one connection: retry stalled offers, move
    /// in-order responses to the write buffer, flush, re-arm interest,
    /// and close if finished.
    fn service(&mut self, token: u64) {
        // Re-offer stalled requests in arrival order; stop at the first
        // that still finds the queue full.
        while let Some(conn) = self.conns.get_mut(&token) {
            let Some((seq, req, admitted, ctx)) = conn.stalled.pop_front() else {
                break;
            };
            let before = conn.stalled.len();
            self.offer(token, seq, req, admitted, ctx);
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.stalled.len() > before {
                // `offer` pushed it back: queue still full. Preserve
                // order — it must go back to the *front*.
                let stuck = conn.stalled.pop_back().expect("just pushed");
                conn.stalled.push_front(stuck);
                break;
            }
        }
        // A drained stall buffer may have unblocked decoded-but-parked
        // frames sitting in the decoder.
        self.dispatch_frames(token);

        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Release the reorder buffer strictly in sequence order.
        while let Some(resp) = conn.pending.remove(&conn.next_to_send) {
            let seq = conn.next_to_send;
            conn.next_to_send += 1;
            // Reply-flush here is serialization into the coalesced
            // write buffer; the socket write itself is shared by every
            // reply in the flush below and can't be attributed per
            // request (the threaded frontend measures the actual write).
            let flush_t0 = Instant::now();
            let mut frame = Vec::with_capacity(5);
            let body = resp.encode();
            frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frame.extend_from_slice(&body);
            conn.wbuf.push(&frame);
            let flush_ns = flush_t0.elapsed().as_nanos() as u64;
            if let Some((kind, admitted, ctx)) = conn.meta.remove(&seq) {
                let status: u8 = match &resp {
                    Response::Ok(_) => 0,
                    Response::Busy => 1,
                    Response::Dropped => 2,
                    Response::Err(_) => 3,
                    Response::IoError(_) => 4,
                };
                let total_ns = admitted.elapsed().as_nanos() as u64;
                let m = &self.shared.metrics;
                m.record_stage(kind, Stage::ReplyFlush, flush_ns);
                // Reply span first, then capture: the flight snapshot
                // must see the completed chain.
                bpw_trace::set_current_request(ctx.id);
                bpw_trace::span_backdated(
                    bpw_trace::EventKind::ServerReply,
                    total_ns,
                    status as u64,
                );
                if bpw_trace::flight::should_capture(total_ns, status) {
                    m.record_slo_violation(kind);
                    bpw_trace::flight::capture(ctx.id, ctx.conn, ctx.opcode, status, total_ns);
                }
                bpw_trace::set_current_request(0);
                match resp {
                    Response::Ok(_) => m.record_ok(kind, admitted),
                    Response::Busy => m.busy.incr(),
                    Response::Dropped => m.dropped.incr(),
                    Response::Err(_) => m.errors.incr(),
                    Response::IoError(_) => m.io_errors.incr(),
                }
            }
            if conn.close_after == Some(seq) {
                break;
            }
        }
        // One coalesced flush per wakeup.
        match conn.wbuf.flush(&mut conn.stream) {
            Ok(progress) => {
                self.shared.metrics.short_writes.add(progress.short_writes);
            }
            Err(_) => {
                self.close(token);
                return;
            }
        }

        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let err_done = conn
            .close_after
            .is_some_and(|s| conn.next_to_send > s && conn.wbuf.is_empty());
        let eof_done = conn.peer_eof && conn.decoder.buffered() == 0 && conn.drained();
        if err_done || eof_done {
            self.close(token);
            return;
        }
        // Re-arm epoll interest to match what this connection needs.
        let want = (conn.wants_read(self.max_pipeline), !conn.wbuf.is_empty());
        if want != conn.registered {
            let interest = match want {
                (true, true) => Interest::READ_WRITE,
                (true, false) => Interest::READ,
                (false, true) => Interest::WRITE,
                (false, false) => Interest::NONE,
            };
            if self.epoll.modify(&conn.stream, token, interest).is_ok() {
                conn.registered = want;
            }
        }
    }

    /// Tear a connection down: deregister, drop, account.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(&conn.stream);
            self.shared.metrics.connections_open.decr();
        }
    }
}
