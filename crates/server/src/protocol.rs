//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one frame: a 4-byte little-endian body length
//! followed by the body. Request bodies start with an opcode byte,
//! response bodies with a status byte. All integers are little-endian.
//!
//! ```text
//! request  := u32 len | op:u8 payload
//!   GET      (0x01)  page:u64
//!   PUT      (0x02)  page:u64 data:bytes            (data fills the page
//!                                                    from offset 0)
//!   SCAN     (0x03)  start:u64 len:u32
//!   STATS    (0x04)
//!   SHUTDOWN (0x05)
//!   METRICS  (0x06)
//!   EXEMPLARS(0x07)
//!
//! response := u32 len | status:u8 payload
//!   OK       (0x00)  GET: page bytes; PUT/SHUTDOWN: empty;
//!                    SCAN: count:u32 checksum:u64 (FNV-1a over contents);
//!                    STATS: UTF-8 JSON;
//!                    METRICS: UTF-8 Prometheus-style text exposition;
//!                    EXEMPLARS: UTF-8 Chrome-trace JSON (flight
//!                    recorder's captured slow/failed requests)
//!   BUSY     (0x01)  shed by admission control (queue full)
//!   DROPPED  (0x02)  deadline exceeded while queued
//!   ERR      (0x03)  UTF-8 message
//!   ERR_IO   (0x04)  UTF-8 message: storage failed after retries; the
//!                    pool repaired itself and the request may simply be
//!                    retried
//! ```

use std::io::{self, Read, Write};

/// Largest accepted frame body. Bounds server-side allocation per
/// connection; a page plus headers fits comfortably.
pub const MAX_FRAME: usize = 1 << 20;

/// Longest SCAN a single request may ask for.
pub const MAX_SCAN_LEN: u32 = 1 << 16;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read one page.
    Get {
        /// Page id.
        page: u64,
    },
    /// Overwrite the head of one page.
    Put {
        /// Page id.
        page: u64,
        /// Bytes written from offset 0 (at most the page size).
        data: Vec<u8>,
    },
    /// Touch `len` consecutive pages, returning a checksum.
    Scan {
        /// First page id.
        start: u64,
        /// Number of pages.
        len: u32,
    },
    /// Fetch the server's metrics as JSON.
    Stats,
    /// Ask the server to stop accepting and drain.
    Shutdown,
    /// Fetch the server's metrics as Prometheus-style text exposition.
    Metrics,
    /// Fetch the flight recorder's captured exemplars as Chrome-trace
    /// JSON (loadable in Perfetto).
    Exemplars,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; payload depends on the request.
    Ok(Vec<u8>),
    /// Shed by admission control before queueing.
    Busy,
    /// Dropped after queueing: its deadline passed before a worker
    /// picked it up.
    Dropped,
    /// Malformed request or execution failure.
    Err(String),
    /// Storage I/O failed after the pool's retry budget. Transient by
    /// contract: the frame involved was repaired, so retrying the same
    /// request is safe and succeeds once the device recovers.
    IoError(String),
}

/// Decode failure (maps to an `ERR` reply and connection close).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_SCAN: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_EXEMPLARS: u8 = 0x07;

const ST_OK: u8 = 0x00;
const ST_BUSY: u8 = 0x01;
const ST_DROPPED: u8 = 0x02;
const ST_ERR: u8 = 0x03;
const ST_IO_ERR: u8 = 0x04;

impl Request {
    /// Serialize the body (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Get { page } => {
                let mut b = Vec::with_capacity(9);
                b.push(OP_GET);
                b.extend_from_slice(&page.to_le_bytes());
                b
            }
            Request::Put { page, data } => {
                let mut b = Vec::with_capacity(9 + data.len());
                b.push(OP_PUT);
                b.extend_from_slice(&page.to_le_bytes());
                b.extend_from_slice(data);
                b
            }
            Request::Scan { start, len } => {
                let mut b = Vec::with_capacity(13);
                b.push(OP_SCAN);
                b.extend_from_slice(&start.to_le_bytes());
                b.extend_from_slice(&len.to_le_bytes());
                b
            }
            Request::Stats => vec![OP_STATS],
            Request::Shutdown => vec![OP_SHUTDOWN],
            Request::Metrics => vec![OP_METRICS],
            Request::Exemplars => vec![OP_EXEMPLARS],
        }
    }

    /// The request's opcode byte (also the first byte of
    /// [`encode`](Self::encode)'s output).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Get { .. } => OP_GET,
            Request::Put { .. } => OP_PUT,
            Request::Scan { .. } => OP_SCAN,
            Request::Stats => OP_STATS,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Metrics => OP_METRICS,
            Request::Exemplars => OP_EXEMPLARS,
        }
    }

    /// Parse a body produced by [`encode`](Self::encode).
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let (&op, rest) = body
            .split_first()
            .ok_or_else(|| ProtocolError("empty request".into()))?;
        match op {
            OP_GET => Ok(Request::Get {
                page: read_u64(rest, "GET page")?,
            }),
            OP_PUT => {
                if rest.len() < 8 {
                    return Err(ProtocolError("PUT needs a page id".into()));
                }
                let page = u64::from_le_bytes(rest[..8].try_into().unwrap());
                Ok(Request::Put {
                    page,
                    data: rest[8..].to_vec(),
                })
            }
            OP_SCAN => {
                if rest.len() != 12 {
                    return Err(ProtocolError("SCAN needs start+len".into()));
                }
                let start = u64::from_le_bytes(rest[..8].try_into().unwrap());
                let len = u32::from_le_bytes(rest[8..].try_into().unwrap());
                if len == 0 || len > MAX_SCAN_LEN {
                    return Err(ProtocolError(format!(
                        "SCAN len {len} outside 1..={MAX_SCAN_LEN}"
                    )));
                }
                Ok(Request::Scan { start, len })
            }
            OP_STATS if rest.is_empty() => Ok(Request::Stats),
            OP_SHUTDOWN if rest.is_empty() => Ok(Request::Shutdown),
            OP_METRICS if rest.is_empty() => Ok(Request::Metrics),
            OP_EXEMPLARS if rest.is_empty() => Ok(Request::Exemplars),
            OP_STATS | OP_SHUTDOWN | OP_METRICS | OP_EXEMPLARS => {
                Err(ProtocolError("unexpected payload".into()))
            }
            other => Err(ProtocolError(format!("unknown opcode 0x{other:02x}"))),
        }
    }
}

impl Response {
    /// Serialize the body (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(payload) => {
                let mut b = Vec::with_capacity(1 + payload.len());
                b.push(ST_OK);
                b.extend_from_slice(payload);
                b
            }
            Response::Busy => vec![ST_BUSY],
            Response::Dropped => vec![ST_DROPPED],
            Response::Err(msg) => {
                let mut b = Vec::with_capacity(1 + msg.len());
                b.push(ST_ERR);
                b.extend_from_slice(msg.as_bytes());
                b
            }
            Response::IoError(msg) => {
                let mut b = Vec::with_capacity(1 + msg.len());
                b.push(ST_IO_ERR);
                b.extend_from_slice(msg.as_bytes());
                b
            }
        }
    }

    /// Parse a body produced by [`encode`](Self::encode).
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let (&st, rest) = body
            .split_first()
            .ok_or_else(|| ProtocolError("empty response".into()))?;
        match st {
            ST_OK => Ok(Response::Ok(rest.to_vec())),
            ST_BUSY => Ok(Response::Busy),
            ST_DROPPED => Ok(Response::Dropped),
            ST_ERR => Ok(Response::Err(String::from_utf8_lossy(rest).into_owned())),
            ST_IO_ERR => Ok(Response::IoError(
                String::from_utf8_lossy(rest).into_owned(),
            )),
            other => Err(ProtocolError(format!("unknown status 0x{other:02x}"))),
        }
    }
}

fn read_u64(b: &[u8], what: &str) -> Result<u64, ProtocolError> {
    if b.len() != 8 {
        return Err(ProtocolError(format!(
            "{what}: expected 8 bytes, got {}",
            b.len()
        )));
    }
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

/// Check a frame header's claimed body length before trusting it. Every
/// valid body carries at least an opcode/status byte, so a zero-length
/// frame is as malformed as an oversized one — and rejecting both at
/// the header keeps a garbage 4-byte prefix from ever sizing a server
/// allocation.
pub fn validate_frame_len(len: usize) -> Result<(), ProtocolError> {
    if len == 0 {
        return Err(ProtocolError("zero-length frame".into()));
    }
    if len > MAX_FRAME {
        return Err(ProtocolError(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME} limit"
        )));
    }
    Ok(())
}

/// Write one frame (header + body) and flush.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    write_frame_unflushed(w, body)?;
    w.flush()
}

/// Write one frame without flushing — the pipelined client batches
/// several frames into one kernel write and flushes before reading.
pub fn write_frame_unflushed(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one frame body into `buf`. Returns `Ok(false)` on clean EOF at
/// a frame boundary (peer closed), `Err` on truncation, zero-length, or
/// oversize.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    validate_frame_len(len)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Incremental frame decoder for nonblocking transports.
///
/// A readiness loop gets bytes in whatever fragments the kernel
/// delivers — half a header, three frames and a torn fourth, one byte
/// at a time from a slowloris. [`push`](Self::push) accepts any
/// fragment; [`next_frame`](Self::next_frame) yields complete bodies in
/// order. The length prefix is validated the moment its 4 bytes are
/// present (zero-length and oversized frames are rejected *before* the
/// body is buffered), and a decoder that has reported a protocol error
/// stays poisoned: framing is unrecoverable once the byte stream is
/// suspect, so the connection must be dropped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Parse position within `buf` (consumed bytes are compacted away
    /// frame by frame).
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer a fragment read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet returned as a frame — a torn header
    /// or partially received body.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame body, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// malformed and every later call will keep erring.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError("decoder poisoned by an earlier error".into()));
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        if let Err(e) = validate_frame_len(len) {
            self.poisoned = true;
            self.buf = Vec::new();
            self.pos = 0;
            return Err(e);
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }

    fn compact(&mut self) {
        // Drop consumed bytes once nothing torn straddles them; keeps
        // the buffer from growing with connection lifetime.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// FNV-1a over a byte slice; SCAN replies carry this checksum so clients
/// can verify content without shipping every page back.
pub fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = if init == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        init
    };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Get { page: 7 },
            Request::Put {
                page: u64::MAX,
                data: vec![1, 2, 3],
            },
            Request::Put {
                page: 0,
                data: Vec::new(),
            },
            Request::Scan { start: 10, len: 4 },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::Exemplars,
        ];
        for req in cases {
            assert_eq!(req.encode()[0], req.opcode());
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok(vec![9, 8, 7]),
            Response::Ok(Vec::new()),
            Response::Busy,
            Response::Dropped,
            Response::Err("no such page".into()),
            Response::IoError("injected read fault on page 7".into()),
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_bodies_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Request::decode(&[OP_GET, 1, 2]).is_err());
        assert!(Request::decode(&[OP_SCAN, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(Request::decode(&[OP_STATS, 1]).is_err());
        assert!(Request::decode(&[OP_METRICS, 1]).is_err());
        assert!(Request::decode(&[OP_EXEMPLARS, 1]).is_err());
        assert!(Response::decode(&[0xEE]).is_err());
        // SCAN len over the cap.
        let mut b = vec![OP_SCAN];
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&(MAX_SCAN_LEN + 1).to_le_bytes());
        assert!(Request::decode(&b).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Get { page: 3 }.encode()).unwrap();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(Request::decode(&buf).unwrap(), Request::Get { page: 3 });
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(Request::decode(&buf).unwrap(), Request::Stats);
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversize_frames_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4]).unwrap();
        let mut r = &wire[..wire.len() - 1];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).is_err());

        let mut r = &wire[..2];
        assert!(read_frame(&mut r, &mut buf).is_err());

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        let mut r = &huge[..];
        assert!(read_frame(&mut r, &mut buf).is_err());
    }

    /// Frame `req` onto a wire image.
    fn framed(body: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, body).unwrap();
        wire
    }

    #[test]
    fn decoder_handles_one_byte_at_a_time() {
        let mut wire = framed(&Request::Get { page: 99 }.encode());
        wire.extend(framed(&Request::Scan { start: 5, len: 3 }.encode()));
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            Request::decode(&frames[0]).unwrap(),
            Request::Get { page: 99 }
        );
        assert_eq!(
            Request::decode(&frames[1]).unwrap(),
            Request::Scan { start: 5, len: 3 }
        );
        assert_eq!(dec.buffered(), 0, "nothing torn left behind");
    }

    #[test]
    fn decoder_handles_arbitrary_split_points() {
        // Three frames, split at every possible boundary (header torn,
        // body torn, frames glued) — the decoder must produce the same
        // three bodies regardless of fragmentation.
        let bodies = [
            Request::Put {
                page: 3,
                data: vec![7; 33],
            }
            .encode(),
            Request::Stats.encode(),
            Request::Get { page: 1 }.encode(),
        ];
        let mut wire = Vec::new();
        for b in &bodies {
            wire.extend(framed(b));
        }
        for split in 1..wire.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in [&wire[..split], &wire[split..]] {
                dec.push(chunk);
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got.len(), 3, "split at {split}");
            for (g, want) in got.iter().zip(&bodies) {
                assert_eq!(g, want, "split at {split}");
            }
        }
    }

    #[test]
    fn decoder_rejects_zero_length_and_oversized_headers() {
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        assert!(dec.next_frame().is_err(), "zero-length frame");
        // Poisoned: even a now-valid frame is refused.
        dec.push(&framed(&Request::Stats.encode()));
        assert!(dec.next_frame().is_err(), "decoder must stay poisoned");

        let mut dec = FrameDecoder::new();
        dec.push(&((MAX_FRAME + 1) as u32).to_le_bytes());
        assert!(dec.next_frame().is_err(), "oversized frame");

        // The oversize check must fire from the header alone, before
        // any body bytes arrive (no allocation sized by garbage).
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_waits_on_truncated_body_without_erring() {
        let wire = framed(
            &Request::Put {
                page: 8,
                data: vec![1; 64],
            }
            .encode(),
        );
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..wire.len() - 1]); // all but the last body byte
        assert_eq!(dec.next_frame().unwrap(), None, "mid-body: need more");
        assert_eq!(dec.buffered(), wire.len() - 1);
        dec.push(&wire[wire.len() - 1..]);
        let body = dec.next_frame().unwrap().expect("complete now");
        assert!(matches!(
            Request::decode(&body).unwrap(),
            Request::Put { page: 8, .. }
        ));
    }

    #[test]
    fn decoder_rejects_garbage_after_valid_frames() {
        let mut dec = FrameDecoder::new();
        dec.push(&framed(&Request::Get { page: 2 }.encode()));
        // Garbage "header" claiming an enormous body.
        dec.push(&[0xFF, 0xFF, 0xFF, 0x7F]);
        assert!(dec.next_frame().unwrap().is_some(), "valid frame first");
        assert!(dec.next_frame().is_err(), "then the garbage header");
    }

    #[test]
    fn blocking_read_frame_rejects_zero_length() {
        let wire = 0u32.to_le_bytes();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        let err = read_frame(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fnv_is_stable_and_chains() {
        let a = fnv1a(0, b"hello");
        assert_eq!(a, fnv1a(0, b"hello"));
        assert_ne!(a, fnv1a(0, b"hellp"));
        let chained = fnv1a(fnv1a(0, b"he"), b"llo");
        assert_eq!(chained, a);
    }
}
