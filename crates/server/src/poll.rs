//! Deadline-bounded condition polling for tests.
//!
//! CI machines are slow and noisy: a test that sleeps a fixed interval
//! and then asserts some cross-thread effect has happened is a flake
//! waiting for a loaded runner. These helpers replace every such sleep
//! with "poll the condition until it holds or a generous deadline
//! passes" — fast on a fast machine, correct on a slow one.

use std::time::{Duration, Instant};

/// Poll `cond` until it returns true or `timeout` elapses. Returns
/// whether the condition held. Polls densely (spin + yield) for the
/// first millisecond, then backs off to short sleeps so a long wait
/// does not burn a core.
pub fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if cond() {
            return true;
        }
        if start.elapsed() >= timeout {
            return cond();
        }
        if start.elapsed() < Duration::from_millis(1) {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Like [`poll_until`] but panics with `what` when the deadline passes
/// — for conditions that must eventually hold.
pub fn wait_for(timeout: Duration, what: &str, cond: impl FnMut() -> bool) {
    assert!(
        poll_until(timeout, cond),
        "condition not reached within {timeout:?}: {what}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn immediate_condition_returns_fast() {
        let t0 = Instant::now();
        assert!(poll_until(Duration::from_secs(5), || true));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn deadline_bounds_a_false_condition() {
        let t0 = Instant::now();
        assert!(!poll_until(Duration::from_millis(10), || false));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn observes_cross_thread_effects() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = std::thread::spawn(move || f2.store(true, Ordering::Release));
        wait_for(Duration::from_secs(5), "flag set", || {
            flag.load(Ordering::Acquire)
        });
        t.join().unwrap();
    }
}
