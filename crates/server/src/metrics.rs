//! End-to-end latency observability for the page service.
//!
//! One [`ServerMetrics`] is shared by every connection thread and
//! worker. Latency is measured from *admission* (the connection thread
//! read the full request) to *reply written*, so queueing delay — the
//! thing backpressure policies trade against loss — shows up in the
//! histograms rather than being hidden inside the worker.

use std::sync::Arc;
use std::time::Instant;

use bpw_core::CombiningSnapshot;
use bpw_metrics::{Counter, Gauge, Histogram, JsonObject, LockShardSummary, LockSnapshot};

/// Which histogram a request's latency lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// GET (page read).
    Get,
    /// PUT (page write).
    Put,
    /// SCAN (range read).
    Scan,
}

impl OpKind {
    /// Every kind, in index order.
    pub const ALL: [OpKind; 3] = [OpKind::Get, OpKind::Put, OpKind::Scan];

    /// Dense index (for per-op metric arrays).
    pub fn index(self) -> usize {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::Scan => 2,
        }
    }

    /// Stable lowercase name (JSON key, Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Scan => "scan",
        }
    }
}

/// The pipeline stages a request's end-to-end latency decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parsing the request body out of a complete frame.
    Decode,
    /// Sitting in the admission queue before a worker picked it up.
    QueueWait,
    /// Executing against the buffer pool, *minus* the miss-I/O and
    /// batch-commit time attributed below — a hit's latch-and-go cost.
    PinHit,
    /// Miss-path storage I/O (victim write-back + page read).
    MissIo,
    /// BP-Wrapper batch commits into the replacement policy (only
    /// populated while tracing is on — the commit sits on the hit-only
    /// hot path, where unconditional clocks would break the
    /// disabled-tracing budget).
    BatchCommit,
    /// Writing the reply frame back toward the client (the socket write
    /// under the threaded frontend; frame serialization into the
    /// coalesced write buffer under the event loop).
    ReplyFlush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Decode,
        Stage::QueueWait,
        Stage::PinHit,
        Stage::MissIo,
        Stage::BatchCommit,
        Stage::ReplyFlush,
    ];

    /// Stable snake_case name (JSON key, Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::QueueWait => "queue_wait",
            Stage::PinHit => "pin_hit",
            Stage::MissIo => "miss_io",
            Stage::BatchCommit => "batch_commit",
            Stage::ReplyFlush => "reply_flush",
        }
    }
}

/// Per-stage latency histograms for one opcode.
#[derive(Debug, Default)]
pub struct StageSet {
    hists: [Histogram; 6],
}

impl StageSet {
    /// Record `ns` into `stage`'s histogram.
    pub fn record(&self, stage: Stage, ns: u64) {
        self.hists[stage as usize].record(ns);
    }

    /// The histogram for one stage.
    pub fn get(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Render as `{"decode": {...}, "queue_wait": {...}, ...}` — each
    /// stage with the histogram's derived p50/p95/p99/p999 summary.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        for stage in Stage::ALL {
            o.field_raw(stage.name(), &self.get(stage).to_json());
        }
        o.finish()
    }
}

/// Shared server-side counters and latency histograms.
///
/// All fields are lock-free atomics; cloning the [`Arc`] wrapper is the
/// intended sharing pattern.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// End-to-end GET latency, nanoseconds.
    pub get_ns: Histogram,
    /// End-to-end PUT latency, nanoseconds.
    pub put_ns: Histogram,
    /// End-to-end SCAN latency, nanoseconds.
    pub scan_ns: Histogram,
    /// Time spent queued before a worker picked the request up, ns.
    pub queue_wait_ns: Histogram,
    /// Requests answered `OK`.
    pub ok: Counter,
    /// Requests refused with `BUSY` (shed at admission).
    pub busy: Counter,
    /// Requests answered `DROPPED` (deadline passed in queue).
    pub dropped: Counter,
    /// Requests answered `ERR`.
    pub errors: Counter,
    /// Requests answered `ERR_IO` (storage failed after retries).
    pub io_errors: Counter,
    /// Client connections currently open (both frontends track this;
    /// the peak is the fan-in high-water mark).
    pub connections_open: Gauge,
    /// Event-loop wakeups (`epoll_wait` returns). Zero under the
    /// threaded frontend.
    pub epoll_wakeups: Counter,
    /// Ready fds delivered per wakeup — how much work each syscall
    /// amortizes. Zero-sample under the threaded frontend.
    pub ready_per_wakeup: Histogram,
    /// In-flight pipelined requests on a connection, observed at each
    /// admission. Depth 1 is strict request/reply.
    pub pipeline_depth: Histogram,
    /// Nonblocking writes that accepted only part of the buffer — each
    /// one is a stall a blocking connection thread would have eaten.
    pub short_writes: Counter,
    /// Per-opcode, per-stage latency attribution (indexed by
    /// [`OpKind::index`]).
    pub stages: [StageSet; 3],
    /// Requests whose end-to-end latency exceeded `--slo-us` (or ended
    /// `ERR_IO`), per opcode — the SLO burn rate numerators.
    pub slo_violations: [Counter; 3],
}

impl ServerMetrics {
    /// New, zeroed metrics behind an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a completed request of `kind` that was admitted at
    /// `start`.
    pub fn record_ok(&self, kind: OpKind, start: Instant) {
        let ns = start.elapsed().as_nanos() as u64;
        match kind {
            OpKind::Get => self.get_ns.record(ns),
            OpKind::Put => self.put_ns.record(ns),
            OpKind::Scan => self.scan_ns.record(ns),
        }
        self.ok.incr();
    }

    /// The per-stage histograms for `kind`.
    pub fn stages(&self, kind: OpKind) -> &StageSet {
        &self.stages[kind.index()]
    }

    /// Record one stage sample for `kind`.
    pub fn record_stage(&self, kind: OpKind, stage: Stage, ns: u64) {
        self.stages[kind.index()].record(stage, ns);
    }

    /// Count one SLO violation for `kind`.
    pub fn record_slo_violation(&self, kind: OpKind) {
        self.slo_violations[kind.index()].incr();
    }

    /// Total SLO violations across opcodes.
    pub fn slo_violations_total(&self) -> u64 {
        self.slo_violations.iter().map(Counter::get).sum()
    }

    /// Total requests that received any reply.
    pub fn total(&self) -> u64 {
        self.ok.get()
            + self.busy.get()
            + self.dropped.get()
            + self.errors.get()
            + self.io_errors.get()
    }

    /// Render everything as one JSON object: this struct's live
    /// counters and histograms plus the pool-side scalar aggregation in
    /// `snap` (the seqlock-cached [`StatsSnapshot`], so concurrent
    /// scrapes share one aggregation walk instead of each dragging the
    /// data path's hot counter cache lines). The `trace` sub-object
    /// reports the event-trace collector's health.
    pub fn to_json(&self, snap: &StatsSnapshot) -> String {
        self.to_json_with(snap, None)
    }

    /// [`to_json`](Self::to_json) with an optional pre-rendered
    /// `advisor` sub-object (adaptive-replacement servers attach their
    /// expert scores and swap counters here).
    pub fn to_json_with(&self, snap: &StatsSnapshot, advisor: Option<&str>) -> String {
        let StatsSnapshot {
            pool,
            lock,
            miss_lock,
            miss_locks,
            combining,
            peak_queue_depth,
        } = snap;
        let combining = combining.as_ref();
        let mut trace = JsonObject::new();
        trace
            .field_bool("enabled", bpw_trace::enabled())
            .field_u64("dropped_events", bpw_trace::dropped())
            .field_u64("threads", bpw_trace::thread_count() as u64)
            .field_u64("buffered_events", bpw_trace::buffered() as u64);
        let mut flight = JsonObject::new();
        flight
            .field_u64("slo_ns", bpw_trace::flight::slo_ns())
            .field_u64("captured_total", bpw_trace::flight::captured_total())
            .field_u64("buffered", bpw_trace::flight::exemplars().len() as u64);
        let mut stages = JsonObject::new();
        for kind in OpKind::ALL {
            stages.field_raw(kind.name(), &self.stages(kind).to_json());
        }
        let mut slo = JsonObject::new();
        for kind in OpKind::ALL {
            slo.field_u64(kind.name(), self.slo_violations[kind.index()].get());
        }
        let mut o = JsonObject::new();
        o.field_u64("ok", self.ok.get())
            .field_u64("busy", self.busy.get())
            .field_u64("dropped", self.dropped.get())
            .field_u64("errors", self.errors.get())
            .field_u64("io_errors", self.io_errors.get())
            .field_u64("connections_open", self.connections_open.get())
            .field_u64("connections_peak", self.connections_open.peak())
            .field_u64("epoll_wakeups", self.epoll_wakeups.get())
            .field_u64("short_writes", self.short_writes.get())
            .field_raw("pipeline_depth", &self.pipeline_depth.to_json())
            .field_raw("ready_per_wakeup", &self.ready_per_wakeup.to_json())
            .field_u64("peak_queue_depth", *peak_queue_depth)
            .field_raw("get_ns", &self.get_ns.to_json())
            .field_raw("put_ns", &self.put_ns.to_json())
            .field_raw("scan_ns", &self.scan_ns.to_json())
            .field_raw("queue_wait_ns", &self.queue_wait_ns.to_json())
            .field_u64("pool_hits", pool.hits)
            .field_u64("pool_misses", pool.misses)
            .field_u64("pool_writebacks", pool.writebacks)
            .field_u64("pool_io_retries", pool.io_retries)
            .field_u64("pool_io_errors", pool.io_errors)
            .field_f64("pool_hit_ratio", pool.hit_ratio())
            .field_u64("free_list_steals", pool.free_list_steals)
            .field_u64("free_list_cold_pushes", pool.free_list_cold_pushes)
            .field_u64("pin_cas_retries", pool.pin_cas_retries)
            .field_u64("pin_underflows", pool.pin_underflows)
            .field_u64("page_table_fallback_reads", pool.page_table_fallback_reads)
            .field_raw("replacement_lock", &lock.to_json())
            .field_raw("miss_lock", &miss_lock.to_json())
            .field_raw("miss_locks", &miss_locks.to_json())
            .field_raw("stages", &stages.finish())
            .field_raw("slo_violations", &slo.finish())
            .field_raw("trace", &trace.finish())
            .field_raw("flight", &flight.finish());
        if let Some(c) = combining {
            let mut comb = JsonObject::new();
            comb.field_str("mode", c.mode.name())
                .field_u64("published", c.published)
                .field_u64("publish_fallbacks", c.publish_fallbacks)
                .field_u64("reclaimed", c.reclaimed)
                .field_u64("combined_batches", c.combined_batches)
                .field_u64("combined_entries", c.combined_entries)
                .field_u64("combine_passes", c.combine_passes)
                .field_u64("combine_depth_last", c.combine_depth_last)
                .field_u64("combine_depth_peak", c.combine_depth_peak);
            o.field_raw("combining", &comb.finish());
        }
        if let Some(a) = advisor {
            o.field_raw("advisor", a);
        }
        o.finish()
    }
}

/// A point-in-time copy of the buffer pool's counters (the live struct
/// holds atomics; STATS wants a consistent-enough snapshot by value).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolCounters {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that went to storage.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub writebacks: u64,
    /// Storage operations retried after a transient fault.
    pub io_retries: u64,
    /// Storage operations that failed after exhausting retries.
    pub io_errors: u64,
    /// Free-list pops served by stealing from another stripe.
    pub free_list_steals: u64,
    /// Frames parked on the free list's cold stack by frame repair.
    pub free_list_cold_pushes: u64,
    /// Fast-path pin CAS retries (the packed header's contention
    /// signal: every retry is a concurrent header movement absorbed
    /// without a lock).
    pub pin_cas_retries: u64,
    /// Unpins that found the pin count already at zero (saturated
    /// instead of wrapping — each one is a pin/unpin imbalance bug).
    pub pin_underflows: u64,
    /// Page-table lookups that left the optimistic path and took the
    /// shard lock (torn read or a spilled shard).
    pub page_table_fallback_reads: u64,
}

impl PoolCounters {
    /// Hits over total accesses (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Every pool-side scalar a STATS/METRICS scrape needs, aggregated
/// once and published through a seqlock ([`bpw_metrics::SnapshotCache`])
/// so concurrent scrapes read a *consistent* point-in-time view without
/// touching the data path's counters. `Copy` is what makes the seqlock
/// publication race-safe — a torn copy is discarded, never dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Buffer-pool counters.
    pub pool: PoolCounters,
    /// Replacement-manager lock behaviour.
    pub lock: LockSnapshot,
    /// Aggregate over the pool's per-shard miss locks (legacy
    /// single-lock view).
    pub miss_lock: LockSnapshot,
    /// Shard-aware miss-lock summary.
    pub miss_locks: LockShardSummary,
    /// Combining-commit counters (wrapped managers only).
    pub combining: Option<CombiningSnapshot>,
    /// Admission-queue depth high-water mark.
    pub peak_queue_depth: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_metrics::JsonValue;

    #[test]
    fn stats_json_round_trips_through_the_parser() {
        let m = ServerMetrics::shared();
        m.record_ok(OpKind::Get, Instant::now());
        m.record_ok(OpKind::Put, Instant::now());
        m.busy.incr();
        m.io_errors.incr();
        m.connections_open.incr();
        m.connections_open.incr();
        m.connections_open.decr();
        m.epoll_wakeups.add(7);
        m.ready_per_wakeup.record(3);
        m.pipeline_depth.record(4);
        m.pipeline_depth.record(9);
        m.short_writes.add(2);
        m.record_stage(OpKind::Get, Stage::QueueWait, 1_500);
        m.record_stage(OpKind::Get, Stage::QueueWait, 2_500);
        m.record_stage(OpKind::Get, Stage::PinHit, 800);
        m.record_stage(OpKind::Put, Stage::MissIo, 40_000);
        m.record_slo_violation(OpKind::Get);
        let pool = PoolCounters {
            hits: 90,
            misses: 10,
            writebacks: 3,
            io_retries: 2,
            io_errors: 1,
            free_list_steals: 4,
            free_list_cold_pushes: 2,
            pin_cas_retries: 11,
            pin_underflows: 1,
            page_table_fallback_reads: 6,
        };
        let lock = LockSnapshot::default();
        let miss_lock = LockSnapshot {
            acquisitions: 10,
            ..LockSnapshot::default()
        };
        let miss_locks = LockShardSummary {
            shards: 16,
            total_acquisitions: 10,
            total_contentions: 1,
            total_wait_ns: 300,
            total_hold_ns: 900,
            max_wait_ns: 250,
        };
        let combining = CombiningSnapshot {
            mode: bpw_core::Combining::Flat,
            published: 5,
            publish_fallbacks: 1,
            reclaimed: 2,
            combined_batches: 3,
            combined_entries: 12,
            combine_passes: 4,
            combine_depth_last: 2,
            combine_depth_peak: 3,
        };
        let json = m.to_json(&StatsSnapshot {
            pool,
            lock,
            miss_lock,
            miss_locks,
            combining: Some(combining),
            peak_queue_depth: 17,
        });

        let v = JsonValue::parse(&json).expect("STATS must be valid JSON");
        let comb = v.get("combining").expect("combining sub-object");
        assert_eq!(comb.get("mode").and_then(JsonValue::as_str), Some("flat"));
        assert_eq!(comb.get("published").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(
            comb.get("combine_depth_peak").and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(v.get("busy").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("io_errors").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("pool_io_retries").and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(v.get("pool_io_errors").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("peak_queue_depth").and_then(JsonValue::as_u64),
            Some(17)
        );
        assert_eq!(
            v.get("get_ns")
                .and_then(|g| g.get("count"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        let ratio = v.get("pool_hit_ratio").and_then(JsonValue::as_f64).unwrap();
        assert!((ratio - 0.9).abs() < 1e-12);
        assert!(v
            .get("replacement_lock")
            .and_then(|l| l.get("acquisitions"))
            .is_some());
        assert_eq!(
            v.get("miss_lock")
                .and_then(|l| l.get("acquisitions"))
                .and_then(JsonValue::as_u64),
            Some(10)
        );
        let sharded = v.get("miss_locks").expect("shard-aware miss-lock summary");
        assert_eq!(sharded.get("shards").and_then(JsonValue::as_u64), Some(16));
        assert_eq!(
            sharded
                .get("total_acquisitions")
                .and_then(JsonValue::as_u64),
            Some(10)
        );
        assert_eq!(
            sharded.get("max_wait_ns").and_then(JsonValue::as_u64),
            Some(250)
        );
        assert_eq!(
            v.get("free_list_steals").and_then(JsonValue::as_u64),
            Some(4)
        );
        assert_eq!(
            v.get("free_list_cold_pushes").and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("pin_cas_retries").and_then(JsonValue::as_u64),
            Some(11)
        );
        assert_eq!(v.get("pin_underflows").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("page_table_fallback_reads")
                .and_then(JsonValue::as_u64),
            Some(6)
        );
        // Event-loop observability: gauges, counters, and histograms
        // round-trip with their exact wire names.
        assert_eq!(
            v.get("connections_open").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("connections_peak").and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(v.get("epoll_wakeups").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("short_writes").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            v.get("pipeline_depth")
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert!(
            v.get("pipeline_depth")
                .and_then(|h| h.get("max"))
                .and_then(JsonValue::as_u64)
                .is_some_and(|max| max >= 9),
            "pipeline depth histogram must carry its max: {json}"
        );
        assert_eq!(
            v.get("ready_per_wakeup")
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        let trace = v.get("trace").expect("trace health sub-object");
        assert!(trace.get("enabled").is_some());
        assert!(trace
            .get("dropped_events")
            .and_then(JsonValue::as_u64)
            .is_some());
        // Stage attribution: every op × stage cell is present, and the
        // samples recorded above round-trip with quantile summaries.
        let stages = v.get("stages").expect("per-op stage sub-object");
        for kind in OpKind::ALL {
            let per_op = stages.get(kind.name()).expect("per-op stage set");
            for stage in Stage::ALL {
                assert!(
                    per_op.get(stage.name()).is_some(),
                    "stage {} missing for {}",
                    stage.name(),
                    kind.name()
                );
            }
        }
        let qw = stages
            .get("get")
            .and_then(|s| s.get("queue_wait"))
            .expect("get queue_wait histogram");
        assert_eq!(qw.get("count").and_then(JsonValue::as_u64), Some(2));
        assert!(qw.get("p99").is_some(), "stage summaries carry quantiles");
        let slo = v.get("slo_violations").expect("SLO burn counters");
        assert_eq!(slo.get("get").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(slo.get("put").and_then(JsonValue::as_u64), Some(0));
        let flight = v.get("flight").expect("flight recorder health");
        assert!(flight.get("slo_ns").is_some());
        assert!(flight
            .get("captured_total")
            .and_then(JsonValue::as_u64)
            .is_some());
    }

    #[test]
    fn totals_add_up() {
        let m = ServerMetrics::default();
        m.ok.add(5);
        m.dropped.add(2);
        m.errors.incr();
        m.io_errors.incr();
        assert_eq!(m.total(), 9);
    }
}
