//! # bpw-server
//!
//! A concurrent page-service frontend over the BP-Wrapper buffer pool:
//! a length-prefixed TCP protocol ([`protocol`]), a fixed worker pool
//! fed through an admission-controlled queue ([`backpressure`],
//! [`server`]), a blocking [`client`], a workload-driven load generator
//! ([`loadgen`]), and end-to-end latency observability ([`metrics`]).
//!
//! The paper's claim is about lock contention *inside* the buffer
//! manager; this crate puts a realistic service in front of it so the
//! difference shows up where operators would see it — tail latency and
//! sustained throughput of a network server — rather than only in
//! microbenchmark counters.
//!
//! ```no_run
//! use bpw_server::{Client, LoadConfig, Server, ServerConfig};
//! use bpw_workloads::ZipfWorkload;
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let workload = ZipfWorkload::new(10_000, 0.86, 8);
//! let report = bpw_server::loadgen::run(server.addr(), &workload, &LoadConfig::default());
//! println!("{}", report.summary());
//!
//! let mut c = Client::connect(server.addr()).unwrap();
//! println!("{}", c.stats().unwrap());
//! c.shutdown().unwrap();
//! server.join();
//! ```

pub mod backpressure;
pub mod client;
mod eventloop;
pub mod loadgen;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod server;

pub use backpressure::{AdmissionPolicy, AdmissionQueue, Admitted, Popped, WorkQueue};
pub use bpw_bufferpool::{FaultPlan, FaultyDisk};
pub use client::Client;
pub use loadgen::{LoadConfig, LoadMode, LoadReport};
pub use metrics::{OpKind, PoolCounters, ServerMetrics};
pub use poll::{poll_until, wait_for};
pub use protocol::{Request, Response, MAX_FRAME};
pub use server::{build_manager, build_manager_with, DynPool, FrontendMode, Server, ServerConfig};
