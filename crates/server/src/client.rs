//! A blocking client for the page service: one TCP connection, strict
//! request/reply. Used by the built-in load generator and the tests;
//! also the reference implementation of the client side of the
//! protocol.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{self, Request, Response};

/// One connection to a [`Server`](crate::Server).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
}

impl Client {
    /// Connect, with a bounded connect timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            buf: Vec::new(),
        })
    }

    /// Send `req` and wait for its reply.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        protocol::write_frame(&mut self.writer, &req.encode())?;
        self.read_response()
    }

    /// Send every request back-to-back in one kernel write, then read
    /// the replies — which the server returns strictly in request
    /// order, whichever frontend is serving. One round trip instead of
    /// `reqs.len()`, which is the entire point of pipelining.
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        for req in reqs {
            protocol::write_frame_unflushed(&mut self.writer, &req.encode())?;
        }
        io::Write::flush(&mut self.writer)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.read_response()?);
        }
        Ok(out)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        if !protocol::read_frame(&mut self.reader, &mut self.buf)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(&self.buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Read one page.
    pub fn get(&mut self, page: u64) -> io::Result<Response> {
        self.call(&Request::Get { page })
    }

    /// Write the head of one page.
    pub fn put(&mut self, page: u64, data: Vec<u8>) -> io::Result<Response> {
        self.call(&Request::Put { page, data })
    }

    /// Checksum-scan `len` pages starting at `start`.
    pub fn scan(&mut self, start: u64, len: u32) -> io::Result<Response> {
        self.call(&Request::Scan { start, len })
    }

    /// Fetch the server's metrics JSON.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Ok(bytes) => String::from_utf8(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("STATS answered {other:?}"),
            )),
        }
    }

    /// Fetch the server's metrics as Prometheus-style text exposition.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Ok(bytes) => String::from_utf8(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("METRICS answered {other:?}"),
            )),
        }
    }

    /// Fetch the flight recorder's captured exemplars as Chrome-trace
    /// JSON.
    pub fn exemplars(&mut self) -> io::Result<String> {
        match self.call(&Request::Exemplars)? {
            Response::Ok(bytes) => String::from_utf8(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("EXEMPLARS answered {other:?}"),
            )),
        }
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
