//! End-to-end coverage for `--adaptive` servers: the hot-swap layer is
//! installed, ADVISOR state shows up in STATS and METRICS, policy swaps
//! land under live client traffic on both frontends, and the
//! `InvalidateOutcome::Busy` retry loop converges while swaps are
//! mid-flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bpw_bufferpool::InvalidateOutcome;
use bpw_metrics::JsonValue;
use bpw_server::{build_manager, Client, FrontendMode, Server, ServerConfig};

const FRAMES: usize = 64;
const PAGES: u64 = 256;

fn adaptive_server(mode: FrontendMode) -> Server {
    Server::start(ServerConfig {
        workers: 2,
        frames: FRAMES,
        page_size: 128,
        pages: PAGES,
        manager: "wrapped-2q".into(),
        adaptive: true,
        mode,
        ..ServerConfig::default()
    })
    .expect("start adaptive server")
}

fn adaptive_stats_and_swaps_under_traffic(mode: FrontendMode) {
    let server = adaptive_server(mode);
    let swap = Arc::clone(server.adaptive_swap().expect("adaptive layer installed"));
    assert!(server.pool().manager().name().starts_with("adaptive("));

    let mut client = Client::connect(server.addr()).expect("connect");
    for i in 0..200u64 {
        let resp = client.get(i % 16).expect("GET");
        assert!(matches!(resp, bpw_server::protocol::Response::Ok(_)));
    }

    // Hot-swap twice under continued traffic, exactly as the advisor
    // thread would (through the pool, which freezes residency).
    for (gen, spec) in [(1u64, "wrapped-lirs"), (2u64, "wrapped-lru")] {
        let next = build_manager(spec, FRAMES).expect("build");
        let report = server
            .pool()
            .swap_manager(next)
            .expect("adaptive pools accept swaps");
        assert_eq!(report.generation, gen);
        for i in 0..100u64 {
            let resp = client.get(i % 16).expect("GET after swap");
            assert!(matches!(resp, bpw_server::protocol::Response::Ok(_)));
        }
    }
    assert_eq!(swap.swaps(), 2);
    assert!(
        swap.pages_transferred() > 0,
        "resident state must carry over"
    );

    // STATS carries the advisor object with live expert scores.
    let stats = client.stats().expect("STATS");
    let json = JsonValue::parse(&stats).expect("STATS is valid JSON");
    let advisor = json.get("advisor").expect("advisor sub-object");
    assert_eq!(
        advisor.get("incumbent").and_then(|v| v.as_str()),
        Some("2Q")
    );
    assert_eq!(advisor.get("swaps").and_then(|v| v.as_u64()), Some(2));
    assert!(
        advisor.get("tap_pushed").and_then(|v| v.as_u64()).unwrap() > 0,
        "the fetch path must be feeding the sample tap"
    );
    assert!(advisor.get("experts").is_some());
    // The live inner manager is still a BP-wrapped policy after swaps.
    let live = advisor
        .get("live_manager")
        .and_then(|v| v.as_str())
        .expect("live_manager");
    assert!(
        live.contains("bp-wrapper"),
        "unexpected live manager {live:?}"
    );

    // METRICS exposes the advisor series.
    let metrics = client.metrics().expect("METRICS");
    assert!(metrics.contains("bpw_advisor_swaps_total 2"));
    assert!(metrics.contains("bpw_advisor_expert_ewma_ppm"));

    // Pool conservation after everything: no frame lost to a swap.
    assert_eq!(
        server.pool().free_frames() + server.pool().resident_count(),
        FRAMES
    );
    drop(client);
    server.join();
}

#[test]
fn adaptive_stats_and_swaps_threaded() {
    adaptive_stats_and_swaps_under_traffic(FrontendMode::Threaded);
}

#[test]
fn adaptive_stats_and_swaps_eventloop() {
    adaptive_stats_and_swaps_under_traffic(FrontendMode::EventLoop);
}

/// `InvalidateOutcome::Busy` retry while swaps are mid-flight: the
/// invalidator must see `Busy` for a pinned page (never block forever on
/// the swap), and once the pin is dropped the retry loop must converge
/// to a definitive outcome within a deadline even with back-to-back
/// swaps racing it.
fn busy_invalidate_retry_during_swaps(mode: FrontendMode) {
    let server = adaptive_server(mode);
    const PAGE: u64 = 3;

    // Warm the page in via a client so invalidation has a target.
    let mut client = Client::connect(server.addr()).expect("connect");
    for i in 0..8u64 {
        client.get(i).expect("warm GET");
    }

    // Background swapper: keeps the swap path hot for the whole test.
    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let pool = Arc::clone(server.pool());
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let spec = if n % 2 == 0 {
                    "wrapped-lru"
                } else {
                    "wrapped-2q"
                };
                let next = build_manager(spec, FRAMES).expect("build");
                pool.swap_manager(next).expect("swap");
                n += 1;
            }
            n
        })
    };

    // Pin the page directly, then invalidate: must answer Busy (a
    // retryable outcome), not hang on the in-flight swaps.
    {
        let mut session = server.pool().session();
        let pinned = session.fetch(PAGE).expect("pin");
        let out = server.pool().invalidate(PAGE);
        assert_eq!(out, InvalidateOutcome::Busy);
        assert!(out.is_retryable());
        drop(pinned);
    }

    // Unpinned now: the retry loop converges within the deadline even
    // with swaps still racing.
    let deadline = Instant::now() + Duration::from_secs(10);
    let out = loop {
        let out = server.pool().invalidate(PAGE);
        if !out.is_retryable() {
            break out;
        }
        assert!(
            Instant::now() < deadline,
            "invalidate retry loop did not converge under swap storm"
        );
        std::thread::yield_now();
    };
    assert!(
        matches!(
            out,
            InvalidateOutcome::Invalidated | InvalidateOutcome::NotResident
        ),
        "unexpected terminal outcome {out:?}"
    );

    stop.store(true, Ordering::Relaxed);
    let swaps = swapper.join().expect("swapper");
    assert!(swaps > 0, "no swap ever raced the invalidation; vacuous");
    // Traffic still works after the storm.
    client.get(PAGE).expect("GET after storm");
    assert_eq!(
        server.pool().free_frames() + server.pool().resident_count(),
        FRAMES
    );
    drop(client);
    server.join();
}

#[test]
fn busy_invalidate_retry_during_swaps_threaded() {
    busy_invalidate_retry_during_swaps(FrontendMode::Threaded);
}

#[test]
fn busy_invalidate_retry_during_swaps_eventloop() {
    busy_invalidate_retry_during_swaps(FrontendMode::EventLoop);
}

/// `--adaptive` refuses non-wrapped managers: the advisor can only swap
/// among BP-wrapped policies.
#[test]
fn adaptive_requires_wrapped_manager() {
    let err = Server::start(ServerConfig {
        manager: "clock".into(),
        adaptive: true,
        frames: 16,
        page_size: 64,
        pages: 64,
        ..ServerConfig::default()
    });
    assert!(err.is_err());
}
