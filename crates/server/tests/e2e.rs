//! End-to-end tests: a real server on an ephemeral port, real TCP
//! clients, and the acceptance checks from the issue — zero loss under
//! the block policy, last-write-wins content correctness, and STATS
//! that parse with non-zero tail latencies.
//!
//! Every scenario runs against BOTH frontends (`mod threaded`,
//! `mod eventloop_mode`): the concurrency model is a deployment knob,
//! so the observable protocol behaviour must be identical. The
//! event-loop-specific scenarios (pipelining order, slowloris,
//! mid-request disconnect) also run under both, because the threaded
//! frontend must tolerate pipelined clients even though it never
//! admits more than one request at a time.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bpw_metrics::JsonValue;
use bpw_server::{
    loadgen, AdmissionPolicy, Client, FrontendMode, LoadConfig, LoadMode, Request, Response,
    Server, ServerConfig,
};
use bpw_workloads::{zipf::splitmix64, PageStream, Workload, ZipfWorkload};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: u64 = 12_500; // x8 clients = 100k total
const PAGES: u64 = 1024;
const PAGE_SIZE: usize = 64;

/// The global trace collector is shared by every test in this binary;
/// tests that toggle it must not overlap.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn test_server(policy: AdmissionPolicy, manager: &str, queue: usize, mode: FrontendMode) -> Server {
    Server::start(ServerConfig {
        workers: 4,
        queue_capacity: queue,
        policy,
        frames: 256,
        page_size: PAGE_SIZE,
        pages: PAGES,
        manager: manager.into(),
        mode,
        ..ServerConfig::default()
    })
    .expect("server start")
}

/// The issue's headline test: 8 client threads, 100k Zipf-distributed
/// GET/PUT requests through the block policy. Every request must be
/// answered OK (zero loss), every GET must return exactly the bytes of
/// the last PUT to that page (threads own disjoint page sets, so
/// last-write-wins is deterministic), and the final STATS must parse
/// with a non-zero p99.
fn block_policy_100k_zipf_requests_zero_loss_and_correct_contents(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 128, mode);
    let addr = server.addr();
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    let ok_replies = AtomicU64::new(0);

    std::thread::scope(|sc| {
        for t in 0..CLIENTS {
            let workload = &workload;
            let ok_replies = &ok_replies;
            sc.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut stream = PageStream::for_thread(workload, t, 0xE2E);
                // Thread t owns exactly the pages ≡ t (mod CLIENTS): no
                // cross-thread writes, so expected content is exact.
                let mut written: HashMap<u64, u8> = HashMap::new();
                let mut coin = 0xC01D_u64 ^ t as u64;
                for i in 0..REQUESTS_PER_CLIENT {
                    let raw = stream.next_page();
                    let page = (raw - raw % CLIENTS as u64 + t as u64) % PAGES;
                    coin = splitmix64(coin);
                    if coin % 4 == 0 {
                        // PUT: self-identifying header + a fill byte that
                        // changes every write.
                        let fill = (i % 251) as u8;
                        let mut body = vec![fill; 24];
                        body[..8].copy_from_slice(&page.to_le_bytes());
                        match client.put(page, body).expect("put io") {
                            Response::Ok(_) => {
                                ok_replies.fetch_add(1, Ordering::Relaxed);
                                written.insert(page, fill);
                            }
                            other => panic!("PUT answered {other:?} under block policy"),
                        }
                    } else {
                        match client.get(page).expect("get io") {
                            Response::Ok(bytes) => {
                                ok_replies.fetch_add(1, Ordering::Relaxed);
                                assert_eq!(bytes.len(), PAGE_SIZE);
                                let id = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                                assert_eq!(id, page, "page header corrupted");
                                if let Some(&fill) = written.get(&page) {
                                    assert!(
                                        bytes[8..24].iter().all(|&b| b == fill),
                                        "GET of page {page} did not see the last PUT \
                                         (want fill {fill:#x}, got {:?})",
                                        &bytes[8..24]
                                    );
                                }
                            }
                            other => panic!("GET answered {other:?} under block policy"),
                        }
                    }
                }
            });
        }
    });

    // Zero loss: all 100k requests were answered OK.
    assert_eq!(
        ok_replies.load(Ordering::Relaxed),
        CLIENTS as u64 * REQUESTS_PER_CLIENT
    );

    // STATS parses and shows the traffic with non-zero tail latency.
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let v = JsonValue::parse(&stats).expect("STATS reply must be valid JSON");
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_u64),
        Some(CLIENTS as u64 * REQUESTS_PER_CLIENT),
        "server-side OK count: {stats}"
    );
    assert_eq!(v.get("busy").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(v.get("dropped").and_then(JsonValue::as_u64), Some(0));
    let get_p99 = v
        .get("get_ns")
        .and_then(|h| h.get("p99"))
        .and_then(JsonValue::as_u64)
        .expect("get_ns.p99 present");
    assert!(get_p99 > 0, "p99 must be non-zero: {stats}");
    let put_count = v
        .get("put_ns")
        .and_then(|h| h.get("count"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    let get_count = v
        .get("get_ns")
        .and_then(|h| h.get("count"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert_eq!(get_count + put_count, CLIENTS as u64 * REQUESTS_PER_CLIENT);

    drop(client);
    server.join();
}

/// A zero-millisecond deadline drops every data request at dequeue —
/// and the reply is DROPPED, not a hang or a connection error.
fn zero_deadline_drops_every_request(mode: FrontendMode) {
    let server = test_server(
        AdmissionPolicy::DeadlineDrop(Duration::ZERO),
        "coarse-lru",
        64,
        mode,
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut dropped = 0;
    for page in 0..50u64 {
        match client.get(page).expect("get io") {
            Response::Dropped => dropped += 1,
            Response::Ok(_) => {} // a worker can win the race at 0ns elapsed
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(dropped > 0, "a zero deadline must drop requests");
    let stats = client.stats().expect("stats");
    let v = JsonValue::parse(&stats).unwrap();
    assert_eq!(v.get("dropped").and_then(JsonValue::as_u64), Some(dropped));
    drop(client);
    server.join();
}

/// Under shed, every request is answered either OK or BUSY — nothing is
/// lost silently, and BUSY replies arrive promptly instead of blocking.
fn shed_policy_answers_ok_or_busy(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Shed, "wrapped-lirs", 2, mode);
    let addr = server.addr();
    let ok = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let per_client = 500u64;
    std::thread::scope(|sc| {
        for t in 0..6u64 {
            let (ok, busy) = (&ok, &busy);
            sc.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..per_client {
                    match client.get((t * per_client + i) % PAGES).expect("get io") {
                        Response::Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Response::Busy => busy.fetch_add(1, Ordering::Relaxed),
                        other => panic!("unexpected reply {other:?}"),
                    };
                }
            });
        }
    });
    assert_eq!(
        ok.load(Ordering::Relaxed) + busy.load(Ordering::Relaxed),
        6 * per_client
    );
    server.join();
}

/// SCAN's checksum equals the FNV-1a chain over the same pages fetched
/// one GET at a time.
fn scan_checksum_matches_individual_gets(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "clock", 64, mode);
    let mut client = Client::connect(server.addr()).expect("connect");
    // Dirty a page in the range so the checksum covers written data too.
    let mut body = vec![0xA5u8; 32];
    body[..8].copy_from_slice(&7u64.to_le_bytes());
    assert!(matches!(client.put(7, body).unwrap(), Response::Ok(_)));

    let mut expected = 0u64;
    for page in 4..20u64 {
        match client.get(page).unwrap() {
            Response::Ok(bytes) => expected = bpw_server::protocol::fnv1a(expected, &bytes),
            other => panic!("GET answered {other:?}"),
        }
    }
    match client.scan(4, 16).unwrap() {
        Response::Ok(payload) => {
            assert_eq!(payload.len(), 12);
            let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
            let checksum = u64::from_le_bytes(payload[4..].try_into().unwrap());
            assert_eq!(count, 16);
            assert_eq!(checksum, expected, "SCAN checksum disagrees with GETs");
        }
        other => panic!("SCAN answered {other:?}"),
    }
    drop(client);
    server.join();
}

/// Requests outside the configured page universe get ERR, and the
/// connection stays usable afterwards.
fn out_of_range_requests_error_cleanly(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 64, mode);
    let mut client = Client::connect(server.addr()).expect("connect");
    assert!(matches!(client.get(PAGES).unwrap(), Response::Err(_)));
    assert!(matches!(
        client
            .call(&Request::Scan {
                start: PAGES - 4,
                len: 8
            })
            .unwrap(),
        Response::Err(_)
    ));
    assert!(
        matches!(client.get(0).unwrap(), Response::Ok(_)),
        "connection must survive an ERR"
    );
    drop(client);
    server.join();
}

/// The load generator against a live server: closed-loop requests are
/// all answered under block, and the report's accounting adds up.
fn loadgen_closed_loop_round_trips(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 128, mode);
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    let cfg = LoadConfig {
        connections: 4,
        requests_per_conn: 1000,
        write_fraction: 0.25,
        mode: LoadMode::Closed {
            think: Duration::ZERO,
        },
        ..LoadConfig::default()
    };
    let report = loadgen::run(server.addr(), &workload, &cfg);
    assert_eq!(report.sent, 4000);
    assert_eq!(
        report.ok,
        4000,
        "block policy loses nothing: {}",
        report.summary()
    );
    assert_eq!(report.latency_ns.count(), 4000);
    assert!(report.throughput() > 0.0);
    assert!(report.latency_ns.quantile(0.99) > 0);
    server.join();
}

/// Open-loop pacing sends the full schedule even when the rate is
/// higher than the server can absorb, and measures from intended
/// arrival (latency >= actual service time).
fn loadgen_open_loop_sends_full_schedule(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "coarse-2q", 64, mode);
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    let cfg = LoadConfig {
        connections: 2,
        requests_per_conn: 300,
        write_fraction: 0.0,
        mode: LoadMode::Open {
            rate_per_sec: 5000.0,
        },
        ..LoadConfig::default()
    };
    let report = loadgen::run(server.addr(), &workload, &cfg);
    assert_eq!(report.sent, 600);
    assert_eq!(report.ok, 600);
    server.join();
}

/// A client SHUTDOWN request stops the acceptor: the running server
/// answers OK, then refuses (or never accepts) new connections.
fn client_shutdown_request_stops_accepting(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 64, mode);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(client.shutdown().unwrap(), Response::Ok(_)));
    assert!(server.stop_requested());
    drop(client);
    server.join();
    // The listener is gone: fresh connects must start failing. The OS
    // may briefly accept into a dying socket's backlog, so poll the
    // condition with a deadline instead of betting on one attempt.
    assert!(
        bpw_server::poll_until(Duration::from_secs(5), || {
            std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
        }),
        "listener should be closed after join"
    );
}

/// METRICS returns a well-formed Prometheus-style exposition covering
/// request counters, both instrumented locks, the event-loop series,
/// and the trace collector's health; STATS carries the matching JSON
/// sub-objects.
fn metrics_exposition_and_enriched_stats(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 64, mode);
    let mut client = Client::connect(server.addr()).expect("connect");
    for page in 0..64u64 {
        assert!(matches!(client.get(page).unwrap(), Response::Ok(_)));
    }

    let text = client.metrics().expect("METRICS reply");
    let samples = bpw_trace::validate_exposition(&text).expect("well-formed exposition");
    assert!(samples >= 20, "only {samples} samples:\n{text}");
    assert!(text.contains("bpw_requests_total{status=\"ok\"}"));
    assert!(text.contains("bpw_get_latency_ns_count"));
    assert!(text.contains("bpw_lock_acquisitions_total{lock=\"replacement\"}"));
    assert!(text.contains("bpw_lock_acquisitions_total{lock=\"miss\"}"));
    assert!(text.contains("bpw_miss_shard_acquisitions_total{shard=\"0\"}"));
    assert!(text.contains("bpw_miss_lock_shards"));
    assert!(text.contains("bpw_free_list_steals_total"));
    assert!(text.contains("bpw_trace_dropped_events_total"));
    // Event-loop observability is always exposed (zero-valued under the
    // threaded frontend) so dashboards don't need mode-aware queries.
    assert!(text.contains("bpw_connections_open"));
    assert!(text.contains("bpw_epoll_wakeups_total"));
    assert!(text.contains("bpw_short_writes_total"));
    assert!(text.contains("bpw_pipeline_depth_count"));
    assert!(text.contains("bpw_ready_events_per_wakeup_count"));
    // Stage attribution, SLO burn, per-ring drop, and flight-recorder
    // series are always exposed (zero-valued while unarmed).
    assert!(text.contains("bpw_stage_latency_ns_count{op=\"get\",stage=\"queue_wait\"}"));
    assert!(text.contains("bpw_stage_latency_ns_count{op=\"get\",stage=\"pin_hit\"}"));
    assert!(text.contains("bpw_slo_violations_total{op=\"get\"}"));
    assert!(text.contains("bpw_trace_ring_dropped_events_total"));
    assert!(text.contains("bpw_exemplars_captured_total"));
    assert!(text.contains("bpw_flight_slo_ns"));

    let stats = client.stats().expect("STATS reply");
    let v = JsonValue::parse(&stats).expect("STATS JSON");
    assert!(
        v.get("miss_lock")
            .and_then(|l| l.get("acquisitions"))
            .and_then(JsonValue::as_u64)
            .is_some_and(|a| a >= 1),
        "64 cold fetches must acquire the miss lock: {stats}"
    );
    let shards = v.get("miss_locks").expect("shard-aware miss-lock summary");
    assert!(
        shards
            .get("shards")
            .and_then(JsonValue::as_u64)
            .is_some_and(|s| s >= 2),
        "default pool must partition the miss path: {stats}"
    );
    // The aggregate view and the shard summary must agree.
    assert_eq!(
        shards.get("total_acquisitions").and_then(JsonValue::as_u64),
        v.get("miss_lock")
            .and_then(|l| l.get("acquisitions"))
            .and_then(JsonValue::as_u64),
    );
    assert!(v.get("free_list_steals").is_some());
    assert!(v.get("trace").and_then(|t| t.get("enabled")).is_some());
    // Stage histograms in STATS: the 64 GETs above must have left
    // samples (with quantile summaries) in every always-on stage.
    let get_stages = v
        .get("stages")
        .and_then(|s| s.get("get"))
        .expect("per-op stage sub-object");
    for stage in ["decode", "queue_wait", "pin_hit", "reply_flush"] {
        assert!(
            get_stages
                .get(stage)
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64)
                .is_some_and(|c| c >= 64),
            "stage {stage} must have a sample per GET: {stats}"
        );
    }
    assert!(
        get_stages
            .get("queue_wait")
            .and_then(|h| h.get("p999"))
            .is_some(),
        "stage summaries carry p999: {stats}"
    );
    // 64 cold fetches must attribute some miss I/O.
    assert!(
        get_stages
            .get("miss_io")
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_u64)
            .is_some_and(|c| c >= 1),
        "cold GETs must land miss_io samples: {stats}"
    );
    // Presence only: the recorder is process-global, so another test
    // may have it armed while this server replies.
    assert!(
        v.get("slo_violations")
            .and_then(|s| s.get("get"))
            .and_then(JsonValue::as_u64)
            .is_some(),
        "SLO burn counters must be present: {stats}"
    );
    assert!(v.get("flight").and_then(|f| f.get("slo_ns")).is_some());
    // Connection gauge: this client is the open connection.
    assert!(
        v.get("connections_open")
            .and_then(JsonValue::as_u64)
            .is_some_and(|c| c >= 1),
        "the asking client must be counted open: {stats}"
    );
    if mode == FrontendMode::EventLoop {
        assert!(
            v.get("epoll_wakeups")
                .and_then(JsonValue::as_u64)
                .is_some_and(|w| w > 0),
            "the loop must have woken for this traffic: {stats}"
        );
        assert!(
            v.get("pipeline_depth")
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64)
                .is_some_and(|c| c > 0),
            "every admitted request observes pipeline depth: {stats}"
        );
    }

    drop(client);
    server.join();
}

/// A server with combining commit enabled serves the same traffic
/// correctly: combining changes how batches reach the policy under
/// contention, never what data clients see.
fn combining_server_serves_correct_data(mode: FrontendMode) {
    let server = Server::start(ServerConfig {
        workers: 4,
        queue_capacity: 128,
        policy: AdmissionPolicy::Block,
        frames: 128,
        page_size: PAGE_SIZE,
        pages: PAGES,
        manager: "wrapped-lirs".into(),
        combining: bpw_core::Combining::Flat,
        mode,
        ..ServerConfig::default()
    })
    .expect("combining server start");
    let addr = server.addr();
    std::thread::scope(|sc| {
        for t in 0..4u64 {
            sc.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut x = splitmix64(t ^ 0xC0B1);
                for _ in 0..2_000u32 {
                    x = splitmix64(x);
                    let page = x % PAGES;
                    match client.get(page).expect("transport") {
                        Response::Ok(body) => {
                            assert_eq!(
                                u64::from_le_bytes(body[..8].try_into().unwrap()),
                                page,
                                "combining served wrong bytes"
                            );
                        }
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
            });
        }
    });
    let stats = server.stats_json();
    let v = JsonValue::parse(&stats).expect("STATS JSON");
    assert!(
        v.get("ok")
            .and_then(JsonValue::as_u64)
            .is_some_and(|ok| ok == 4 * 2_000),
        "all requests must be OK: {stats}"
    );
    server.join();
}

/// With tracing enabled, a served request leaves enqueue/dequeue/reply
/// events in the collector — and, under the event loop, wakeup spans.
fn traced_requests_leave_server_events(mode: FrontendMode) {
    use bpw_trace::EventKind;

    let _gate = TRACE_GATE.lock().unwrap();
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 64, mode);
    let mut client = Client::connect(server.addr()).expect("connect");
    bpw_trace::clear();
    bpw_trace::set_enabled(true);
    for page in 0..32u64 {
        assert!(matches!(client.get(page).unwrap(), Response::Ok(_)));
    }
    bpw_trace::set_enabled(false);
    let events = bpw_trace::drain();
    let mut want = vec![
        EventKind::ServerEnqueue,
        EventKind::ServerDequeue,
        EventKind::ServerReply,
    ];
    if mode == FrontendMode::EventLoop {
        want.push(EventKind::EpollWakeup);
    }
    for kind in want {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no {kind:?} event among {} drained",
            events.len()
        );
    }
    drop(client);
    server.join();
}

/// The flight-recorder acceptance check: a server armed with a 1us SLO
/// treats every request as a violation; `EXEMPLARS` must return valid
/// Chrome-trace JSON in which at least one captured request id owns the
/// full causal chain — queue wait (`server_dequeue`), `pin_or_miss`,
/// and `server_reply` — and STATS must burn the matching SLO counters.
fn flight_recorder_captures_slow_request_span_chains(mode: FrontendMode) {
    let _gate = TRACE_GATE.lock().unwrap();
    bpw_trace::clear();
    bpw_trace::flight::clear();
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        policy: AdmissionPolicy::Block,
        frames: 64,
        page_size: PAGE_SIZE,
        pages: PAGES,
        manager: "wrapped-2q".into(),
        mode,
        slo_us: Some(1),
        ..ServerConfig::default()
    })
    .expect("server start");
    let mut client = Client::connect(server.addr()).expect("connect");
    for page in 0..32u64 {
        assert!(matches!(client.get(page).unwrap(), Response::Ok(_)));
    }

    let json = client.exemplars().expect("EXEMPLARS reply");
    let v = JsonValue::parse(&json).expect("EXEMPLARS must be valid JSON");
    let Some(JsonValue::Arr(events)) = v.get("traceEvents") else {
        panic!("EXEMPLARS lacks a traceEvents array: {json}");
    };
    assert!(!events.is_empty(), "armed recorder captured no spans");
    // Chrome-trace validity + request attribution: every event carries
    // name/ph/ts and a non-zero args.req stamp.
    let mut chains: HashMap<u64, Vec<String>> = HashMap::new();
    for e in events {
        assert!(
            e.get("ph").is_some() && e.get("ts").is_some(),
            "malformed trace event: {json}"
        );
        let req = e
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(JsonValue::as_u64)
            .expect("every exemplar event must carry args.req");
        assert!(req > 0, "request ids start at 1");
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .expect("event name")
            .to_string();
        chains.entry(req).or_default().push(name);
    }
    assert!(
        chains.values().any(|names| {
            ["server_dequeue", "pin_or_miss", "server_reply"]
                .iter()
                .all(|want| names.iter().any(|n| n == want))
        }),
        "no request id owns the full queue-wait + pin-or-miss + reply chain: {chains:?}"
    );
    let index = v
        .get("otherData")
        .and_then(|o| o.get("exemplars"))
        .expect("exemplar index");
    let JsonValue::Arr(index) = index else {
        panic!("exemplar index must be an array: {json}")
    };
    assert!(!index.is_empty());
    assert!(index.iter().all(|ex| ex
        .get("request_id")
        .and_then(JsonValue::as_u64)
        .is_some_and(|r| r > 0)));

    // STATS agrees: every OK GET blew the 1us budget.
    let stats = client.stats().expect("stats");
    let sv = JsonValue::parse(&stats).unwrap();
    assert!(
        sv.get("slo_violations")
            .and_then(|s| s.get("get"))
            .and_then(JsonValue::as_u64)
            .is_some_and(|n| n >= 32),
        "every GET must burn the 1us SLO: {stats}"
    );
    assert!(
        sv.get("flight")
            .and_then(|f| f.get("captured_total"))
            .and_then(JsonValue::as_u64)
            .is_some_and(|n| n >= 32),
        "every violation must be captured: {stats}"
    );

    // METRICS exposes the burn and capture counters.
    let text = client.metrics().expect("metrics");
    assert!(text.contains("bpw_exemplars_captured_total"));
    assert!(text.contains("bpw_slo_violations_total{op=\"get\"}"));

    drop(client);
    server.join();
    // join() disarms the recorder and disables tracing; leave no
    // exemplars behind for other tests either.
    bpw_trace::flight::clear();
    bpw_trace::clear();
    assert_eq!(bpw_trace::flight::slo_ns(), 0, "join must disarm");
}

/// Pipelined requests on one connection: the responses come back
/// strictly in request order, with contents matching request-by-request
/// expectations — even when the batch mixes PUT, GET, SCAN, and STATS.
fn pipelined_responses_arrive_in_request_order(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 128, mode);
    let mut client = Client::connect(server.addr()).expect("connect");

    // Batch 1: tag 16 pages with distinct fills.
    let puts: Vec<Request> = (0..16u64)
        .map(|p| {
            let mut data = vec![p as u8 + 1; 24];
            data[..8].copy_from_slice(&p.to_le_bytes());
            Request::Put { page: p, data }
        })
        .collect();
    for resp in client.call_pipelined(&puts).expect("pipelined PUTs") {
        assert!(matches!(resp, Response::Ok(_)));
    }

    // Batch 2: read them back interleaved with control and range ops.
    let mut reqs = Vec::new();
    for p in 0..16u64 {
        reqs.push(Request::Get { page: p });
        if p == 7 {
            reqs.push(Request::Stats);
            reqs.push(Request::Scan { start: 0, len: 8 });
        }
    }
    let resps = client.call_pipelined(&reqs).expect("pipelined mixed batch");
    assert_eq!(resps.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&resps) {
        match (req, resp) {
            (Request::Get { page }, Response::Ok(body)) => {
                assert_eq!(
                    u64::from_le_bytes(body[..8].try_into().unwrap()),
                    *page,
                    "response out of order: GET {page} got another page's bytes"
                );
                assert!(
                    body[8..24].iter().all(|&b| b == *page as u8 + 1),
                    "GET {page} does not carry its own PUT's fill"
                );
            }
            (Request::Stats, Response::Ok(body)) => {
                let json = String::from_utf8(body.clone()).expect("UTF-8 STATS");
                JsonValue::parse(&json).expect("STATS JSON mid-pipeline");
            }
            (Request::Scan { .. }, Response::Ok(payload)) => {
                assert_eq!(payload.len(), 12);
            }
            (req, resp) => panic!("{req:?} answered {resp:?}"),
        }
    }

    // A pipelined loadgen run over several connections agrees.
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    let report = loadgen::run(
        server.addr(),
        &workload,
        &LoadConfig {
            connections: 4,
            requests_per_conn: 1_024,
            write_fraction: 0.2,
            pipeline: 16,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.sent, 4 * 1_024);
    assert_eq!(report.ok, 4 * 1_024, "{}", report.summary());

    drop(client);
    server.join();
}

/// Slowloris: a client dribbling a valid request one byte at a time
/// must (a) eventually get the right answer and (b) never stall other
/// clients — the whole point of readiness-based multiplexing.
fn slowloris_client_cannot_stall_others(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 64, mode);
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut stream =
            std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).ok();
        let body = Request::Get { page: 3 }.encode();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        for &b in &wire {
            stream.write_all(&[b]).expect("dribble");
            stream.flush().ok();
            std::thread::sleep(Duration::from_millis(5));
        }
        // The torn frame is finally whole; the reply must arrive.
        let mut reader = std::io::BufReader::new(stream);
        let mut buf = Vec::new();
        assert!(bpw_server::protocol::read_frame(&mut reader, &mut buf).expect("reply frame"));
        match Response::decode(&buf).expect("decode") {
            Response::Ok(bytes) => {
                assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 3);
            }
            other => panic!("slowloris GET answered {other:?}"),
        }
    });

    // While the slow client dribbles (~65 wakeups worth), fast clients
    // must make normal progress.
    let mut fast = Client::connect(addr).expect("fast connect");
    let fast_started = std::time::Instant::now();
    for page in 0..100u64 {
        assert!(matches!(fast.get(page % PAGES).unwrap(), Response::Ok(_)));
    }
    assert!(
        fast_started.elapsed() < Duration::from_secs(2),
        "fast client starved behind a slowloris: {:?}",
        fast_started.elapsed()
    );

    slow.join().expect("slow client");
    drop(fast);
    server.join();
}

/// A client that sends requests and vanishes mid-flight: the worker
/// pool must finish (or discard) the orphaned work without leaking, the
/// pool's frame accounting must return to exact, and new clients must
/// be served as if nothing happened.
fn mid_request_disconnect_leaks_nothing(mode: FrontendMode) {
    let server = test_server(AdmissionPolicy::Block, "wrapped-2q", 128, mode);
    let addr = server.addr();

    for round in 0..8u64 {
        let mut stream =
            std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream.set_nodelay(true).ok();
        // A burst of expensive SCANs plus a torn trailing frame, then
        // vanish without reading a single reply.
        let mut wire = Vec::new();
        for _ in 0..8 {
            let body = Request::Scan {
                start: round * 64,
                len: 64,
            }
            .encode();
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(&body);
        }
        wire.extend_from_slice(&[0x40, 0, 0, 0, 0xFF]); // torn frame: header + 1 of 64 bytes
        stream.write_all(&wire).expect("burst");
        drop(stream); // RST/EOF while up to 8 requests are in flight
    }

    // The server must still answer promptly on a fresh connection.
    let mut client = Client::connect(addr).expect("connect after disconnects");
    for page in 0..32u64 {
        assert!(matches!(client.get(page).unwrap(), Response::Ok(_)));
    }

    // Every orphaned request eventually drains and unpins its frames:
    // free + resident returns to the exact frame count.
    let pool = server.pool().clone();
    let frames = pool.frames();
    assert!(
        bpw_server::poll_until(Duration::from_secs(10), || {
            pool.free_frames() + pool.resident_count() == frames
        }),
        "orphaned requests left frames pinned: {} free + {} resident != {frames}",
        pool.free_frames(),
        pool.resident_count(),
    );

    drop(client);
    server.join();
}

/// Dimension check promised by the workload contract: every generated
/// page id stays inside the universe the server was configured with.
#[test]
fn workload_pages_fit_the_server_universe() {
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    assert!(workload.page_universe() <= PAGES);
    let mut stream = PageStream::for_thread(&workload, 0, 1);
    for _ in 0..10_000 {
        assert!(stream.next_page() < PAGES);
    }
}

macro_rules! both_frontends {
    ($($name:ident),* $(,)?) => {
        mod threaded {
            use super::*;
            $(#[test]
            fn $name() {
                super::$name(FrontendMode::Threaded);
            })*
        }
        mod eventloop_mode {
            use super::*;
            $(#[test]
            fn $name() {
                super::$name(FrontendMode::EventLoop);
            })*
        }
    };
}

both_frontends!(
    block_policy_100k_zipf_requests_zero_loss_and_correct_contents,
    zero_deadline_drops_every_request,
    shed_policy_answers_ok_or_busy,
    scan_checksum_matches_individual_gets,
    out_of_range_requests_error_cleanly,
    loadgen_closed_loop_round_trips,
    loadgen_open_loop_sends_full_schedule,
    client_shutdown_request_stops_accepting,
    metrics_exposition_and_enriched_stats,
    combining_server_serves_correct_data,
    traced_requests_leave_server_events,
    flight_recorder_captures_slow_request_span_chains,
    pipelined_responses_arrive_in_request_order,
    slowloris_client_cannot_stall_others,
    mid_request_disconnect_leaks_nothing,
);
