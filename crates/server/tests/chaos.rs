//! Chaos end-to-end test: the page service running against a disk that
//! injects transient faults, persistently broken pages, and latency
//! spikes — concurrently, under load.
//!
//! What must hold, per ISSUE 3's acceptance criteria:
//!
//! 1. **No wrong bytes.** Every GET either returns the page's correct
//!    self-identifying contents (first 8 bytes are the page id) or an
//!    explicit `ERR_IO`; a fault must never surface as silently
//!    corrupted data.
//! 2. **No stuck frames.** After the run, every frame is either free or
//!    resident: `free_frames + resident_count == frames`. A failed I/O
//!    must not leave a frame wedged with `io_in_progress` set.
//! 3. **Full recovery.** Once faults are cleared, every page — including
//!    the ones that were persistently broken — fetches successfully.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bpw_metrics::JsonValue;
use bpw_server::{loadgen, Client, FaultPlan, FrontendMode, Server, ServerConfig};
use bpw_workloads::{zipf::splitmix64, PageStream, ZipfWorkload};

const PAGES: u64 = 1024;
const FRAMES: usize = 128;
const PAGE_SIZE: usize = 256;

fn chaos_server(mode: FrontendMode) -> Server {
    Server::start(ServerConfig {
        workers: 4,
        frames: FRAMES,
        page_size: PAGE_SIZE,
        pages: PAGES,
        mode,
        fault_plan: Some(FaultPlan {
            seed: 0xC4A0_5EED,
            // A steady drizzle of transient faults: 5% of reads, 2% of
            // writes, plus occasional latency spikes. High enough that a
            // run of a few thousand requests injects hundreds of faults,
            // low enough that retries usually succeed.
            read_fail_ppm: 50_000,
            write_fail_ppm: 20_000,
            spike_ppm: 10_000,
            spike: Duration::from_micros(200),
            ..FaultPlan::default()
        }),
        ..ServerConfig::default()
    })
    .expect("start chaos server")
}

/// The invariant at the heart of frame repair: no frame may be lost to
/// a failed I/O. Either it went back to the free list or it holds a
/// resident page.
fn assert_no_stuck_frames(server: &Server) {
    let free = server.pool().free_frames();
    let resident = server.pool().resident_count();
    assert_eq!(
        free + resident,
        FRAMES,
        "stuck frame: {free} free + {resident} resident != {FRAMES} frames"
    );
}

fn chaos_run_returns_correct_bytes_or_err_io_and_recovers(mode: FrontendMode) {
    let server = chaos_server(mode);
    let addr = server.addr();
    let disk = server
        .faulty_disk()
        .expect("fault plan must install a FaultyDisk")
        .clone();
    // Two pages are persistently broken from the start — reads on one,
    // writes on the other — on top of the probabilistic drizzle.
    disk.break_page_reads(7);
    disk.break_page_writes(11);

    let wrong_bytes = AtomicU64::new(0);
    let io_errors = AtomicU64::new(0);
    let oks = AtomicU64::new(0);
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);

    std::thread::scope(|sc| {
        for t in 0..4usize {
            let workload = &workload;
            let wrong_bytes = &wrong_bytes;
            let io_errors = &io_errors;
            let oks = &oks;
            sc.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut stream = PageStream::for_thread(workload, t, 0xC4A0);
                let mut coin = splitmix64(t as u64 ^ 0xD15C);
                for _ in 0..1500u32 {
                    let page = stream.next_page();
                    coin = splitmix64(coin);
                    // ~10% PUTs with self-identifying payloads, so reads
                    // can always verify the first 8 bytes.
                    let resp = if coin % 10 == 0 {
                        client.put(page, loadgen::put_payload(page, 32, 0xC4A0))
                    } else {
                        client.get(page)
                    };
                    match resp.expect("transport must survive chaos") {
                        bpw_server::Response::Ok(body) => {
                            oks.fetch_add(1, Ordering::Relaxed);
                            if body.len() >= 8 {
                                let id = u64::from_le_bytes(body[..8].try_into().unwrap());
                                if id != page {
                                    wrong_bytes.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        bpw_server::Response::IoError(_) => {
                            io_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected reply under chaos: {other:?}"),
                    }
                }
            });
        }
    });

    // Criterion 1: a fault never surfaces as wrong data.
    assert_eq!(
        wrong_bytes.load(Ordering::Relaxed),
        0,
        "GETs must return correct bytes or ERR_IO, never corruption"
    );
    assert!(
        oks.load(Ordering::Relaxed) > 0,
        "some requests must succeed"
    );
    // The persistently broken page guarantees at least one ERR_IO
    // reached a client (page 7 is hot under Zipf 0.86).
    assert!(
        io_errors.load(Ordering::Relaxed) > 0,
        "broken page 7 must have surfaced at least one ERR_IO"
    );
    // The drizzle plus retry budget guarantees retries happened.
    let stats = server.pool().stats();
    assert!(
        stats.io_retries.load(Ordering::Relaxed) > 0,
        "transient faults must have been retried"
    );
    assert!(
        stats.io_errors.load(Ordering::Relaxed) > 0,
        "exhausted retries must be counted"
    );

    // Every failed fetch routed its repaired frame to the free list's
    // cold stack — persistently broken page 7 (hot under Zipf) must not
    // monopolize a single frame by getting its last frame right back.
    assert!(
        server.pool().free_list_cold_pushes() >= 2,
        "repeated failures on page 7 must park frames cold (got {})",
        server.pool().free_list_cold_pushes()
    );

    // Criterion 2: no frame was wedged by any of the injected failures.
    assert_no_stuck_frames(&server);

    // Criterion 3: once faults clear, everything recovers — including
    // the pages that were persistently broken moments ago.
    disk.clear_faults();
    let mut client = Client::connect(addr).expect("connect for recovery sweep");
    for page in [7u64, 11, 0, 1, 2, 3, 500, PAGES - 1] {
        match client.get(page).expect("transport") {
            bpw_server::Response::Ok(body) => {
                let id = u64::from_le_bytes(body[..8].try_into().unwrap());
                assert_eq!(id, page, "recovered read must be correct");
            }
            other => panic!("page {page} must recover after clear_faults: {other:?}"),
        }
    }
    assert_no_stuck_frames(&server);

    client.shutdown().expect("shutdown");
    drop(client); // close the socket so join() can reap its connection thread
    server.join();
    // Deadline-bounded check (not a single racy attempt): the listener
    // must stop accepting once join returns.
    assert!(
        bpw_server::poll_until(Duration::from_secs(5), || {
            std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
        }),
        "listener should be closed after join"
    );
}

fn chaos_loadgen_accounting_stays_exact_under_faults(mode: FrontendMode) {
    // The load generator's books must balance even when some replies are
    // ERR_IO: every request lands in exactly one tally bucket. Under the
    // event loop the clients also pipeline, so ERR_IO replies interleave
    // with OKs inside a batch and must still sequence correctly.
    let server = chaos_server(mode);
    let cfg = bpw_server::LoadConfig {
        connections: 4,
        requests_per_conn: 1000,
        write_fraction: 0.2,
        pipeline: if mode == FrontendMode::EventLoop {
            8
        } else {
            1
        },
        ..bpw_server::LoadConfig::default()
    };
    let workload = ZipfWorkload::new(PAGES, 0.86, 8);
    let report = loadgen::run(server.addr(), &workload, &cfg);
    assert_eq!(report.sent, 4 * 1000, "sent must equal the intended total");
    assert_eq!(
        report.ok + report.busy + report.dropped + report.errors + report.io_errors,
        report.sent,
        "every request lands in exactly one bucket"
    );
    assert_no_stuck_frames(&server);
    server.join();
}

/// Flight-recorder fault capture (ISSUE 7): a request that ends in
/// `ERR_IO` must be captured as an exemplar even when its latency is
/// nowhere near the SLO. The server is armed with an hour-long budget
/// so elapsed time can never trigger a capture — only the error path
/// can — and a persistently broken page guarantees one happens.
fn flight_recorder_captures_err_io_exemplars(mode: FrontendMode) {
    // The flight recorder is process-global: serialize the two frontend
    // instances of this test so one's join() (which disarms) cannot
    // race the other's capture window.
    static FLIGHT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _gate = FLIGHT_GATE.lock().unwrap();
    bpw_trace::flight::clear();
    let server = Server::start(ServerConfig {
        workers: 2,
        frames: FRAMES,
        page_size: PAGE_SIZE,
        pages: PAGES,
        mode,
        // One hour in microseconds: no request can exceed it, so every
        // capture below is attributable to ERR_IO alone.
        slo_us: Some(3_600_000_000),
        fault_plan: Some(FaultPlan {
            seed: 0xF117_0E2A,
            ..FaultPlan::default()
        }),
        ..ServerConfig::default()
    })
    .expect("start armed chaos server");
    let disk = server
        .faulty_disk()
        .expect("fault plan must install a FaultyDisk")
        .clone();
    disk.break_page_reads(7);

    let mut client = Client::connect(server.addr()).expect("connect");
    // Healthy requests first: none may trip the hour-long budget.
    for page in [1u64, 2, 3, 4] {
        assert!(matches!(
            client.get(page).expect("transport"),
            bpw_server::Response::Ok(_)
        ));
    }
    match client.get(7).expect("transport") {
        bpw_server::Response::IoError(_) => {}
        other => panic!("broken page 7 must return ERR_IO, got {other:?}"),
    }

    let json = client.exemplars().expect("EXEMPLARS reply");
    let v = JsonValue::parse(&json).expect("EXEMPLARS must be valid JSON");
    let index = v
        .get("otherData")
        .and_then(|o| o.get("exemplars"))
        .expect("exemplar index");
    let JsonValue::Arr(index) = index else {
        panic!("exemplar index must be an array: {json}")
    };
    // Every capture while armed with an hour budget is an ERR_IO one —
    // including any from chaos tests running concurrently in this
    // binary — and ours must be among them: a GET (opcode 1) with
    // status 4 whose span chain was snapshotted.
    assert!(!index.is_empty(), "ERR_IO must capture an exemplar");
    for ex in index.iter() {
        assert_eq!(
            ex.get("status").and_then(JsonValue::as_u64),
            Some(4),
            "hour-long SLO means only ERR_IO may capture: {json}"
        );
    }
    let ours = index
        .iter()
        .find(|ex| {
            ex.get("opcode").and_then(JsonValue::as_u64) == Some(1)
                && ex.get("events").and_then(JsonValue::as_u64).unwrap_or(0) >= 1
        })
        .unwrap_or_else(|| panic!("no GET exemplar with a span chain: {json}"));
    let req = ours
        .get("request_id")
        .and_then(JsonValue::as_u64)
        .expect("exemplar carries its request id");
    assert!(req > 0, "request ids start at 1");
    // The captured chain must include the reply span stamped with the
    // failing request's id.
    let Some(JsonValue::Arr(events)) = v.get("traceEvents") else {
        panic!("EXEMPLARS lacks a traceEvents array: {json}");
    };
    assert!(
        events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("req"))
                .and_then(JsonValue::as_u64)
                == Some(req)
                && e.get("name").and_then(JsonValue::as_str) == Some("server_reply")
        }),
        "ERR_IO exemplar {req} must include its server_reply span: {json}"
    );

    let stats = client.stats().expect("stats");
    let sv = JsonValue::parse(&stats).unwrap();
    assert!(
        sv.get("flight")
            .and_then(|f| f.get("captured_total"))
            .and_then(JsonValue::as_u64)
            .is_some_and(|n| n >= 1),
        "capture counter must move: {stats}"
    );

    disk.clear_faults();
    drop(client);
    server.join();
    bpw_trace::flight::clear();
}

macro_rules! both_frontends {
    ($($name:ident),* $(,)?) => {
        mod threaded {
            use super::*;
            $(#[test]
            fn $name() {
                super::$name(FrontendMode::Threaded);
            })*
        }
        mod eventloop_mode {
            use super::*;
            $(#[test]
            fn $name() {
                super::$name(FrontendMode::EventLoop);
            })*
        }
    };
}

both_frontends!(
    chaos_run_returns_correct_bytes_or_err_io_and_recovers,
    chaos_loadgen_accounting_stays_exact_under_faults,
    flight_recorder_captures_err_io_exemplars,
);
