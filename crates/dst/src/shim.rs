//! Shim primitives: drop-in replacements for `std::sync` atomics and
//! mutexes that insert a [`crate::yield_point`] before every
//! shared-memory operation. With the `dst` feature off, `yield_point`
//! is an empty `#[inline(always)]` stub, so these compile down to the
//! bare std primitives.
//!
//! Only the operation surface the workspace actually uses is covered —
//! these are test shims, not a general library.

use std::sync::atomic::Ordering;
use std::sync::{MutexGuard, TryLockError};

macro_rules! shim_atomic {
    ($name:ident, $inner:ty, $prim:ty) => {
        /// Yield-instrumented atomic; see module docs.
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct $name($inner);

        impl $name {
            #[inline]
            pub const fn new(v: $prim) -> Self {
                Self(<$inner>::new(v))
            }

            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.load(order)
            }

            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                crate::yield_point();
                self.0.store(v, order)
            }

            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.swap(v, order)
            }

            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.fetch_add(v, order)
            }

            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                crate::yield_point();
                self.0.fetch_sub(v, order)
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // The yield sits between the caller's read of the old
                // value and the CAS itself — exactly the window where
                // ABA and lost-update bugs live.
                crate::yield_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                crate::yield_point();
                self.0.compare_exchange_weak(current, new, success, failure)
            }
        }
    };
}

shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Yield-instrumented atomic pointer.
#[repr(transparent)]
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    #[inline]
    pub fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        crate::yield_point();
        self.0.load(order)
    }

    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        crate::yield_point();
        self.0.store(p, order)
    }

    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        crate::yield_point();
        self.0.swap(p, order)
    }

    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        crate::yield_point();
        self.0.compare_exchange(current, new, success, failure)
    }
}

/// A mutex that never blocks the OS thread while a simulation is
/// active: inside a virtual thread, acquisition spins on `try_lock`
/// with a voluntary yield per failure, so the scheduler keeps full
/// control. Outside a simulation it is a plain std mutex (poisoning
/// ignored, matching the vendored parking_lot shim's semantics).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if crate::in_task() {
            loop {
                match self.0.try_lock() {
                    Ok(g) => return g,
                    Err(TryLockError::Poisoned(p)) => return p.into_inner(),
                    Err(TryLockError::WouldBlock) => crate::yield_now(),
                }
            }
        }
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        crate::yield_point();
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn atomics_behave_like_std_outside_simulation() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load(SeqCst), 5);
        a.store(6, SeqCst);
        assert_eq!(a.fetch_add(2, SeqCst), 6);
        assert_eq!(a.swap(1, SeqCst), 8);
        assert_eq!(a.compare_exchange(1, 9, SeqCst, SeqCst), Ok(1));
        assert_eq!(a.compare_exchange(1, 3, SeqCst, SeqCst), Err(9));
    }

    #[test]
    fn mutex_gives_exclusive_access() {
        let m = Mutex::new(0u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 1);
        assert_eq!(m.into_inner(), 1);
    }
}
