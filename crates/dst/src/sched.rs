//! The deterministic scheduler: virtual threads are real OS threads
//! serialized by a token. A task runs until its granted *budget* of
//! yield points is spent (or it voluntarily yields), then hands the
//! token back; the seeded PRNG picks the next task and budget. Two
//! schedule modes:
//!
//! * **Random**: uniform choice among runnable tasks with a small
//!   random budget — good breadth over interleavings.
//! * **PCT** (probabilistic concurrency testing): each task gets a
//!   random priority; the highest-priority runnable task runs, with
//!   `depth - 1` random change points that demote the current leader.
//!   PCT finds bugs of small "depth" (few ordering constraints) with
//!   provable probability. A task that calls [`crate::yield_now`] is
//!   demoted, so spin loops cannot livelock a priority schedule.
//!
//! Determinism: scheduling decisions depend only on the PRNG and the
//! evolution of the runnable set, which (for instrumented code free of
//! other nondeterminism) depends only on prior decisions. Same seed ⇒
//! same schedule ⇒ same history, byte for byte.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::history::{Event, Op};
use crate::splitmix64;

const DEFAULT_MAX_STEPS: u64 = 500_000;
/// Horizon (in steps) over which PCT change points are sampled.
const PCT_HORIZON: u64 = 20_000;
/// Largest random budget granted in Random mode.
const MAX_BUDGET: u32 = 4;

/// Schedule-generation strategy for one simulated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Random,
    Pct { depth: usize },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Done,
}

struct Inner {
    status: Vec<Status>,
    /// Task currently holding the execution token, if any.
    current: Option<usize>,
    /// Budget attached to the current grant.
    granted_budget: u32,
    rng: u64,
    mode: Mode,
    /// PCT priorities (higher runs first); demotions go ever lower.
    priorities: Vec<i64>,
    next_demoted: i64,
    change_points: Vec<u64>,
    steps: u64,
    max_steps: u64,
    schedule: Vec<(u32, u32)>,
    history: Vec<Event>,
    failure: Option<String>,
    aborting: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
}

struct Ctx {
    id: usize,
    shared: Arc<Shared>,
    budget: Cell<u32>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Payload used to unwind the remaining tasks once the run is aborting
/// (a task panicked or the step budget ran out). Delivered via
/// `resume_unwind` so the global panic hook stays quiet.
struct DstAbort;

pub(crate) fn in_task() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn yield_point() {
    CTX.with(|c| {
        let b = c.borrow();
        if let Some(ctx) = b.as_ref() {
            let left = ctx.budget.get();
            if left > 1 {
                ctx.budget.set(left - 1);
            } else {
                reschedule(ctx, false);
            }
        }
    });
}

pub(crate) fn yield_now_task() {
    CTX.with(|c| {
        let b = c.borrow();
        if let Some(ctx) = b.as_ref() {
            reschedule(ctx, true);
        }
    });
}

pub(crate) fn record_op_with<F: FnOnce() -> Op>(f: F) {
    CTX.with(|c| {
        let b = c.borrow();
        if let Some(ctx) = b.as_ref() {
            let op = f();
            let mut inner = ctx.shared.inner.lock().unwrap();
            let task = ctx.id;
            inner.history.push(Event { task, op });
        }
    });
}

fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(DstAbort))
}

fn next_rand(inner: &mut Inner) -> u64 {
    inner.rng = splitmix64(inner.rng);
    inner.rng
}

/// Pick the next task + budget and store the grant. Caller notifies.
fn grant_next(inner: &mut Inner) {
    let runnable: Vec<usize> = (0..inner.status.len())
        .filter(|&t| inner.status[t] == Status::Runnable)
        .collect();
    if runnable.is_empty() {
        inner.current = None;
        return;
    }
    let (pick, budget) = match inner.mode {
        Mode::Random => {
            let r = next_rand(inner);
            let pick = runnable[(r % runnable.len() as u64) as usize];
            (pick, 1 + ((r >> 32) % MAX_BUDGET as u64) as u32)
        }
        Mode::Pct { .. } => {
            // At a change point the current leader drops to the bottom,
            // letting the next priority take over mid-run.
            if inner.change_points.contains(&inner.steps) {
                if let Some(&leader) = runnable.iter().max_by_key(|&&t| inner.priorities[t]) {
                    inner.priorities[leader] = inner.next_demoted;
                    inner.next_demoted -= 1;
                }
            }
            let pick = *runnable
                .iter()
                .max_by_key(|&&t| inner.priorities[t])
                .expect("runnable set non-empty");
            // Budget 1: every yield point is a scheduler step, so change
            // points land at exact yield-point indices.
            (pick, 1)
        }
    };
    inner.current = Some(pick);
    inner.granted_budget = budget;
    inner.schedule.push((pick as u32, budget));
}

/// Hand the token back, run one scheduling step, and wait to be granted
/// again. `demote` lowers the caller's PCT priority first.
fn reschedule(ctx: &Ctx, demote: bool) {
    let shared = &ctx.shared;
    let mut inner = shared.inner.lock().unwrap();
    if inner.aborting {
        drop(inner);
        abort_unwind();
    }
    inner.steps += 1;
    if inner.steps > inner.max_steps {
        if inner.failure.is_none() {
            inner.failure = Some(format!(
                "step budget exhausted after {} scheduling steps (possible livelock)",
                inner.max_steps
            ));
        }
        inner.aborting = true;
        shared.cv.notify_all();
        drop(inner);
        abort_unwind();
    }
    if demote {
        inner.priorities[ctx.id] = inner.next_demoted;
        inner.next_demoted -= 1;
    }
    grant_next(&mut inner);
    shared.cv.notify_all();
    while inner.current != Some(ctx.id) && !inner.aborting {
        inner = shared.cv.wait(inner).unwrap();
    }
    if inner.aborting {
        drop(inner);
        abort_unwind();
    }
    ctx.budget.set(inner.granted_budget);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn task_main(shared: Arc<Shared>, id: usize, f: Box<dyn FnOnce() + Send>) {
    // Wait for the first grant before touching anything.
    {
        let mut inner = shared.inner.lock().unwrap();
        while inner.current != Some(id) && !inner.aborting {
            inner = shared.cv.wait(inner).unwrap();
        }
        if inner.aborting {
            inner.status[id] = Status::Done;
            shared.cv.notify_all();
            return;
        }
        let budget = inner.granted_budget;
        drop(inner);
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                id,
                shared: Arc::clone(&shared),
                budget: Cell::new(budget),
            });
        });
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut inner = shared.inner.lock().unwrap();
    inner.status[id] = Status::Done;
    if let Err(payload) = result {
        if payload.downcast_ref::<DstAbort>().is_none() {
            if inner.failure.is_none() {
                inner.failure = Some(format!(
                    "task {id} panicked: {}",
                    panic_message(payload.as_ref())
                ));
            }
            inner.aborting = true;
        }
    }
    if inner.current == Some(id) {
        grant_next(&mut inner);
    }
    shared.cv.notify_all();
}

/// Builder for one deterministic run.
pub struct Sim {
    seed: u64,
    mode: Mode,
    max_steps: u64,
    #[allow(clippy::type_complexity)]
    tasks: Vec<Box<dyn FnOnce() + Send + 'static>>,
}

impl Sim {
    /// A random-schedule simulation driven by `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            seed,
            mode: Mode::Random,
            max_steps: DEFAULT_MAX_STEPS,
            tasks: Vec::new(),
        }
    }

    /// Switch to a PCT priority schedule of the given depth.
    pub fn with_pct(mut self, depth: usize) -> Self {
        self.mode = Mode::Pct { depth };
        self
    }

    /// Override the livelock step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Add a virtual thread.
    pub fn spawn<F: FnOnce() + Send + 'static>(&mut self, f: F) {
        self.tasks.push(Box::new(f));
    }

    /// Run every task to completion under the seeded schedule.
    pub fn run(self) -> RunOutcome {
        let n = self.tasks.len();
        assert!(n > 0, "Sim::run with no tasks");
        let mut rng = splitmix64(self.seed ^ 0xD57_5EED);
        let mut priorities = Vec::with_capacity(n);
        for _ in 0..n {
            rng = splitmix64(rng);
            priorities.push((rng >> 1) as i64);
        }
        let mut change_points = Vec::new();
        if let Mode::Pct { depth } = self.mode {
            for _ in 1..depth {
                rng = splitmix64(rng);
                change_points.push(1 + rng % PCT_HORIZON);
            }
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                status: vec![Status::Runnable; n],
                current: None,
                granted_budget: 0,
                rng,
                mode: self.mode,
                priorities,
                next_demoted: -1,
                change_points,
                steps: 0,
                max_steps: self.max_steps,
                schedule: Vec::new(),
                history: Vec::new(),
                failure: None,
                aborting: false,
            }),
            cv: Condvar::new(),
        });
        let handles: Vec<_> = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(id, f)| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dst-task-{id}"))
                    .spawn(move || task_main(sh, id, f))
                    .expect("spawn dst task")
            })
            .collect();
        {
            let mut inner = shared.inner.lock().unwrap();
            grant_next(&mut inner);
            shared.cv.notify_all();
        }
        for h in handles {
            let _ = h.join();
        }
        let inner = shared.inner.lock().unwrap();
        RunOutcome {
            seed: self.seed,
            mode: inner.mode,
            steps: inner.steps,
            schedule: inner.schedule.clone(),
            history: inner.history.clone(),
            failure: inner.failure.clone(),
        }
    }
}

/// Everything a finished run produced: the verdict, the exact schedule,
/// and the recorded operation history.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub seed: u64,
    pub mode: Mode,
    pub steps: u64,
    /// Every grant as `(task, budget)`, in order.
    pub schedule: Vec<(u32, u32)>,
    pub history: Vec<Event>,
    /// First failure observed (task panic or step-budget exhaustion).
    pub failure: Option<String>,
}

impl RunOutcome {
    /// Panic (with the full replay dump) if any task failed.
    pub fn expect_clean(&self) {
        if let Some(f) = &self.failure {
            panic!("dst run failed: {f}\n{}", self.dump());
        }
    }

    /// Assert the run was clean, then apply a checker to it; if the
    /// checker panics, re-panic with the seed and full schedule so the
    /// failure replays exactly.
    pub fn check<F: FnOnce(&RunOutcome)>(&self, f: F) {
        self.expect_clean();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(self))) {
            eprintln!("{}", self.dump());
            std::panic::resume_unwind(payload);
        }
    }

    /// Human-readable replay information: seed, mode, and the complete
    /// schedule (the seed alone reproduces it; the schedule is printed
    /// so a failure can be eyeballed without re-running).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== dst replay info: seed={:#x} mode={:?} steps={} events={} ===",
            self.seed,
            self.mode,
            self.steps,
            self.history.len()
        );
        let _ = write!(out, "schedule (task x budget):");
        for (i, (task, budget)) in self.schedule.iter().enumerate() {
            if i % 16 == 0 {
                let _ = write!(out, "\n  ");
            }
            let _ = write!(out, "{task}x{budget} ");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "re-run this exact interleaving with the seed above");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tasks_are_serialized_and_all_run() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(42);
        for _ in 0..4 {
            let hits = Arc::clone(&hits);
            sim.spawn(move || {
                for _ in 0..10 {
                    crate::yield_point();
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let out = sim.run();
        out.expect_clean();
        assert_eq!(hits.load(Ordering::Relaxed), 40);
        assert!(
            out.schedule.len() > 1,
            "must have rescheduled at least once"
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            for t in 0..3u64 {
                sim.spawn(move || {
                    let mut x = t;
                    for _ in 0..50 {
                        crate::yield_point();
                        x = crate::splitmix64(x);
                    }
                    std::hint::black_box(x);
                });
            }
            sim.run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.schedule, b.schedule);
        let c = run(8);
        assert_ne!(a.schedule, c.schedule, "different seeds should diverge");
    }

    #[test]
    fn task_panic_is_reported_with_seed() {
        let mut sim = Sim::new(3);
        sim.spawn(|| {
            for _ in 0..5 {
                crate::yield_point();
            }
            panic!("boom");
        });
        sim.spawn(|| loop {
            // Would spin forever; the abort must unwind it.
            crate::yield_now();
        });
        let out = sim.run();
        assert!(out.dump().contains("seed=0x3"));
        let failure = out.failure.expect("panic must be captured");
        assert!(failure.contains("boom"), "got: {failure}");
    }

    #[test]
    fn step_budget_catches_livelock() {
        let mut sim = Sim::new(11).with_max_steps(1000);
        sim.spawn(|| loop {
            crate::yield_now();
        });
        let out = sim.run();
        assert!(out.failure.unwrap().contains("step budget"));
    }

    #[test]
    fn pct_mode_runs_clean_and_deterministic() {
        let run = || {
            let counter = Arc::new(AtomicU64::new(0));
            let mut sim = Sim::new(99).with_pct(3);
            for _ in 0..3 {
                let counter = Arc::clone(&counter);
                sim.spawn(move || {
                    for _ in 0..20 {
                        crate::yield_point();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let out = sim.run();
            out.expect_clean();
            (out.schedule, counter.load(Ordering::Relaxed))
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2);
        assert_eq!(c1, 60);
        assert_eq!(c2, 60);
    }

    #[test]
    fn yield_now_demotes_spinner_so_holder_progresses() {
        // A PCT schedule where the spinner may start with the highest
        // priority: without demote-on-yield_now this would livelock.
        let flag = Arc::new(AtomicU64::new(0));
        let mut sim = Sim::new(5).with_pct(2).with_max_steps(20_000);
        {
            let flag = Arc::clone(&flag);
            sim.spawn(move || {
                while flag.load(Ordering::Relaxed) == 0 {
                    crate::yield_now();
                }
            });
        }
        {
            let flag = Arc::clone(&flag);
            sim.spawn(move || {
                crate::yield_point();
                flag.store(1, Ordering::Relaxed);
            });
        }
        sim.run().expect_clean();
    }
}
