//! History checkers. Because the scheduler serializes virtual threads,
//! a run's history is a true linearization of the recorded operations;
//! these checkers validate the harness's three core invariants over it.
//! (The third invariant — serial-replay equivalence against a fresh
//! policy instance — lives in the test crates, which know the concrete
//! policy types; this crate stays dependency-free.)

use std::collections::{HashMap, VecDeque};

use crate::history::{Event, Op};

/// Summary returned by [`check_commit_order`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommitReport {
    pub records: u64,
    pub commits: u64,
    pub stale_commits: u64,
    pub publishes: u64,
    pub reclaims: u64,
    pub combines: u64,
}

/// Checker (a): the combining commit preserves per-thread program order
/// and commits each recorded access **exactly once**, no matter which
/// thread (recorder, combiner, or flusher) performs the commit.
///
/// Attribution: commits do not carry the recording task (a combiner
/// commits other threads' batches), so ownership is derived from the
/// `RecordHit` stream. Tests must give each virtual thread a disjoint
/// page set; the checker enforces this precondition.
///
/// Panics with a precise message on the first violation.
pub fn check_commit_order(events: &[Event]) -> CommitReport {
    let mut owner: HashMap<u64, usize> = HashMap::new();
    let mut queues: HashMap<usize, VecDeque<(u64, u32)>> = HashMap::new();
    let mut report = CommitReport {
        records: 0,
        commits: 0,
        stale_commits: 0,
        publishes: 0,
        reclaims: 0,
        combines: 0,
    };
    for ev in events {
        match ev.op {
            Op::RecordHit { page, frame } => {
                let prev = *owner.entry(page).or_insert(ev.task);
                assert_eq!(
                    prev, ev.task,
                    "checker precondition violated: page {page} recorded by \
                     task {prev} and task {}; give each task a disjoint page set",
                    ev.task
                );
                queues.entry(ev.task).or_default().push_back((page, frame));
                report.records += 1;
            }
            Op::CommitHit {
                page,
                frame,
                applied,
            } => {
                let t = *owner
                    .get(&page)
                    .unwrap_or_else(|| panic!("commit of page {page} that was never recorded"));
                let front = queues
                    .get_mut(&t)
                    .and_then(|q| q.pop_front())
                    .unwrap_or_else(|| {
                        panic!(
                            "task {t}: commit of ({page},{frame}) but no recorded \
                             access is outstanding — committed more than once?"
                        )
                    });
                assert_eq!(
                    front,
                    (page, frame),
                    "program order violated for task {t}: committed ({page},{frame}) \
                     but its next outstanding recorded access was {front:?}"
                );
                report.commits += 1;
                if !applied {
                    report.stale_commits += 1;
                }
            }
            Op::PublishBatch { .. } => report.publishes += 1,
            Op::ReclaimBatch { .. } => report.reclaims += 1,
            Op::CombineBatch { .. } => report.combines += 1,
            _ => {}
        }
    }
    for (t, q) in &queues {
        assert!(
            q.is_empty(),
            "task {t}: {} recorded accesses were never committed (lost batch); \
             first lost: {:?}",
            q.len(),
            q.front()
        );
    }
    assert_eq!(report.records, report.commits);
    report
}

/// Summary returned by [`check_combine_fairness`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FairnessReport {
    /// Combining critical sections observed.
    pub drains: u64,
    /// Largest number of drain passes any one critical section ran.
    pub max_passes: u32,
    /// Largest number of batches any one critical section retired.
    pub max_batches: u32,
}

/// Checker (c): combining critical sections respect the fairness bound.
/// Each `CombineDrain` event summarizes one lock tenure's draining;
/// `bound` is the wrapper's `MAX_COMBINE_PASSES`. The unbounded-combiner
/// mutant (`dst_mutation = "fairness"`) keeps draining as long as
/// publishers feed it, so under a schedule that interleaves publishes
/// into the drain it exceeds the bound and this checker panics.
pub fn check_combine_fairness(events: &[Event], bound: u32) -> FairnessReport {
    let mut report = FairnessReport::default();
    for ev in events {
        if let Op::CombineDrain { passes, batches } = ev.op {
            report.drains += 1;
            report.max_passes = report.max_passes.max(passes);
            report.max_batches = report.max_batches.max(batches);
            assert!(
                passes <= bound,
                "fairness bound violated: task {} ran {passes} drain passes \
                 (bound {bound}) in one critical section, retiring {batches} \
                 batches — an unbounded combiner starves under a steady \
                 publisher stream",
                ev.task
            );
        }
    }
    report
}

/// Summary returned by [`check_pin_balance`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PinReport {
    pub pins: u64,
    pub unpins: u64,
    /// Largest pin count any single page reached.
    pub max_pins: u32,
}

/// Checker (d): lock-free pins and unpins balance. A page resides in at
/// most one frame at a time and a pinned frame can be neither evicted
/// nor invalidated (the victim filter rejects `pins > 0`, invalidate
/// reports `Busy`), so a frame's tag is stable while pinned — which
/// makes per-page accounting sound over the linearized history: each
/// page's running pin balance must never go negative (an unpin without
/// a matching pin — the release-mode underflow the packed header
/// saturates) and must end at zero when every guard was dropped
/// (`expect_drained`).
pub fn check_pin_balance(events: &[Event], expect_drained: bool) -> PinReport {
    let mut held: HashMap<u64, i64> = HashMap::new();
    let mut report = PinReport::default();
    for ev in events {
        match ev.op {
            Op::Pin { page, pins } => {
                let bal = held.entry(page).or_insert(0);
                *bal += 1;
                report.pins += 1;
                report.max_pins = report.max_pins.max(pins);
            }
            Op::Unpin { page, .. } => {
                let bal = held.entry(page).or_insert(0);
                *bal -= 1;
                assert!(
                    *bal >= 0,
                    "pin underflow: task {} unpinned page {page} more times \
                     than it was pinned",
                    ev.task
                );
                report.unpins += 1;
            }
            _ => {}
        }
    }
    if expect_drained {
        for (page, bal) in &held {
            assert_eq!(
                *bal, 0,
                "page {page} ended with {bal} outstanding pin(s) after every \
                 guard was dropped (leaked pin blocks eviction forever)"
            );
        }
    }
    report
}

/// Summary returned by [`check_free_list`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FreeListReport {
    pub pops: u64,
    pub pushes: u64,
    pub cold_pushes: u64,
    pub free_at_end: u32,
}

/// Checker (b): the striped free list never double-allocates a frame
/// and never loses one, across home-stripe, steal, and cold paths.
///
/// `initially_free` is the set of frames sitting on the free list when
/// recording started (for a fresh pool: all frames). Replays every
/// push/pop in linearization order against a reference set.
pub fn check_free_list(events: &[Event], frames: u32, initially_free: bool) -> FreeListReport {
    let mut free = vec![initially_free; frames as usize];
    let mut report = FreeListReport {
        pops: 0,
        pushes: 0,
        cold_pushes: 0,
        free_at_end: 0,
    };
    for ev in events {
        match ev.op {
            Op::FreePop { frame } => {
                let slot = free.get_mut(frame as usize).unwrap_or_else(|| {
                    panic!("pop of out-of-range frame {frame} (frames={frames})")
                });
                assert!(
                    *slot,
                    "double allocation: task {} popped frame {frame} while it \
                     was already allocated (ABA?)",
                    ev.task
                );
                *slot = false;
                report.pops += 1;
            }
            Op::FreePush { frame, cold } => {
                let slot = free.get_mut(frame as usize).unwrap_or_else(|| {
                    panic!("push of out-of-range frame {frame} (frames={frames})")
                });
                assert!(
                    !*slot,
                    "duplicate free: task {} pushed frame {frame} while it was \
                     already on the free list",
                    ev.task
                );
                *slot = true;
                report.pushes += 1;
                if cold {
                    report.cold_pushes += 1;
                }
            }
            _ => {}
        }
    }
    report.free_at_end = free.iter().filter(|&&f| f).count() as u32;
    report
}

/// Summary returned by [`check_swap_epoch`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwapEpochReport {
    /// Generations installed during the run.
    pub installs: u64,
    /// Generations retired during the run.
    pub retires: u64,
    /// Epoch entries observed.
    pub enters: u64,
    /// Highest generation installed.
    pub max_gen: u64,
}

/// Checker (e): the manager hot-swap epoch protocol. Asserts, over the
/// linearized history:
///
/// * install generations are strictly increasing (no double-install,
///   no regression), and
/// * **no access is ever applied to a retired manager**: every
///   `MgrEnter { gen }` precedes the `SwapRetire { gen }` of its
///   generation. Generation 0 exists from startup without an install
///   event.
pub fn check_swap_epoch(events: &[Event]) -> SwapEpochReport {
    let mut retired: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut last_install: Option<u64> = None;
    let mut report = SwapEpochReport::default();
    for ev in events {
        match ev.op {
            Op::SwapInstall { gen } => {
                if let Some(prev) = last_install {
                    assert!(
                        gen > prev,
                        "swap install generations must be strictly increasing: \
                         task {} installed gen {gen} after gen {prev}",
                        ev.task
                    );
                }
                assert!(
                    gen > 0,
                    "generation 0 is the startup manager and cannot be installed"
                );
                last_install = Some(gen);
                report.installs += 1;
                report.max_gen = report.max_gen.max(gen);
            }
            Op::SwapRetire { gen } => {
                assert!(
                    retired.insert(gen),
                    "task {} retired generation {gen} twice",
                    ev.task
                );
                report.retires += 1;
            }
            Op::MgrEnter { gen } => {
                assert!(
                    !retired.contains(&gen),
                    "access applied to a retired manager: task {} entered \
                     generation {gen} after its SwapRetire — quiescence did \
                     not hold",
                    ev.task
                );
                report.enters += 1;
            }
            _ => {}
        }
    }
    report
}

/// Summary returned by [`check_hit_conservation`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConservationReport {
    pub records: u64,
    pub commits: u64,
}

/// Checker (f): every recorded hit is committed **exactly once**, as a
/// multiset over `(page, frame)` — the swap-tolerant relaxation of
/// [`check_commit_order`]. A hot-swap may legally reorder advice (a
/// thread's pre-swap *published* batch is replayed by the swap
/// coordinator, possibly after the thread's post-swap queue has already
/// committed), so per-task FIFO order does not survive a swap; but
/// conservation must: the `swap_no_drain` mutant strands published
/// batches on the retired manager's board, and this checker reports
/// them as recorded-but-never-committed.
pub fn check_hit_conservation(events: &[Event]) -> ConservationReport {
    let mut outstanding: HashMap<(u64, u32), i64> = HashMap::new();
    let mut report = ConservationReport::default();
    for ev in events {
        match ev.op {
            Op::RecordHit { page, frame } => {
                *outstanding.entry((page, frame)).or_insert(0) += 1;
                report.records += 1;
            }
            Op::CommitHit { page, frame, .. } => {
                let n = outstanding.entry((page, frame)).or_insert(0);
                assert!(
                    *n > 0,
                    "task {} committed ({page},{frame}) more times than it was \
                     recorded",
                    ev.task
                );
                *n -= 1;
                report.commits += 1;
            }
            _ => {}
        }
    }
    let lost: i64 = outstanding.values().sum();
    assert_eq!(
        lost,
        0,
        "{lost} recorded access(es) were never committed — stranded on a \
         retired manager's publication board? first: {:?}",
        outstanding.iter().find(|(_, &v)| v > 0).map(|(k, _)| *k)
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: usize, op: Op) -> Event {
        Event { task, op }
    }

    #[test]
    fn commit_order_accepts_interleaved_batches() {
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(1, Op::RecordHit { page: 10, frame: 1 }),
            ev(0, Op::RecordHit { page: 2, frame: 2 }),
            // Task 1 commits its own access, then combines task 0's
            // batch — program order per task, any interleaving across.
            ev(
                1,
                Op::CommitHit {
                    page: 10,
                    frame: 1,
                    applied: true,
                },
            ),
            ev(
                1,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
            ev(
                1,
                Op::CommitHit {
                    page: 2,
                    frame: 2,
                    applied: false,
                },
            ),
        ];
        let report = check_commit_order(&events);
        assert_eq!(report.records, 3);
        assert_eq!(report.commits, 3);
        assert_eq!(report.stale_commits, 1);
    }

    #[test]
    #[should_panic(expected = "program order violated")]
    fn commit_order_rejects_reordered_commits() {
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(0, Op::RecordHit { page: 2, frame: 1 }),
            ev(
                0,
                Op::CommitHit {
                    page: 2,
                    frame: 1,
                    applied: true,
                },
            ),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
        ];
        check_commit_order(&events);
    }

    #[test]
    #[should_panic(expected = "never committed")]
    fn commit_order_rejects_lost_batch() {
        let events = vec![ev(0, Op::RecordHit { page: 1, frame: 0 })];
        check_commit_order(&events);
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn commit_order_rejects_double_commit() {
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
        ];
        check_commit_order(&events);
    }

    #[test]
    fn fairness_accepts_bounded_drains() {
        let events = vec![
            ev(
                0,
                Op::CombineDrain {
                    passes: 2,
                    batches: 5,
                },
            ),
            ev(
                1,
                Op::CombineDrain {
                    passes: 1,
                    batches: 1,
                },
            ),
        ];
        let report = check_combine_fairness(&events, 2);
        assert_eq!(report.drains, 2);
        assert_eq!(report.max_passes, 2);
        assert_eq!(report.max_batches, 5);
    }

    #[test]
    #[should_panic(expected = "fairness bound violated")]
    fn fairness_rejects_unbounded_combiner() {
        let events = vec![ev(
            0,
            Op::CombineDrain {
                passes: 3,
                batches: 9,
            },
        )];
        check_combine_fairness(&events, 2);
    }

    #[test]
    fn pin_balance_accepts_matched_pairs() {
        let events = vec![
            ev(0, Op::Pin { page: 1, pins: 1 }),
            ev(1, Op::Pin { page: 1, pins: 2 }),
            ev(0, Op::Unpin { page: 1, pins: 1 }),
            ev(1, Op::Unpin { page: 1, pins: 0 }),
        ];
        let report = check_pin_balance(&events, true);
        assert_eq!(report.pins, 2);
        assert_eq!(report.unpins, 2);
        assert_eq!(report.max_pins, 2);
    }

    #[test]
    #[should_panic(expected = "pin underflow")]
    fn pin_balance_rejects_underflow() {
        let events = vec![
            ev(0, Op::Pin { page: 1, pins: 1 }),
            ev(0, Op::Unpin { page: 1, pins: 0 }),
            ev(1, Op::Unpin { page: 1, pins: 0 }),
        ];
        check_pin_balance(&events, true);
    }

    #[test]
    #[should_panic(expected = "outstanding pin")]
    fn pin_balance_rejects_leaked_pin() {
        let events = vec![ev(0, Op::Pin { page: 3, pins: 1 })];
        check_pin_balance(&events, true);
    }

    #[test]
    fn free_list_accepts_balanced_traffic() {
        let events = vec![
            ev(0, Op::FreePop { frame: 0 }),
            ev(1, Op::FreePop { frame: 1 }),
            ev(
                0,
                Op::FreePush {
                    frame: 0,
                    cold: true,
                },
            ),
            ev(1, Op::FreePop { frame: 0 }),
        ];
        let report = check_free_list(&events, 2, true);
        assert_eq!(report.pops, 3);
        assert_eq!(report.cold_pushes, 1);
        assert_eq!(report.free_at_end, 0);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn free_list_rejects_double_allocation() {
        let events = vec![
            ev(0, Op::FreePop { frame: 0 }),
            ev(1, Op::FreePop { frame: 0 }),
        ];
        check_free_list(&events, 2, true);
    }

    #[test]
    fn swap_epoch_accepts_clean_swap() {
        let events = vec![
            ev(1, Op::MgrEnter { gen: 0 }),
            ev(0, Op::SwapInstall { gen: 1 }),
            ev(1, Op::MgrEnter { gen: 0 }), // straggler before retire: fine
            ev(0, Op::SwapRetire { gen: 0 }),
            ev(1, Op::MgrEnter { gen: 1 }),
            ev(0, Op::SwapInstall { gen: 2 }),
            ev(0, Op::SwapRetire { gen: 1 }),
            ev(2, Op::MgrEnter { gen: 2 }),
        ];
        let report = check_swap_epoch(&events);
        assert_eq!(report.installs, 2);
        assert_eq!(report.retires, 2);
        assert_eq!(report.enters, 4);
        assert_eq!(report.max_gen, 2);
    }

    #[test]
    #[should_panic(expected = "retired manager")]
    fn swap_epoch_rejects_entry_after_retire() {
        let events = vec![
            ev(0, Op::SwapInstall { gen: 1 }),
            ev(0, Op::SwapRetire { gen: 0 }),
            ev(1, Op::MgrEnter { gen: 0 }),
        ];
        check_swap_epoch(&events);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn swap_epoch_rejects_generation_regression() {
        let events = vec![
            ev(0, Op::SwapInstall { gen: 2 }),
            ev(0, Op::SwapInstall { gen: 2 }),
        ];
        check_swap_epoch(&events);
    }

    #[test]
    fn conservation_accepts_swap_reordered_commits() {
        // A swap coordinator replays a published batch *after* the
        // owning thread's newer queue already committed: FIFO order is
        // violated (check_commit_order would panic) but conservation
        // holds.
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(0, Op::RecordHit { page: 2, frame: 1 }),
            ev(
                0,
                Op::CommitHit {
                    page: 2,
                    frame: 1,
                    applied: true,
                },
            ),
            ev(
                1,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: false,
                },
            ),
        ];
        let report = check_hit_conservation(&events);
        assert_eq!(report.records, 2);
        assert_eq!(report.commits, 2);
    }

    #[test]
    #[should_panic(expected = "never committed")]
    fn conservation_rejects_stranded_advice() {
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(0, Op::RecordHit { page: 2, frame: 1 }),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
        ];
        check_hit_conservation(&events);
    }

    #[test]
    #[should_panic(expected = "more times than it was")]
    fn conservation_rejects_double_commit() {
        let events = vec![
            ev(0, Op::RecordHit { page: 1, frame: 0 }),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
            ev(
                0,
                Op::CommitHit {
                    page: 1,
                    frame: 0,
                    applied: true,
                },
            ),
        ];
        check_hit_conservation(&events);
    }

    #[test]
    #[should_panic(expected = "duplicate free")]
    fn free_list_rejects_duplicate_free() {
        let events = vec![
            ev(0, Op::FreePop { frame: 0 }),
            ev(
                0,
                Op::FreePush {
                    frame: 0,
                    cold: false,
                },
            ),
            ev(
                1,
                Op::FreePush {
                    frame: 0,
                    cold: false,
                },
            ),
        ];
        check_free_list(&events, 2, true);
    }
}
