//! The operation vocabulary recorded by instrumented code.
//!
//! Because exactly one virtual thread runs at a time, the order of
//! events in a run's history *is* the real-time order of the underlying
//! operations — recording happens in the same scheduler tenure as the
//! operation itself, with no yield point in between. Checkers can
//! therefore treat the history as a linearization.

/// One recorded operation. Field types mirror the production crates:
/// pages are `u64`, frames `u32`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Wrapper fast path: an access was appended to a thread-local
    /// queue (the paper's "record"), deferring policy bookkeeping.
    RecordHit { page: u64, frame: u32 },
    /// A queued access was drained under the policy lock. `applied` is
    /// false when the frame had been rebound to another page since the
    /// access was recorded, so the hit was discarded as stale.
    CommitHit {
        page: u64,
        frame: u32,
        applied: bool,
    },
    /// A full queue was published to a combining slot instead of
    /// blocking on the lock.
    PublishBatch { len: u32 },
    /// The lock holder reclaimed its *own* previously published batch
    /// before committing fresh accesses (the reclaim-before-commit
    /// ordering the paper's §III-A requires for program order).
    ReclaimBatch { len: u32 },
    /// The lock holder combined another thread's published batch.
    CombineBatch { len: u32 },
    /// A combining critical section finished draining: it ran `passes`
    /// drain passes and retired `batches` batches in total. The
    /// fairness checker asserts `passes` never exceeds the wrapper's
    /// bound — an unbounded combiner (the "fairness" mutant) keeps
    /// draining as long as publishers keep feeding it.
    CombineDrain { passes: u32, batches: u32 },
    /// A miss was applied to the policy under the lock. `frame` is the
    /// admitted frame (None when no frame was evictable), `victim` the
    /// evicted page if the admission displaced one.
    MissApply {
        page: u64,
        free: Option<u32>,
        frame: Option<u32>,
        victim: Option<u64>,
    },
    /// A frame was pushed onto the striped free list (`cold` = onto the
    /// cold stack rather than a per-thread stripe).
    FreePush { frame: u32, cold: bool },
    /// A frame was popped (allocated) from the striped free list, via
    /// the home stripe, a steal, or the cold stack.
    FreePop { frame: u32 },
    /// A pool fetch completed.
    FetchDone { page: u64, frame: u32, hit: bool },
    /// A pool invalidation completed with the given outcome
    /// (0 = Invalidated, 1 = NotResident, 2 = Busy).
    Invalidate { page: u64, outcome: u8 },
    /// A lock-free pin landed on a descriptor (the CAS succeeded).
    /// `pins` is the count *after* the increment; `page` the tag the
    /// pin validated against.
    Pin { page: u64, pins: u32 },
    /// A lock-free unpin landed. `pins` is the count *after* the
    /// decrement; `page` the descriptor's tag at release time.
    Unpin { page: u64, pins: u32 },
    /// Manager hot-swap: a successor manager became the live generation
    /// (recorded by the swap coordinator *before* the generation counter
    /// publishes it, so no `MgrEnter` of this generation can precede it).
    SwapInstall { gen: u64 },
    /// Manager hot-swap: generation `gen` was retired — quiescence
    /// reached, stranded published advice drained into the successor.
    /// After this event no handle may enter `gen` again.
    SwapRetire { gen: u64 },
    /// A swap-aware handle entered its epoch and is about to apply an
    /// operation to the manager of generation `gen`. The swap-epoch
    /// checker asserts `gen` was not yet retired.
    MgrEnter { gen: u64 },
}

/// An [`Op`] attributed to the virtual thread that performed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub task: usize,
    pub op: Op,
}
