//! bpw-dst: a deterministic-simulation test framework in the spirit of
//! loom and shuttle, vendored and offline-friendly.
//!
//! The model: a test spawns N *virtual threads* (real OS threads that
//! are serialized by a token-passing scheduler so exactly one runs at a
//! time). Instrumented code calls [`yield_point`] at every interesting
//! shared-memory access; each yield point is a point where the seeded
//! scheduler may switch tasks. Given the same seed, the schedule — and
//! therefore the entire execution, including the recorded operation
//! history — is byte-identical across runs, so any failure replays
//! exactly from its printed seed.
//!
//! Three layers:
//!
//! * [`sched`] (only under `feature = "dst"`): the scheduler itself —
//!   [`Sim`] builds and runs a simulation, [`RunOutcome`] carries the
//!   schedule, history and verdict.
//! * [`shim`]: drop-in `Mutex` / atomic types that compile to the bare
//!   std primitives normally and to yield-instrumented versions under
//!   the feature.
//! * [`history`] + [`check`]: the operation vocabulary recorded by the
//!   instrumented crates and the checkers that validate a history
//!   (program order / exactly-once commit, free-list conservation).
//!
//! Production code calls only the free functions below ([`yield_point`],
//! [`yield_now`], [`record`], [`in_task`]); with the feature off they
//! are empty `#[inline]` stubs.

pub mod check;
pub mod history;
#[cfg(feature = "dst")]
pub mod sched;
pub mod shim;

pub use history::{Event, Op};
#[cfg(feature = "dst")]
pub use sched::{Mode, RunOutcome, Sim};

/// A schedule decision point. Under an active simulation the scheduler
/// may suspend the calling virtual thread here and run another; outside
/// a simulation (or with the feature off) it is free.
#[inline(always)]
pub fn yield_point() {
    #[cfg(feature = "dst")]
    sched::yield_point();
}

/// A *voluntary* yield: the caller cannot make progress right now (it
/// is spinning on a try-lock or waiting for another thread's side
/// effect). Under a simulation this forces a reschedule and, under PCT
/// priority schedules, demotes the caller so the thread it is waiting
/// on eventually outranks it — without this, a priority-ordered
/// schedule could livelock on a spin loop. Outside a simulation it is
/// `std::thread::yield_now`.
#[inline]
pub fn yield_now() {
    #[cfg(feature = "dst")]
    if sched::in_task() {
        sched::yield_now_task();
        return;
    }
    std::thread::yield_now();
}

/// Record an operation into the running simulation's history. The
/// closure is only evaluated inside a simulation; with the feature off
/// this compiles to nothing.
#[inline(always)]
pub fn record<F: FnOnce() -> Op>(f: F) {
    #[cfg(feature = "dst")]
    sched::record_op_with(f);
    #[cfg(not(feature = "dst"))]
    let _ = f;
}

/// True only on a virtual thread of an active simulation.
#[inline(always)]
pub fn in_task() -> bool {
    #[cfg(feature = "dst")]
    {
        sched::in_task()
    }
    #[cfg(not(feature = "dst"))]
    {
        false
    }
}

/// The seed corpus for a dst test: `n` defaults to `default_n` and can
/// be raised for deeper exploration with `DST_SEEDS=N`. Seeds are mixed
/// from `base` so different tests explore different schedule spaces
/// even for the same index.
pub fn seed_corpus(base: u64, default_n: u64) -> Vec<u64> {
    let n = std::env::var("DST_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_n);
    (0..n)
        .map(|i| splitmix64(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect()
}

/// SplitMix64: the harness PRNG. Public so tests can derive per-task
/// deterministic streams from the run seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn seed_corpus_is_deterministic_and_sized() {
        // DST_SEEDS overrides the default size (that is its job), so the
        // expected length must honour it — otherwise a soak run
        // (DST_SEEDS=500) would fail this very test.
        let expected = std::env::var("DST_SEEDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(10);
        let a = super::seed_corpus(7, 10);
        let b = super::seed_corpus(7, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), expected);
        let c = super::seed_corpus(8, 10);
        assert_ne!(a, c, "different bases must explore different seeds");
    }

    #[test]
    fn facade_is_safe_outside_simulation() {
        super::yield_point();
        super::yield_now();
        super::record(|| super::Op::FreePop { frame: 0 });
        assert!(!super::in_task());
    }
}
