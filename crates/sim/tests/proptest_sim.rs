//! Property tests for the multiprocessor simulator: structural laws the
//! queueing model must obey regardless of parameters.

use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
use proptest::prelude::*;

fn quick(
    hw: HardwareProfile,
    cpus: usize,
    spec: SystemSpec,
    wl: WorkloadParams,
    seed: u64,
) -> bpw_sim::RunReport {
    let mut p = SimParams::new(hw, cpus, spec, wl);
    p.horizon_ms = 120;
    p.seed = seed;
    simulate(p)
}

fn any_workload() -> impl Strategy<Value = WorkloadParams> {
    prop::sample::select(vec![
        WorkloadParams::dbt1(),
        WorkloadParams::dbt2(),
        WorkloadParams::tablescan(),
    ])
}

fn any_system() -> impl Strategy<Value = SystemKind> {
    prop::sample::select(SystemKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lock-free system's throughput never decreases when processors
    /// are added (it has no serialization to saturate; WAL-free
    /// workloads scale linearly).
    #[test]
    fn clock_throughput_monotone_in_cpus(
        wl in any_workload(),
        seed in 0u64..1000,
    ) {
        let mut prev = 0.0;
        for cpus in [1usize, 2, 4, 8, 16] {
            let r = quick(
                HardwareProfile::altix350(),
                cpus,
                SystemSpec::new(SystemKind::Clock),
                wl.clone(),
                seed,
            );
            prop_assert!(
                r.throughput_tps >= prev * 0.98,
                "throughput fell {prev} -> {} at {cpus} cpus",
                r.throughput_tps
            );
            prev = r.throughput_tps;
        }
    }

    /// Batching never loses to lock-per-access on throughput (beyond
    /// noise), at any processor count.
    #[test]
    fn batching_dominates_lock_per_access(
        wl in any_workload(),
        cpus in prop::sample::select(vec![2usize, 4, 8, 16]),
    ) {
        let q = quick(
            HardwareProfile::altix350(),
            cpus,
            SystemSpec::new(SystemKind::LockPerAccess),
            wl.clone(),
            7,
        );
        let bat = quick(
            HardwareProfile::altix350(),
            cpus,
            SystemSpec::new(SystemKind::Batching),
            wl,
            7,
        );
        prop_assert!(
            bat.throughput_tps >= q.throughput_tps * 0.95,
            "batching ({}) lost to lock-per-access ({}) at {cpus} cpus",
            bat.throughput_tps,
            q.throughput_tps
        );
    }

    /// Conservation: simulated accesses are consistent with completed
    /// transactions and the workload's transaction lengths.
    #[test]
    fn access_counts_are_consistent(
        wl in any_workload(),
        sys in any_system(),
        cpus in prop::sample::select(vec![1usize, 4, 8]),
    ) {
        let min_len = *wl.txn_lengths.iter().min().unwrap() as u64;
        let max_len = *wl.txn_lengths.iter().max().unwrap() as u64;
        let r = quick(HardwareProfile::altix350(), cpus, SystemSpec::new(sys), wl, 11);
        prop_assert!(r.txns > 0, "no transactions completed");
        // Accesses from completed txns plus at most one in-flight txn per
        // thread (threads = cpus + 2).
        let slack = (cpus as u64 + 2) * max_len;
        prop_assert!(r.accesses >= r.txns * min_len);
        prop_assert!(r.accesses <= (r.txns + cpus as u64 + 2) * max_len + slack);
    }

    /// Determinism: identical parameters give identical reports.
    #[test]
    fn runs_are_deterministic(
        wl in any_workload(),
        sys in any_system(),
        seed in 0u64..100,
    ) {
        let a = quick(HardwareProfile::poweredge1900(), 4, SystemSpec::new(sys), wl.clone(), seed);
        let b = quick(HardwareProfile::poweredge1900(), 4, SystemSpec::new(sys), wl, seed);
        prop_assert_eq!(a, b);
    }

    /// Larger batch thresholds never increase the per-access lock time
    /// on a saturated lock (Fig. 2's monotonicity), comparing extremes.
    #[test]
    fn batch_amortization_monotone_at_extremes(
        wl in any_workload(),
    ) {
        let small = quick(
            HardwareProfile::altix350(),
            16,
            SystemSpec::with_batching(SystemKind::Batching, 2, 1),
            wl.clone(),
            3,
        );
        let large = quick(
            HardwareProfile::altix350(),
            16,
            SystemSpec::with_batching(SystemKind::Batching, 64, 32),
            wl,
            3,
        );
        prop_assert!(
            large.lock_time_per_access_us <= small.lock_time_per_access_us,
            "batch 64 ({}) should not cost more per access than batch 2 ({})",
            large.lock_time_per_access_us,
            small.lock_time_per_access_us
        );
    }
}
