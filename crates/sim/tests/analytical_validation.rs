//! Validate the discrete-event simulator against closed-form queueing
//! predictions. A simulation-based reproduction is only as credible as
//! its model; these tests pin the simulator to the places where the
//! right answer is computable by hand.

use bpw_core::SystemKind;
use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};

/// A synthetic workload with *constant* transaction length and no WAL,
/// so throughput is analytically predictable.
fn flat_workload(txn_len: u32, work_ns: u64) -> WorkloadParams {
    WorkloadParams {
        name: "flat".to_owned(),
        txn_lengths: vec![txn_len],
        work_per_access_ns: work_ns,
        txn_overhead_ns: 0,
        wal_cs_ns: 0,
        miss_ratio: 0.0,
        io_ns: 0,
        io_channels: 1,
    }
}

fn run(cpus: usize, kind: SystemKind, wl: WorkloadParams) -> bpw_sim::RunReport {
    let mut p = SimParams::new(HardwareProfile::altix350(), cpus, SystemSpec::new(kind), wl);
    p.horizon_ms = 500;
    simulate(p)
}

/// With no lock at all (pgClock, hit cost folded into compute), the
/// machine is a perfect P-server: throughput = P / per_txn_work.
#[test]
fn lock_free_throughput_matches_capacity() {
    let hw = HardwareProfile::altix350();
    let txn_len = 50u32;
    let work = 4_000u64;
    for cpus in [1usize, 4, 16] {
        let r = run(cpus, SystemKind::Clock, flat_workload(txn_len, work));
        // Mean per-access compute includes the clock bit-set and the
        // ±40% jitter (mean 1.0 × work).
        let per_txn_ns = (work + hw.clock_hit_ns) as f64 * txn_len as f64;
        let predicted = cpus as f64 * 1e9 / per_txn_ns;
        let ratio = r.throughput_tps / predicted;
        assert!(
            (0.9..=1.05).contains(&ratio),
            "{cpus} cpus: simulated {:.0} vs predicted {predicted:.0} (ratio {ratio:.3})",
            r.throughput_tps
        );
    }
}

/// With a lock on every access and enough processors, the lock is the
/// bottleneck: access throughput = 1 / mean-hold-time. The simulator's
/// saturated throughput must match that bound within queueing slack.
#[test]
fn saturated_lock_throughput_matches_service_rate() {
    let hw = HardwareProfile::altix350();
    let txn_len = 50u32;
    let work = 4_000u64;
    let cpus = 16;
    let r = run(
        cpus,
        SystemKind::LockPerAccess,
        flat_workload(txn_len, work),
    );
    // Serialized time per access: scaled acquisition + warm-up + body.
    let acquire = hw.lock_acquire_ns as f64 * (1.0 + hw.coherence_per_cpu * cpus as f64);
    let hold = acquire + (hw.cs_warmup_ns + hw.cs_per_access_ns) as f64;
    let max_access_rate = 1e9 / hold;
    let predicted_tps = max_access_rate / txn_len as f64;
    // Demand check: parallel capacity would be ~3.3x the lock rate, so
    // the lock must be saturated and throughput within [0.5, 1.05] of
    // the service bound (wake-up latencies eat some of it).
    let ratio = r.throughput_tps / predicted_tps;
    assert!(
        (0.5..=1.05).contains(&ratio),
        "saturated lock: simulated {:.0} vs bound {predicted_tps:.0} (ratio {ratio:.3})",
        r.throughput_tps
    );
    // And it must be far below the lock-free capacity.
    let clock = run(cpus, SystemKind::Clock, flat_workload(txn_len, work));
    assert!(r.throughput_tps < 0.5 * clock.throughput_tps);
}

/// Batching divides the serialized cost per access by ~the batch size:
/// the saturated batched system must sustain close to the amortized
/// bound.
#[test]
fn batched_throughput_matches_amortized_bound() {
    let hw = HardwareProfile::altix350();
    let txn_len = 50u32;
    let work = 1_000u64; // heavy pressure so even batching saturates
    let cpus = 16;
    let spec = SystemSpec::with_batching(SystemKind::Batching, 64, 32);
    let mut p = SimParams::new(hw, cpus, spec, flat_workload(txn_len, work));
    p.horizon_ms = 500;
    let r = simulate(p);
    // Per-access serialized share at batch ~B >= 32.
    let acquire = hw.lock_acquire_ns as f64 * (1.0 + hw.coherence_per_cpu * cpus as f64);
    let b = r.accesses_per_acquisition.max(32.0);
    let per_access = (acquire + hw.cs_warmup_ns as f64) / b + hw.cs_per_access_ns as f64;
    let bound_tps = 1e9 / per_access / txn_len as f64;
    // Parallel capacity bound.
    let cap_tps = cpus as f64 * 1e9 / ((work + hw.queue_push_ns) as f64 * txn_len as f64);
    let predicted = bound_tps.min(cap_tps);
    let ratio = r.throughput_tps / predicted;
    assert!(
        (0.6..=1.1).contains(&ratio),
        "batched: simulated {:.0} vs predicted {predicted:.0} (ratio {ratio:.3}, B={b:.1})",
        r.throughput_tps
    );
}

/// Response time at an uncontended single CPU equals txn service time.
#[test]
fn single_cpu_response_time_is_service_time() {
    let txn_len = 50u32;
    let work = 4_000u64;
    let wl = flat_workload(txn_len, work);
    let mut p = SimParams::new(
        HardwareProfile::altix350(),
        1,
        SystemSpec::new(SystemKind::Clock),
        wl,
    );
    p.threads = 1; // no queueing at all
    p.horizon_ms = 200;
    let r = simulate(p);
    let hw = HardwareProfile::altix350();
    let service_ms = (work + hw.clock_hit_ns) as f64 * txn_len as f64 / 1e6;
    let ratio = r.avg_response_ms / service_ms;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "response {:.4} ms vs service {:.4} ms",
        r.avg_response_ms,
        service_ms
    );
}
