//! Sweep helpers: run grids of (system × processor-count) simulations
//! and collect series, so experiment binaries and tests share one
//! well-tested driver instead of hand-rolled loops.

use bpw_core::SystemKind;

use crate::engine::{simulate, RunReport, SimParams, SystemSpec};
use crate::profile::{HardwareProfile, WorkloadParams};

/// One system's results across a processor sweep.
#[derive(Debug, Clone)]
pub struct Series {
    /// System swept.
    pub system: SystemKind,
    /// `(cpus, report)` pairs in ascending processor order.
    pub points: Vec<(usize, RunReport)>,
}

impl Series {
    /// Report at exactly `cpus`, if present.
    pub fn at(&self, cpus: usize) -> Option<&RunReport> {
        self.points.iter().find(|(c, _)| *c == cpus).map(|(_, r)| r)
    }

    /// Throughput of the last (largest-CPU) point.
    pub fn final_throughput(&self) -> f64 {
        self.points
            .last()
            .map(|(_, r)| r.throughput_tps)
            .unwrap_or(0.0)
    }

    /// Parallel speedup from the first to the last point.
    pub fn speedup(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some((_, a)), Some((_, b))) if a.throughput_tps > 0.0 => {
                b.throughput_tps / a.throughput_tps
            }
            _ => 0.0,
        }
    }
}

/// A full grid: every Table I system over `cpu_points`.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One series per system, in `SystemKind::ALL` order.
    pub series: Vec<Series>,
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: &'static str,
}

impl SweepResult {
    /// Series for one system.
    pub fn system(&self, kind: SystemKind) -> &Series {
        self.series
            .iter()
            .find(|s| s.system == kind)
            .expect("all systems swept")
    }
}

/// Run the paper's five systems across `cpu_points` for one workload.
pub fn sweep_systems(
    hw: HardwareProfile,
    workload: &WorkloadParams,
    cpu_points: &[usize],
    horizon_ms: u64,
) -> SweepResult {
    let series = SystemKind::ALL
        .iter()
        .map(|&kind| Series {
            system: kind,
            points: cpu_points
                .iter()
                .map(|&cpus| {
                    let mut p = SimParams::new(hw, cpus, SystemSpec::new(kind), workload.clone());
                    p.horizon_ms = horizon_ms;
                    (cpus, simulate(p))
                })
                .collect(),
        })
        .collect();
    SweepResult {
        series,
        workload: workload.name.clone(),
        machine: hw.name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let r = sweep_systems(
            HardwareProfile::altix350(),
            &WorkloadParams::tablescan(),
            &[1, 4],
            60,
        );
        assert_eq!(r.series.len(), SystemKind::ALL.len());
        for s in &r.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.at(1).is_some() && s.at(4).is_some());
            assert!(s.final_throughput() > 0.0);
        }
        assert_eq!(r.machine, "Altix350");
    }

    #[test]
    fn speedup_reflects_scaling() {
        let r = sweep_systems(
            HardwareProfile::altix350(),
            &WorkloadParams::dbt1(),
            &[1, 8],
            120,
        );
        let clock = r.system(SystemKind::Clock).speedup();
        let q = r.system(SystemKind::LockPerAccess).speedup();
        assert!(
            clock > q,
            "lock-free must out-scale lock-per-access ({clock} vs {q})"
        );
        assert!(clock > 6.0, "clock should scale near-linearly to 8 cpus");
    }
}
