//! The discrete-event multiprocessor simulator.
//!
//! Models `P` virtual processors running `N >= P` database backend
//! threads (the paper keeps the system overcommitted), a FIFO
//! replacement-algorithm lock, an optional WAL lock, and a storage
//! device with bounded concurrency. Each system configuration (Table I)
//! turns a stream of page accesses into a different pattern of compute
//! segments, lock requests, and critical sections; the simulator then
//! reports the paper's three metrics — throughput, average response
//! time, and lock contentions per million accesses.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bpw_core::{Combining, SystemKind};
use bpw_metrics::Histogram;

use crate::profile::{HardwareProfile, WorkloadParams};

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One simulated system: a Table I row plus batching parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemSpec {
    /// Which of the five systems.
    pub kind: SystemKind,
    /// FIFO queue size `S` (batching systems).
    pub queue_size: u32,
    /// Batch threshold `T`.
    pub batch_threshold: u32,
    /// Combining commit mode (batching systems): `Overflow` publishes a
    /// full queue instead of blocking; `Flat` publishes on any contended
    /// threshold crossing, and lock holders drain every pending slot
    /// (bounded passes) before releasing.
    pub combining: Combining,
}

impl SystemSpec {
    /// Paper defaults: S = 64, T = 32.
    pub fn new(kind: SystemKind) -> Self {
        SystemSpec {
            kind,
            queue_size: 64,
            batch_threshold: 32,
            combining: Combining::Off,
        }
    }

    /// Override the batching parameters (§IV-E sweeps).
    pub fn with_batching(kind: SystemKind, queue_size: u32, batch_threshold: u32) -> Self {
        assert!(queue_size >= 1 && (1..=queue_size).contains(&batch_threshold));
        SystemSpec {
            kind,
            queue_size,
            batch_threshold,
            combining: Combining::Off,
        }
    }

    /// Enable a combining commit mode (batching systems only).
    pub fn with_combining(mut self, mode: Combining) -> Self {
        self.combining = mode;
        self
    }

    fn prefetching(&self) -> bool {
        matches!(
            self.kind,
            SystemKind::Prefetching | SystemKind::BatchingPrefetching
        )
    }
}

/// Everything a simulation run needs.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Machine cost model.
    pub hardware: HardwareProfile,
    /// Processors enabled for this run (<= hardware.cpus).
    pub cpus: usize,
    /// Backend threads (paper: more than processors, keeping CPUs busy).
    pub threads: usize,
    /// System under test.
    pub system: SystemSpec,
    /// Workload cost model.
    pub workload: WorkloadParams,
    /// Virtual time to simulate.
    pub horizon_ms: u64,
    /// RNG seed (miss draws).
    pub seed: u64,
}

impl SimParams {
    /// A run with the paper's overcommit convention (threads = cpus + 2).
    pub fn new(
        hardware: HardwareProfile,
        cpus: usize,
        system: SystemSpec,
        workload: WorkloadParams,
    ) -> Self {
        assert!(cpus >= 1);
        SimParams {
            hardware,
            cpus,
            threads: cpus + 2,
            system,
            workload,
            horizon_ms: 2_000,
            seed: 0x5EED,
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Transactions completed per second of virtual time.
    pub throughput_tps: f64,
    /// Mean transaction response time in milliseconds.
    pub avg_response_ms: f64,
    /// 95th-percentile transaction response time in milliseconds
    /// (bucket-resolution: within a factor of two).
    pub p95_response_ms: f64,
    /// Worst observed transaction response time in milliseconds.
    pub max_response_ms: f64,
    /// Replacement-lock contentions per million page accesses
    /// (the paper's "average lock contention").
    pub contentions_per_million: f64,
    /// Fig. 2's metric: mean (wait + hold) lock time per covered access,
    /// in microseconds.
    pub lock_time_per_access_us: f64,
    /// Mean accesses committed per replacement-lock acquisition.
    pub accesses_per_acquisition: f64,
    /// Total page accesses simulated.
    pub accesses: u64,
    /// Transactions completed.
    pub txns: u64,
    /// Replacement-lock blocked acquisitions.
    pub contentions: u64,
    /// Failed try-lock attempts.
    pub trylock_failures: u64,
    /// Batches published to a combining slot instead of blocking.
    pub publishes: u64,
    /// Published batches drained by other threads' lock tenures.
    pub combined_batches: u64,
}

// --- internal machinery ----------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cont {
    /// Compute for the current access finished; run the replacement step.
    AccessWorkDone,
    /// Critical section on the replacement lock finished.
    ReplCsDone,
    /// Critical section on the WAL lock finished.
    WalCsDone,
    /// Transaction finished off-CPU (after I/O); acquire the WAL lock
    /// now that a processor is held.
    TxnEndWal,
    /// Woken waiter retries the replacement lock (barging semantics).
    ReplRetry,
    /// Woken waiter retries the WAL lock.
    WalRetry,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wake {
    Segment(Cont),
    IoDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: Time,
    seq: u64,
}

struct Thread {
    txn_len: u32,
    access_idx: u32,
    txn_start: Time,
    txn_counter: usize,
    batch_fill: u32,
    /// CS duration to execute once a blocked lock request is granted.
    pending_cs: u64,
    /// Accesses the pending/running CS commits.
    pending_commit: u64,
    /// Accesses sitting in this thread's publication slot (0 = none).
    published: u64,
    /// The access that triggered the CS was a miss (I/O follows).
    miss_pending: bool,
    /// When the thread first blocked on its current lock wait.
    wait_since: Time,
    rng: u64,
    txns_done: u64,
    resp_sum_ns: u64,
}

#[derive(Default)]
struct LockTally {
    acquisitions: u64,
    contentions: u64,
    trylock_failures: u64,
    wait_ns: u64,
    hold_ns: u64,
    accesses_covered: u64,
}

struct Lock {
    held: bool,
    hold_start: Time,
    waiters: VecDeque<(usize, Time)>,
    tally: LockTally,
}

impl Lock {
    fn new() -> Self {
        Lock {
            held: false,
            hold_start: 0,
            waiters: VecDeque::new(),
            tally: LockTally::default(),
        }
    }
}

/// The simulator.
pub struct Sim {
    p: SimParams,
    now: Time,
    seq: u64,
    events: BinaryHeap<Reverse<(EventKey, usize, WakeRepr)>>,
    threads: Vec<Thread>,
    free_cpus: usize,
    run_queue: VecDeque<(usize, u64, Cont)>,
    repl: Lock,
    wal: Lock,
    io_busy: usize,
    io_queue: VecDeque<usize>,
    total_accesses: u64,
    /// Failed try-locks since the replacement lock was last acquired;
    /// each one bounced the lock's cache line under the current holder.
    trylock_pressure: u64,
    /// Threads with a batch sitting in their publication slot, in
    /// publish order (the combiner's drain order).
    pending_pubs: VecDeque<usize>,
    /// Drain passes the current lock tenure has already run.
    drain_passes: u32,
    publishes: u64,
    combined_batches: u64,
    response_hist: Histogram,
    horizon: Time,
}

// BinaryHeap needs Ord; encode Wake compactly.
type WakeRepr = u8;

fn encode(w: Wake) -> WakeRepr {
    match w {
        Wake::Segment(Cont::AccessWorkDone) => 0,
        Wake::Segment(Cont::ReplCsDone) => 1,
        Wake::Segment(Cont::WalCsDone) => 2,
        Wake::Segment(Cont::TxnEndWal) => 3,
        Wake::Segment(Cont::ReplRetry) => 4,
        Wake::Segment(Cont::WalRetry) => 5,
        Wake::IoDone => 6,
    }
}

fn decode(w: WakeRepr) -> Wake {
    match w {
        0 => Wake::Segment(Cont::AccessWorkDone),
        1 => Wake::Segment(Cont::ReplCsDone),
        2 => Wake::Segment(Cont::WalCsDone),
        3 => Wake::Segment(Cont::TxnEndWal),
        4 => Wake::Segment(Cont::ReplRetry),
        5 => Wake::Segment(Cont::WalRetry),
        _ => Wake::IoDone,
    }
}

impl Sim {
    /// Build a simulator for `params`.
    pub fn new(params: SimParams) -> Self {
        assert!(
            params.threads >= params.cpus,
            "must not leave processors idle"
        );
        assert!(!params.workload.txn_lengths.is_empty());
        let threads = (0..params.threads)
            .map(|i| Thread {
                txn_len: 0,
                access_idx: 0,
                txn_start: 0,
                txn_counter: i * 7, // de-phase the length sequence per thread
                batch_fill: 0,
                pending_cs: 0,
                pending_commit: 0,
                published: 0,
                miss_pending: false,
                wait_since: 0,
                rng: params.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                txns_done: 0,
                resp_sum_ns: 0,
            })
            .collect();
        let horizon = params.horizon_ms * 1_000_000;
        Sim {
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            threads,
            free_cpus: params.cpus,
            run_queue: VecDeque::new(),
            repl: Lock::new(),
            wal: Lock::new(),
            io_busy: 0,
            io_queue: VecDeque::new(),
            total_accesses: 0,
            trylock_pressure: 0,
            pending_pubs: VecDeque::new(),
            drain_passes: 0,
            publishes: 0,
            combined_batches: 0,
            response_hist: Histogram::new(),
            horizon,
            p: params,
        }
    }

    fn rand_f64(&mut self, th: usize) -> f64 {
        // xorshift64*: cheap deterministic per-thread stream.
        let t = &mut self.threads[th];
        t.rng ^= t.rng << 13;
        t.rng ^= t.rng >> 7;
        t.rng ^= t.rng << 17;
        (t.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    fn work_ns(&self) -> u64 {
        (self.p.workload.work_per_access_ns as f64 / self.p.hardware.work_speedup) as u64
    }

    /// Lock acquisition cost, growing with enabled processors (coherence
    /// traffic on the lock's cache line crosses more caches).
    fn acquire_ns(&self) -> u64 {
        (self.p.hardware.lock_acquire_ns as f64
            * (1.0 + self.p.hardware.coherence_per_cpu * self.p.cpus as f64)) as u64
    }

    /// Extra critical-section time from try-lock CAS traffic since the
    /// last acquisition (bounded: the line settles once waiters back off).
    fn take_interference_ns(&mut self) -> u64 {
        let n = std::mem::take(&mut self.trylock_pressure).min(64);
        n * self.p.hardware.trylock_interference_ns
    }

    /// Effective warm-up cost inside the critical section.
    fn warmup_ns(&self) -> u64 {
        if self.p.system.prefetching() {
            (self.p.hardware.cs_warmup_ns as f64 * (1.0 - self.p.hardware.prefetch_efficiency))
                as u64
        } else {
            self.p.hardware.cs_warmup_ns
        }
    }

    fn push_event(&mut self, at: Time, th: usize, wake: Wake) {
        self.seq += 1;
        self.events.push(Reverse((
            EventKey {
                time: at,
                seq: self.seq,
            },
            th,
            encode(wake),
        )));
    }

    /// Give `th` a CPU (or queue it) to run a segment of `dur` ns.
    fn schedule_run(&mut self, th: usize, dur: u64, cont: Cont) {
        if self.free_cpus > 0 {
            self.free_cpus -= 1;
            self.push_event(self.now + dur.max(1), th, Wake::Segment(cont));
        } else {
            self.run_queue.push_back((th, dur, cont));
        }
    }

    /// `th` keeps its CPU and chains straight into the next segment.
    fn continue_run(&mut self, th: usize, dur: u64, cont: Cont) {
        self.push_event(self.now + dur.max(1), th, Wake::Segment(cont));
    }

    /// `th` gives up its CPU; hand it to the next queued thread.
    fn release_cpu(&mut self) {
        match self.run_queue.pop_front() {
            Some((th, dur, cont)) => {
                // Dispatch from the run queue costs a context switch.
                let d = dur + self.p.hardware.context_switch_ns;
                self.push_event(self.now + d.max(1), th, Wake::Segment(cont));
            }
            None => self.free_cpus += 1,
        }
    }

    /// Begin a new transaction for `th`; chains the first compute segment
    /// (caller decides chain vs schedule via `on_cpu`).
    fn start_txn(&mut self, th: usize, on_cpu: bool) {
        let lens = &self.p.workload.txn_lengths;
        let t = &mut self.threads[th];
        t.txn_len = lens[t.txn_counter % lens.len()].max(1);
        t.txn_counter += 1;
        t.access_idx = 0;
        t.txn_start = self.now;
        let dur = self.p.workload.txn_overhead_ns + self.access_compute_ns(th);
        if on_cpu {
            self.continue_run(th, dur, Cont::AccessWorkDone);
        } else {
            self.schedule_run(th, dur, Cont::AccessWorkDone);
        }
    }

    /// Compute time for one access, including the system's hit-path
    /// extras that happen outside any lock. Durations carry +/-40%
    /// uniform jitter: without variance the simulated threads phase-lock
    /// and collisions (hence contentions) are artificially suppressed.
    fn access_compute_ns(&mut self, th: usize) -> u64 {
        let jitter = 0.6 + 0.8 * self.rand_f64(th);
        let mut d = (self.work_ns() as f64 * jitter) as u64;
        match self.p.system.kind {
            SystemKind::Clock => d += self.p.hardware.clock_hit_ns,
            SystemKind::LockPerAccess => {}
            SystemKind::Prefetching => d += self.p.hardware.prefetch_issue_ns,
            SystemKind::Batching => d += self.p.hardware.queue_push_ns,
            SystemKind::BatchingPrefetching => {
                d += self.p.hardware.queue_push_ns + self.p.hardware.prefetch_issue_ns
            }
        }
        d
    }

    /// Take back `th`'s published batch, if any, as it acquires the
    /// lock: the real wrapper reclaims before committing newer accesses
    /// so program order holds. Returns the reclaimed entry count.
    fn reclaim_own(&mut self, th: usize) -> u64 {
        let entries = std::mem::take(&mut self.threads[th].published);
        if entries > 0 {
            self.pending_pubs.retain(|&t| t != th);
        }
        entries
    }

    /// Publish `entries` into `th`'s slot instead of blocking, if the
    /// configured combining mode allows and the slot is empty. The
    /// thread keeps its CPU; a later lock holder drains the batch.
    fn try_publish(&mut self, th: usize, entries: u64) -> bool {
        if !self.p.system.combining.is_enabled() || self.threads[th].published > 0 {
            return false;
        }
        self.threads[th].published = entries;
        self.threads[th].batch_fill = 0;
        self.pending_pubs.push_back(th);
        self.publishes += 1;
        true
    }

    /// One drain pass at the end of a lock tenure: the holder applies
    /// every batch currently published, extending its critical section,
    /// up to [`bpw_core::MAX_COMBINE_PASSES`] passes per tenure (the
    /// fairness bound). Returns true when a pass was chained (the lock
    /// stays held and another `ReplCsDone` follows).
    fn combine_pass(&mut self, th: usize) -> bool {
        if !self.p.system.combining.is_enabled()
            || self.drain_passes >= bpw_core::MAX_COMBINE_PASSES
            || self.pending_pubs.is_empty()
        {
            return false;
        }
        let mut entries = 0;
        while let Some(t) = self.pending_pubs.pop_front() {
            entries += std::mem::take(&mut self.threads[t].published);
            self.combined_batches += 1;
        }
        self.drain_passes += 1;
        self.threads[th].pending_commit = entries;
        let cost = self.p.hardware.cs_per_access_ns * entries;
        self.continue_run(th, cost.max(1), Cont::ReplCsDone);
        true
    }

    /// Blocking lock request on the replacement lock. Returns true if the
    /// thread keeps running (lock granted immediately).
    ///
    /// Barging semantics (as in PostgreSQL LWLocks and `parking_lot`):
    /// a running thread takes a free lock even if sleepers are queued;
    /// a releaser frees the lock and *wakes* the front sleeper, which
    /// must win the race once it is scheduled again. This is what makes
    /// blocking so expensive at high concurrency — the context switch —
    /// without the convoy collapse strict FIFO handoff would add.
    fn lock_blocking(&mut self, th: usize, cs: u64, commit: u64) -> bool {
        if !self.repl.held {
            self.repl.held = true;
            self.repl.hold_start = self.now;
            self.repl.tally.acquisitions += 1;
            self.drain_passes = 0;
            let reclaimed = self.reclaim_own(th);
            self.threads[th].pending_commit = commit + reclaimed;
            let jam = self.take_interference_ns();
            let cs = cs + self.p.hardware.cs_per_access_ns * reclaimed;
            self.continue_run(th, self.acquire_ns() + cs + jam, Cont::ReplCsDone);
            true
        } else {
            self.repl.tally.contentions += 1;
            self.threads[th].pending_cs = cs;
            self.threads[th].pending_commit = commit;
            self.threads[th].wait_since = self.now;
            self.repl.waiters.push_back((th, self.now));
            self.release_cpu();
            false
        }
    }

    /// A woken waiter, now on a CPU, retries the replacement lock.
    fn repl_retry(&mut self, th: usize) {
        if !self.repl.held {
            self.repl.held = true;
            self.repl.hold_start = self.now;
            self.repl.tally.acquisitions += 1;
            self.repl.tally.wait_ns += self.now - self.threads[th].wait_since;
            self.drain_passes = 0;
            let reclaimed = self.reclaim_own(th);
            self.threads[th].pending_commit += reclaimed;
            let cs = self.threads[th].pending_cs + self.p.hardware.cs_per_access_ns * reclaimed;
            let jam = self.take_interference_ns();
            self.continue_run(th, self.acquire_ns() + cs + jam, Cont::ReplCsDone);
        } else {
            // Lost the race to a barger: back to the front of the queue
            // (no new contention counted — same logical wait).
            let since = self.threads[th].wait_since;
            self.repl.waiters.push_front((th, since));
            self.release_cpu();
        }
    }

    /// Release the replacement lock and wake the front waiter.
    fn unlock_repl(&mut self) {
        self.repl.tally.hold_ns += self.now - self.repl.hold_start;
        self.repl.held = false;
        if let Some((next, _enq)) = self.repl.waiters.pop_front() {
            // Waking a sleeper costs a context switch before it can retry.
            self.schedule_run(next, self.p.hardware.context_switch_ns, Cont::ReplRetry);
        }
    }

    /// Same machinery for the WAL lock (no per-access accounting).
    fn wal_lock_blocking(&mut self, th: usize, cs: u64) -> bool {
        if !self.wal.held {
            self.wal.held = true;
            self.wal.hold_start = self.now;
            self.wal.tally.acquisitions += 1;
            self.continue_run(th, self.acquire_ns() + cs, Cont::WalCsDone);
            true
        } else {
            self.wal.tally.contentions += 1;
            self.threads[th].pending_cs = cs;
            self.threads[th].wait_since = self.now;
            self.wal.waiters.push_back((th, self.now));
            self.release_cpu();
            false
        }
    }

    /// A woken waiter retries the WAL lock.
    fn wal_retry(&mut self, th: usize) {
        if !self.wal.held {
            self.wal.held = true;
            self.wal.hold_start = self.now;
            self.wal.tally.acquisitions += 1;
            self.wal.tally.wait_ns += self.now - self.threads[th].wait_since;
            let cs = self.threads[th].pending_cs;
            self.continue_run(th, self.acquire_ns() + cs, Cont::WalCsDone);
        } else {
            let since = self.threads[th].wait_since;
            self.wal.waiters.push_front((th, since));
            self.release_cpu();
        }
    }

    fn unlock_wal(&mut self) {
        self.wal.tally.hold_ns += self.now - self.wal.hold_start;
        self.wal.held = false;
        if let Some((next, _enq)) = self.wal.waiters.pop_front() {
            self.schedule_run(next, self.p.hardware.context_switch_ns, Cont::WalRetry);
        }
    }

    /// The replacement step after an access's compute finished.
    /// The thread currently holds a CPU.
    fn access_work_done(&mut self, th: usize) {
        self.total_accesses += 1;
        let hw = self.p.hardware;
        let is_miss =
            self.p.workload.miss_ratio > 0.0 && self.rand_f64(th) < self.p.workload.miss_ratio;

        if is_miss {
            // Miss path: always a blocking lock; commits the queue too.
            let fill = self.threads[th].batch_fill as u64;
            let cs = self.warmup_ns() + hw.cs_per_access_ns * (fill + 1);
            self.threads[th].batch_fill = 0;
            self.threads[th].miss_pending = true;
            self.lock_blocking(th, cs, fill + 1);
            return;
        }

        match self.p.system.kind {
            SystemKind::Clock => {
                // Lock-free hit: proceed straight to the next access.
                self.advance_access(th, true);
            }
            SystemKind::LockPerAccess | SystemKind::Prefetching => {
                let cs = self.warmup_ns() + hw.cs_per_access_ns;
                self.lock_blocking(th, cs, 1);
            }
            SystemKind::Batching | SystemKind::BatchingPrefetching => {
                let t = &mut self.threads[th];
                t.batch_fill += 1;
                let fill = t.batch_fill;
                if fill >= self.p.system.queue_size {
                    // Queue full: paper line 13, blocking Lock() — unless
                    // a combining slot can take the batch instead.
                    if self.repl.held && self.try_publish(th, fill as u64) {
                        self.advance_access(th, true);
                    } else {
                        let cs = self.warmup_ns() + hw.cs_per_access_ns * fill as u64;
                        self.threads[th].batch_fill = 0;
                        self.lock_blocking(th, cs, fill as u64);
                    }
                } else if fill >= self.p.system.batch_threshold {
                    // TryLock(): free -> commit now; busy -> flat
                    // combining publishes, otherwise keep going.
                    if !self.repl.held {
                        self.repl.held = true;
                        self.repl.hold_start = self.now;
                        self.repl.tally.acquisitions += 1;
                        self.drain_passes = 0;
                        let reclaimed = self.reclaim_own(th);
                        let commit = fill as u64 + reclaimed;
                        let cs = self.warmup_ns() + hw.cs_per_access_ns * commit;
                        self.threads[th].batch_fill = 0;
                        self.threads[th].pending_commit = commit;
                        let jam = self.take_interference_ns();
                        self.continue_run(th, hw.trylock_ns + cs + jam, Cont::ReplCsDone);
                    } else {
                        self.repl.tally.trylock_failures += 1;
                        self.trylock_pressure += 1;
                        if self.p.system.combining == Combining::Flat {
                            self.try_publish(th, fill as u64);
                        }
                        // Failure costs a few ns, folded into the next
                        // access's compute; continue without the lock.
                        self.advance_access(th, true);
                    }
                } else {
                    self.advance_access(th, true);
                }
            }
        }
    }

    /// Move to the next access or finish the transaction. The thread
    /// holds a CPU iff `on_cpu`.
    fn advance_access(&mut self, th: usize, on_cpu: bool) {
        let t = &mut self.threads[th];
        t.access_idx += 1;
        if t.access_idx < t.txn_len {
            let dur = self.access_compute_ns(th);
            if on_cpu {
                self.continue_run(th, dur, Cont::AccessWorkDone);
            } else {
                self.schedule_run(th, dur, Cont::AccessWorkDone);
            }
            return;
        }
        // Transaction complete.
        t.txns_done += 1;
        let resp = self.now - t.txn_start;
        t.resp_sum_ns += resp;
        self.response_hist.record(resp);
        let wal = self.p.workload.wal_cs_ns;
        if wal > 0 {
            if on_cpu {
                self.wal_lock_blocking(th, wal);
            } else {
                // Came back from I/O: get a CPU first, then take the lock.
                self.schedule_run(th, 1, Cont::TxnEndWal);
            }
        } else {
            self.start_txn(th, on_cpu);
        }
    }

    fn io_start(&mut self, th: usize) {
        if self.io_busy < self.p.workload.io_channels {
            self.io_busy += 1;
            self.push_event(self.now + self.p.workload.io_ns, th, Wake::IoDone);
        } else {
            self.io_queue.push_back(th);
        }
    }

    fn io_done(&mut self, th: usize) {
        self.io_busy -= 1;
        if let Some(next) = self.io_queue.pop_front() {
            self.io_busy += 1;
            self.push_event(self.now + self.p.workload.io_ns, next, Wake::IoDone);
        }
        // Page arrived; continue with the next access (needs a CPU).
        self.advance_access(th, false);
    }

    /// Run to the horizon and report.
    pub fn run(mut self) -> RunReport {
        // Kick off every thread.
        for th in 0..self.p.threads {
            self.start_txn(th, false);
        }
        while let Some(Reverse((key, th, wake))) = self.events.pop() {
            if key.time > self.horizon {
                break;
            }
            self.now = key.time;
            match decode(wake) {
                Wake::Segment(Cont::AccessWorkDone) => {
                    self.access_work_done(th);
                }
                Wake::Segment(Cont::ReplCsDone) => {
                    let commit = self.threads[th].pending_commit;
                    self.repl.tally.accesses_covered += commit;
                    self.threads[th].pending_commit = 0;
                    if self.combine_pass(th) {
                        // Lock retained: a drain pass was chained and
                        // ends in another ReplCsDone.
                        continue;
                    }
                    self.unlock_repl();
                    if self.threads[th].miss_pending {
                        self.threads[th].miss_pending = false;
                        self.release_cpu();
                        self.io_start(th);
                    } else {
                        self.advance_access(th, true);
                    }
                }
                Wake::Segment(Cont::WalCsDone) => {
                    self.unlock_wal();
                    self.start_txn(th, true);
                }
                Wake::Segment(Cont::TxnEndWal) => {
                    self.wal_lock_blocking(th, self.p.workload.wal_cs_ns);
                }
                Wake::Segment(Cont::ReplRetry) => {
                    self.repl_retry(th);
                }
                Wake::Segment(Cont::WalRetry) => {
                    self.wal_retry(th);
                }
                Wake::IoDone => {
                    self.io_done(th);
                }
            }
        }

        let txns: u64 = self.threads.iter().map(|t| t.txns_done).sum();
        let resp: u64 = self.threads.iter().map(|t| t.resp_sum_ns).sum();
        let horizon_s = self.horizon as f64 / 1e9;
        let t = &self.repl.tally;
        RunReport {
            throughput_tps: txns as f64 / horizon_s,
            avg_response_ms: if txns == 0 {
                0.0
            } else {
                resp as f64 / txns as f64 / 1e6
            },
            p95_response_ms: self.response_hist.quantile(0.95) as f64 / 1e6,
            max_response_ms: self.response_hist.max() as f64 / 1e6,
            contentions_per_million: if self.total_accesses == 0 {
                0.0
            } else {
                t.contentions as f64 * 1e6 / self.total_accesses as f64
            },
            lock_time_per_access_us: if t.accesses_covered == 0 {
                0.0
            } else {
                (t.wait_ns + t.hold_ns) as f64 / t.accesses_covered as f64 / 1e3
            },
            accesses_per_acquisition: if t.acquisitions == 0 {
                0.0
            } else {
                t.accesses_covered as f64 / t.acquisitions as f64
            },
            accesses: self.total_accesses,
            txns,
            contentions: t.contentions,
            trylock_failures: t.trylock_failures,
            publishes: self.publishes,
            combined_batches: self.combined_batches,
        }
    }
}

/// Convenience: build and run in one call.
pub fn simulate(params: SimParams) -> RunReport {
    Sim::new(params).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: SystemKind, cpus: usize, wl: WorkloadParams) -> RunReport {
        let mut p = SimParams::new(HardwareProfile::altix350(), cpus, SystemSpec::new(kind), wl);
        p.horizon_ms = 300;
        simulate(p)
    }

    #[test]
    fn clock_scales_nearly_linearly() {
        let t1 = quick(SystemKind::Clock, 1, WorkloadParams::dbt1()).throughput_tps;
        let t8 = quick(SystemKind::Clock, 8, WorkloadParams::dbt1()).throughput_tps;
        let t16 = quick(SystemKind::Clock, 16, WorkloadParams::dbt1()).throughput_tps;
        assert!(t8 > 6.0 * t1, "8 cpus should give near-8x: {t1} -> {t8}");
        assert!(
            t16 > 11.0 * t1,
            "16 cpus should stay near-linear: {t1} -> {t16}"
        );
    }

    #[test]
    fn lock_per_access_saturates() {
        let t1 = quick(SystemKind::LockPerAccess, 1, WorkloadParams::dbt1()).throughput_tps;
        let t16 = quick(SystemKind::LockPerAccess, 16, WorkloadParams::dbt1()).throughput_tps;
        let clock16 = quick(SystemKind::Clock, 16, WorkloadParams::dbt1()).throughput_tps;
        assert!(
            t16 < 8.0 * t1,
            "pgQ must saturate well below linear: 1cpu {t1}, 16cpu {t16}"
        );
        assert!(t16 < 0.7 * clock16, "pgQ must trail pgClock at 16 cpus");
    }

    #[test]
    fn full_wrapper_matches_clock() {
        let wl = WorkloadParams::dbt1;
        let clock = quick(SystemKind::Clock, 16, wl());
        let full = quick(SystemKind::BatchingPrefetching, 16, wl());
        let ratio = full.throughput_tps / clock.throughput_tps;
        assert!(
            ratio > 0.9,
            "pgBatPre should track pgClock within 10%: ratio {ratio:.3}"
        );
    }

    #[test]
    fn contention_ordering_matches_paper() {
        // pgQ >> pgPre > pgBat >= pgBatPre in contentions per million.
        // Measured below saturation (2 cpus): once the lock saturates the
        // two unbatched systems both block on nearly every access and
        // prefetching's edge disappears — exactly the paper's observation
        // that pgPre's contention reduction shrinks as processors grow
        // (14.7% at 2 cpus down to 3.6% at 16).
        let wl = WorkloadParams::tablescan;
        let q = quick(SystemKind::LockPerAccess, 2, wl());
        let pre = quick(SystemKind::Prefetching, 2, wl());
        let bat = quick(SystemKind::Batching, 2, wl());
        let both = quick(SystemKind::BatchingPrefetching, 2, wl());
        assert!(
            q.contentions_per_million > pre.contentions_per_million,
            "prefetching must reduce contention: {} vs {}",
            q.contentions_per_million,
            pre.contentions_per_million
        );
        assert!(
            pre.contentions_per_million > 10.0 * bat.contentions_per_million,
            "batching must reduce contention by orders of magnitude: {} vs {}",
            pre.contentions_per_million,
            bat.contentions_per_million
        );
        assert!(both.contentions_per_million <= bat.contentions_per_million * 1.5 + 1.0);
    }

    #[test]
    fn batching_amortizes_lock_time() {
        // Fig. 2: larger batches -> smaller per-access lock time.
        let mut prev = f64::INFINITY;
        for (s, t) in [(1u32, 1u32), (8, 4), (64, 32)] {
            let spec = SystemSpec::with_batching(SystemKind::Batching, s, t);
            let mut p = SimParams::new(
                HardwareProfile::altix350(),
                16,
                spec,
                WorkloadParams::dbt1(),
            );
            p.horizon_ms = 300;
            let r = simulate(p);
            assert!(
                r.lock_time_per_access_us < prev,
                "batch {s}: lock time {} must shrink (prev {prev})",
                r.lock_time_per_access_us
            );
            prev = r.lock_time_per_access_us;
        }
    }

    #[test]
    fn combining_unblocks_small_queues_at_scale() {
        // 32 cpus with small queues: plain batching collapses on the
        // blocking Lock() at queue-full; a publication slot turns each
        // of those blocks into a handoff. Flat combining additionally
        // publishes at every contended threshold crossing, so it
        // publishes far more often and never trails overflow.
        let run = |mode| {
            let spec = SystemSpec::with_batching(SystemKind::BatchingPrefetching, 8, 4)
                .with_combining(mode);
            let mut p = SimParams::new(
                HardwareProfile::altix350(),
                32,
                spec,
                WorkloadParams::tablescan(),
            );
            p.horizon_ms = 300;
            simulate(p)
        };
        let off = run(Combining::Off);
        let over = run(Combining::Overflow);
        let flat = run(Combining::Flat);
        assert!(off.contentions > 0, "baseline must actually block");
        assert_eq!(off.publishes, 0);
        assert!(over.publishes > 0 && over.combined_batches > 0);
        assert!(
            over.throughput_tps > 1.5 * off.throughput_tps,
            "overflow publication must relieve the queue-full collapse:              {} vs {}",
            over.throughput_tps,
            off.throughput_tps
        );
        assert!(
            flat.publishes > over.publishes,
            "flat must publish on threshold crossings, not just full              queues: {} vs {}",
            flat.publishes,
            over.publishes
        );
        assert!(
            flat.throughput_tps >= over.throughput_tps,
            "flat combining must not trail overflow: {} vs {}",
            flat.throughput_tps,
            over.throughput_tps
        );
        assert!(
            flat.contentions_per_million * 10.0 < off.contentions_per_million,
            "combining must slash blocking contention: {} vs {}",
            flat.contentions_per_million,
            off.contentions_per_million
        );
    }

    #[test]
    fn deterministic_runs() {
        let mk = || {
            let mut p = SimParams::new(
                HardwareProfile::poweredge1900(),
                4,
                SystemSpec::new(SystemKind::Batching),
                WorkloadParams::dbt2(),
            );
            p.horizon_ms = 100;
            simulate(p)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn misses_throttle_throughput() {
        let hit_only = quick(SystemKind::Clock, 8, WorkloadParams::dbt1());
        let missy = quick(
            SystemKind::Clock,
            8,
            WorkloadParams::dbt1().with_misses(0.2, 2_000_000),
        );
        assert!(
            missy.throughput_tps < hit_only.throughput_tps / 2.0,
            "20% misses at 2ms must crush throughput: {} vs {}",
            missy.throughput_tps,
            hit_only.throughput_tps
        );
    }

    #[test]
    fn wal_limits_dbt2_scaling() {
        let t1 = quick(SystemKind::Clock, 1, WorkloadParams::dbt2()).throughput_tps;
        let t16 = quick(SystemKind::Clock, 16, WorkloadParams::dbt2()).throughput_tps;
        assert!(
            t16 < 14.0 * t1,
            "DBT-2 should scale sub-linearly even on pgClock (WAL): {t1} -> {t16}"
        );
        assert!(t16 > 4.0 * t1, "but it must still scale substantially");
    }

    #[test]
    fn response_percentiles_ordered_and_inflate_under_contention() {
        let clock = quick(SystemKind::Clock, 16, WorkloadParams::dbt1());
        let q = quick(SystemKind::LockPerAccess, 16, WorkloadParams::dbt1());
        for r in [&clock, &q] {
            assert!(r.p95_response_ms >= r.avg_response_ms * 0.5); // bucketed lower bound
            assert!(r.max_response_ms >= r.avg_response_ms);
        }
        assert!(
            q.p95_response_ms > clock.p95_response_ms,
            "contended tail ({}) must exceed lock-free tail ({})",
            q.p95_response_ms,
            clock.p95_response_ms
        );
    }

    #[test]
    fn accesses_accounted() {
        let r = quick(SystemKind::Batching, 4, WorkloadParams::tablescan());
        assert!(r.accesses > 0);
        assert!(r.txns > 0);
        assert!(
            r.accesses >= r.txns * 100,
            "tablescan txns are ~124 accesses"
        );
        assert!(
            r.accesses_per_acquisition >= 30.0,
            "batch commits should average >= T"
        );
    }
}
