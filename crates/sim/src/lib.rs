//! # bpw-sim
//!
//! A discrete-event multiprocessor simulator reproducing the paper's
//! scalability experiments (Figs. 2, 6, 7 and Tables II-III) on any
//! host. The host running this reproduction has a single core, so
//! wall-clock scaling up to 16 processors cannot be measured directly;
//! the figures' shapes, however, are governed by queueing at a single
//! lock — exactly what a discrete-event model captures.
//!
//! ```
//! use bpw_core::SystemKind;
//! use bpw_sim::{simulate, HardwareProfile, SimParams, SystemSpec, WorkloadParams};
//!
//! let report = simulate(SimParams::new(
//!     HardwareProfile::altix350(),
//!     16,
//!     SystemSpec::new(SystemKind::BatchingPrefetching),
//!     WorkloadParams::dbt1(),
//! ));
//! println!("{:.0} tps, {:.1} contentions/M", report.throughput_tps,
//!          report.contentions_per_million);
//! ```

pub mod engine;
pub mod profile;
pub mod sweep;

pub use engine::{simulate, RunReport, Sim, SimParams, SystemSpec, Time};
pub use profile::{HardwareProfile, WorkloadParams};
pub use sweep::{sweep_systems, Series, SweepResult};
