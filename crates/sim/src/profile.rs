//! Hardware and workload cost models for the multiprocessor simulator.
//!
//! The host machine for this reproduction has one core, so the paper's
//! scaling experiments (SGI Altix 350 with 16 Itanium 2 processors,
//! Dell PowerEdge 1900 with 8 Xeon cores) are reproduced with a
//! discrete-event model. The parameters below are *cost shapes*, not
//! calibrated absolutes: what matters for reproducing the figures is the
//! ratio between parallel work (transaction processing) and serialized
//! work (the replacement algorithm's critical section), and how the two
//! techniques shift that ratio.

/// Cost model of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareProfile {
    /// Machine name for reports.
    pub name: &'static str,
    /// Processor count to sweep up to.
    pub cpus: usize,
    /// Speed-up of *non-critical* computation from the hardware memory
    /// prefetcher (the paper's §IV-D explanation of why the PowerEdge
    /// contends harder: sequential transaction code is accelerated,
    /// random-access critical sections are not).
    pub work_speedup: f64,
    /// Fraction of the lock warm-up cost removed by the software
    /// prefetching technique. Lower on deep out-of-order cores, which
    /// already tolerate misses (paper §IV-D: prefetching helps the
    /// in-order Itanium more than the Xeon).
    pub prefetch_efficiency: f64,
    /// Cost of blocking + being rescheduled (the "context switch" the
    /// paper counts as a contention).
    pub context_switch_ns: u64,
    /// Uncontended lock acquisition cost at one processor.
    pub lock_acquire_ns: u64,
    /// Relative growth of the acquisition cost per enabled processor
    /// (cache-line ping-pong across more caches/NUMA hops). This is what
    /// makes saturated throughput *decline* as processors are added,
    /// like the paper's TableScan dropping 9.7% from 8 to 16.
    pub coherence_per_cpu: f64,
    /// A failed (or successful) try-lock attempt.
    pub trylock_ns: u64,
    /// Lock warm-up cost `m`: cache misses on the lock word and list
    /// nodes when entering the critical section cold (§III-B).
    pub cs_warmup_ns: u64,
    /// Critical-section bookkeeping per page access `c` (list moves).
    pub cs_per_access_ns: u64,
    /// CLOCK's lock-free hit cost (one atomic or-bit).
    pub clock_hit_ns: u64,
    /// Recording one access in a private FIFO queue (batching path).
    pub queue_push_ns: u64,
    /// Issuing the software prefetch hints before a lock request.
    pub prefetch_issue_ns: u64,
    /// Coherence interference a failed try-lock inflicts on the current
    /// lock holder (the CAS bounces the lock's cache line). Frequent
    /// premature try-locks at a low batch threshold slow every critical
    /// section — the paper's Table III effect.
    pub trylock_interference_ns: u64,
}

impl HardwareProfile {
    /// The SGI Altix 350: 16 × 1.4 GHz Itanium 2 (in-order, no hardware
    /// prefetcher), the paper's "unicore SMP platform".
    pub fn altix350() -> Self {
        HardwareProfile {
            name: "Altix350",
            cpus: 16,
            work_speedup: 1.0,
            prefetch_efficiency: 0.85,
            context_switch_ns: 6_000,
            lock_acquire_ns: 550,
            coherence_per_cpu: 0.035,
            trylock_ns: 60,
            cs_warmup_ns: 100,
            cs_per_access_ns: 55,
            clock_hit_ns: 25,
            queue_push_ns: 25,
            prefetch_issue_ns: 45,
            trylock_interference_ns: 35,
        }
    }

    /// The Dell PowerEdge 1900: 2 × quad-core 2.66 GHz Xeon X5355
    /// (out-of-order, hardware prefetch modules), the paper's
    /// "multi-core platform".
    pub fn poweredge1900() -> Self {
        HardwareProfile {
            name: "PowerEdge1900",
            cpus: 8,
            // Sequential non-critical code accelerated by the prefetch
            // modules; the random-access critical section is not.
            work_speedup: 1.6,
            // Deep OOO cores tolerate misses: software prefetch helps less.
            prefetch_efficiency: 0.55,
            context_switch_ns: 4_000,
            lock_acquire_ns: 420,
            coherence_per_cpu: 0.055,
            trylock_ns: 45,
            cs_warmup_ns: 80,
            cs_per_access_ns: 40,
            clock_hit_ns: 15,
            queue_push_ns: 15,
            prefetch_issue_ns: 30,
            trylock_interference_ns: 30,
        }
    }
}

/// Cost model of one workload as the buffer manager sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Workload name for reports.
    pub name: String,
    /// Empirical transaction lengths (page accesses per transaction),
    /// sampled round-robin; captured from the real generators.
    pub txn_lengths: Vec<u32>,
    /// Non-critical computation per page access (parsing, tuple work).
    pub work_per_access_ns: u64,
    /// Fixed per-transaction computation (begin/commit bookkeeping).
    pub txn_overhead_ns: u64,
    /// Serialized time per transaction on the *other* global lock
    /// (Write-Ahead-Logging). The paper notes DBT-2's throughput is
    /// sub-linear even for `pgClock` because of WAL contention.
    pub wal_cs_ns: u64,
    /// Fraction of accesses that miss the buffer (0 in the scalability
    /// experiments, which pre-warm the buffer; >0 for Fig. 8).
    pub miss_ratio: f64,
    /// Storage read latency on a miss.
    pub io_ns: u64,
    /// Concurrent I/O the storage array can absorb.
    pub io_channels: usize,
}

impl WorkloadParams {
    /// DBT-1 (TPC-W-like): short web interactions, read-mostly, no heavy
    /// WAL pressure.
    pub fn dbt1() -> Self {
        WorkloadParams {
            name: "DBT-1".to_owned(),
            txn_lengths: capture_lengths(&bpw_workloads::WorkloadKind::Dbt1),
            work_per_access_ns: 4_200,
            txn_overhead_ns: 12_000,
            wal_cs_ns: 2_000,
            miss_ratio: 0.0,
            io_ns: 2_000_000,
            io_channels: 8,
        }
    }

    /// DBT-2 (TPC-C-like): heavier transactions with significant WAL
    /// serialization.
    pub fn dbt2() -> Self {
        WorkloadParams {
            name: "DBT-2".to_owned(),
            txn_lengths: capture_lengths(&bpw_workloads::WorkloadKind::Dbt2),
            work_per_access_ns: 8_500,
            txn_overhead_ns: 25_000,
            // WAL writes serialized across backends: the second hot lock.
            // Sized so the WAL cap squeezes pgClock's scaling (sub-linear,
            // as the paper reports for DBT-2) without flattening the gap
            // BP-Wrapper recovers from pgQ.
            wal_cs_ns: 26_000,
            miss_ratio: 0.0,
            io_ns: 2_000_000,
            io_channels: 8,
        }
    }

    /// TableScan: long sequential scans — the highest page-access rate
    /// per unit of computation, hence the worst replacement-lock
    /// pressure (the paper's TableScan saturates earliest).
    pub fn tablescan() -> Self {
        WorkloadParams {
            name: "TableScan".to_owned(),
            txn_lengths: vec![124], // one full table scan (10,000 x 100 B rows)
            work_per_access_ns: 2_500,
            txn_overhead_ns: 8_000,
            wal_cs_ns: 0,
            miss_ratio: 0.0,
            io_ns: 2_000_000,
            io_channels: 8,
        }
    }

    /// Parameters for the paper's workload enum.
    pub fn for_kind(kind: bpw_workloads::WorkloadKind) -> Self {
        match kind {
            bpw_workloads::WorkloadKind::Dbt1 => Self::dbt1(),
            bpw_workloads::WorkloadKind::Dbt2 => Self::dbt2(),
            bpw_workloads::WorkloadKind::TableScan => Self::tablescan(),
        }
    }

    /// Override the miss behaviour (Fig. 8 runs).
    pub fn with_misses(mut self, miss_ratio: f64, io_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&miss_ratio));
        self.miss_ratio = miss_ratio;
        self.io_ns = io_ns;
        self
    }

    /// Mean transaction length.
    pub fn mean_txn_len(&self) -> f64 {
        self.txn_lengths.iter().map(|&l| l as f64).sum::<f64>() / self.txn_lengths.len() as f64
    }
}

/// Sample transaction lengths from the real generators so the simulator
/// sees the same access-burst structure.
fn capture_lengths(kind: &bpw_workloads::WorkloadKind) -> Vec<u32> {
    let w = kind.build();
    let mut stream = w.stream(0, 0xB9C0FFEE);
    let mut out = Vec::with_capacity(256);
    let mut buf = Vec::new();
    for _ in 0..256 {
        buf.clear();
        stream.next_transaction(&mut buf);
        out.push(buf.len() as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_machines() {
        let a = HardwareProfile::altix350();
        let p = HardwareProfile::poweredge1900();
        assert_eq!(a.cpus, 16);
        assert_eq!(p.cpus, 8);
        assert!(
            p.work_speedup > a.work_speedup,
            "PowerEdge accelerates non-critical work"
        );
        assert!(
            a.prefetch_efficiency > p.prefetch_efficiency,
            "prefetch helps Itanium more"
        );
    }

    #[test]
    fn workload_params_have_structure() {
        let d1 = WorkloadParams::dbt1();
        let d2 = WorkloadParams::dbt2();
        let ts = WorkloadParams::tablescan();
        assert!(d2.wal_cs_ns > d1.wal_cs_ns, "DBT-2 has the WAL bottleneck");
        assert!(
            ts.work_per_access_ns < d1.work_per_access_ns,
            "scans access pages fastest"
        );
        assert!(d1.mean_txn_len() > 1.0);
        assert!(d2.mean_txn_len() > 1.0);
        assert_eq!(ts.txn_lengths, vec![124]);
        assert_eq!(d1.miss_ratio, 0.0);
    }

    #[test]
    fn with_misses_builder() {
        let w = WorkloadParams::dbt1().with_misses(0.1, 500_000);
        assert_eq!(w.miss_ratio, 0.1);
        assert_eq!(w.io_ns, 500_000);
    }
}
