//! End-to-end behaviour of the global collector: the enabled flag
//! gates recording, multi-threaded records land in per-thread rings,
//! and the drained stream exports to valid Chrome trace JSON.
//!
//! The collector is process-global, so these tests share it; each test
//! tags its events with a unique `arg` marker and filters on it, and
//! tests that toggle the enabled flag serialize on a lock.

use std::sync::Mutex;

use bpw_metrics::JsonValue;
use bpw_trace::{EventKind, TraceEvent};

static FLAG: Mutex<()> = Mutex::new(());

fn my_events(marker: u64) -> Vec<TraceEvent> {
    bpw_trace::drain()
        .into_iter()
        .filter(|e| e.arg == marker)
        .collect()
}

#[test]
fn disabled_recording_is_a_noop() {
    let _g = FLAG.lock().unwrap();
    bpw_trace::set_enabled(false);
    bpw_trace::instant(EventKind::Eviction, 0xD15AB1ED);
    assert!(
        bpw_trace::span_start().is_none(),
        "span_start must be free when disabled"
    );
    bpw_trace::span_end(EventKind::LockHold, None, 0xD15AB1ED);
    assert!(my_events(0xD15AB1ED).is_empty());
}

#[test]
fn enabled_spans_and_instants_are_collected_in_order() {
    let _g = FLAG.lock().unwrap();
    bpw_trace::set_enabled(true);
    let t = bpw_trace::span_start();
    assert!(t.is_some());
    bpw_trace::span_end(EventKind::BatchCommit, t, 0xC0FFEE01);
    bpw_trace::instant(EventKind::Eviction, 0xC0FFEE01);
    bpw_trace::span_backdated(EventKind::LockHold, 1_234, 0xC0FFEE01);
    bpw_trace::set_enabled(false);

    let events = my_events(0xC0FFEE01);
    assert_eq!(events.len(), 3);
    assert!(
        events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
        "drain must sort by start time"
    );
    let hold = events
        .iter()
        .find(|e| e.kind == EventKind::LockHold)
        .unwrap();
    assert_eq!(hold.dur_ns, 1_234);
    let evict = events
        .iter()
        .find(|e| e.kind == EventKind::Eviction)
        .unwrap();
    assert_eq!(evict.dur_ns, 0);
    // A second drain finds nothing new.
    assert!(my_events(0xC0FFEE01).is_empty());
}

#[test]
fn each_thread_records_into_its_own_ring() {
    let _g = FLAG.lock().unwrap();
    bpw_trace::set_enabled(true);
    let threads = 4;
    let per_thread = 100u64;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for i in 0..per_thread {
                    bpw_trace::record(EventKind::LockHold, i, 1, 0xBEEF0002);
                }
            });
        }
    });
    bpw_trace::set_enabled(false);
    let events = my_events(0xBEEF0002);
    assert_eq!(events.len() as u64, threads as u64 * per_thread);
    let tids: std::collections::HashSet<u32> = events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), threads, "one trace tid per recording thread");
    assert!(bpw_trace::thread_count() >= threads);
}

#[test]
fn drained_stream_exports_to_valid_chrome_json() {
    let _g = FLAG.lock().unwrap();
    bpw_trace::set_enabled(true);
    let t = bpw_trace::span_start();
    bpw_trace::span_end(EventKind::WalFlush, t, 0xFACE0003);
    bpw_trace::set_enabled(false);

    let events = my_events(0xFACE0003);
    let json = bpw_trace::chrome_trace_json(&events);
    let v = JsonValue::parse(&json).expect("valid JSON");
    let JsonValue::Arr(items) = v.get("traceEvents").unwrap() else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].get("name").unwrap().as_str(), Some("wal_flush"));
    assert_eq!(
        items[0].get("args").unwrap().get("bytes").unwrap().as_u64(),
        Some(0xFACE0003)
    );
}
