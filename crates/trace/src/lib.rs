//! # bpw-trace
//!
//! Contention-free event tracing for the BP-Wrapper stack.
//!
//! The paper's argument is measured in lock contentions and lock time
//! per access, so the tracing layer must follow the paper's own
//! discipline: observing the system may not reintroduce the shared
//! lock traffic BP-Wrapper removes. Accordingly:
//!
//! * Events are recorded into fixed-capacity **per-thread ring
//!   buffers** ([`ring::Ring`]) — the record path is one relaxed flag
//!   load, a slot write, and a release store; no shared lock, ever.
//! * When tracing is **disabled** (the default), the entire cost at
//!   every instrumentation site is a single relaxed atomic load
//!   ([`enabled`]).
//! * Ring overflow **drops and counts** instead of blocking or
//!   overwriting: exporters report exactly how much is missing.
//! * Draining ([`drain`]) is deferred to exporters, off the hot path.
//!
//! Events are **request-attributed**: each carries the recording
//! thread's current request id ([`set_current_request`]), set once per
//! request by whichever thread owns it. On top of that ride the
//! per-stage latency scratch ([`stage`]) and the tail-latency flight
//! recorder ([`flight`]), which snapshots a slow request's span chain
//! out of the rings without consuming it.
//!
//! Two exporters consume the stream:
//!
//! * [`chrome::chrome_trace_json`] — Chrome trace-event JSON, loadable
//!   in Perfetto or `chrome://tracing`.
//! * [`prom::PromWriter`] — Prometheus-style text exposition of
//!   counters, histograms (with per-bucket counts), and lock
//!   snapshots; served by `bpw-server`'s `METRICS` request.

pub mod chrome;
pub mod collector;
pub mod event;
pub mod flight;
pub mod prom;
pub mod ring;
pub mod stage;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use collector::{
    buffered, clear, current_request, drain, dropped, enabled, instant, now_ns, record, ring_drops,
    set_current_request, set_enabled, set_ring_capacity, snapshot_for_request, span_backdated,
    span_end, span_end_staged, span_start, thread_count, trim_older_than, DEFAULT_RING_CAPACITY,
};
pub use event::{EventKind, TraceEvent};
pub use prom::{validate_exposition, PromWriter};
