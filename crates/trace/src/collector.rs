//! The global collector: a registry of per-thread rings behind one
//! runtime on/off flag.
//!
//! The record path is contention-free by construction: a relaxed load
//! of the enabled flag (the *entire* cost when tracing is off), then a
//! push into the calling thread's own ring. The registry mutex is
//! touched only when a thread records its first event (ring creation)
//! and when an exporter drains — never per event.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{EventKind, TraceEvent};
use crate::ring::Ring;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU32,
    ring_capacity: AtomicUsize,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        rings: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
        ring_capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
    })
}

thread_local! {
    static LOCAL_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    /// The request id the calling thread is currently working for
    /// (0 = none). Every recorded event is stamped with it, so request
    /// attribution costs one thread-local read on the enabled path and
    /// nothing at all while tracing is off.
    static CURRENT_REQUEST: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Install `id` as the calling thread's current request: every event
/// this thread records until the next call carries it. Pass 0 to
/// return the thread to unattributed recording.
#[inline]
pub fn set_current_request(id: u64) {
    CURRENT_REQUEST.with(|c| c.set(id));
}

/// The calling thread's current request id (0 = none).
#[inline]
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// Is tracing on? One relaxed atomic load — the full record-path cost
/// while tracing is disabled. Call this before doing *any* work to
/// build an event (including reading the clock).
#[inline]
pub fn enabled() -> bool {
    collector().enabled.load(Ordering::Relaxed)
}

/// Turn tracing on or off at runtime. Buffered events survive a
/// disable; [`drain`] collects them whenever convenient.
pub fn set_enabled(on: bool) {
    collector().enabled.store(on, Ordering::Relaxed);
}

/// Capacity (events) for rings created *after* this call. Existing
/// rings keep their size. Rounded up to a power of two, minimum 8.
pub fn set_ring_capacity(capacity: usize) {
    collector().ring_capacity.store(capacity, Ordering::Relaxed);
}

/// Nanoseconds since the collector's epoch (process-wide, monotonic).
#[inline]
pub fn now_ns() -> u64 {
    collector().epoch.elapsed().as_nanos() as u64
}

fn with_local_ring(f: impl FnOnce(&Ring)) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let c = collector();
            let tid = c.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(c.ring_capacity.load(Ordering::Relaxed), tid));
            c.rings
                .lock()
                .expect("trace registry")
                .push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Record a fully-formed event into the calling thread's ring. No-op
/// when tracing is disabled. Callers normally use [`instant`],
/// [`span_start`] + [`span_end`], or [`span_backdated`] instead.
#[inline]
pub fn record(kind: EventKind, start_ns: u64, dur_ns: u64, arg: u64) {
    if !enabled() {
        return;
    }
    let req = current_request();
    with_local_ring(|ring| {
        ring.push(TraceEvent {
            kind,
            tid: ring.tid(),
            start_ns,
            dur_ns,
            arg,
            req,
        })
    });
}

/// Record an instant event at the current time.
#[inline]
pub fn instant(kind: EventKind, arg: u64) {
    if !enabled() {
        return;
    }
    record(kind, now_ns(), 0, arg);
}

/// Start a span: returns `Some(start_ns)` when tracing is on, `None`
/// (for free) when off. Pass the token to [`span_end`].
#[inline]
pub fn span_start() -> Option<u64> {
    if enabled() {
        Some(now_ns())
    } else {
        None
    }
}

/// Finish a span started with [`span_start`].
#[inline]
pub fn span_end(kind: EventKind, start: Option<u64>, arg: u64) {
    if let Some(start_ns) = start {
        record(kind, start_ns, now_ns().saturating_sub(start_ns), arg);
    }
}

/// Record a span whose duration was measured independently (e.g. by an
/// `Instant` the caller already keeps): the span is backdated so it
/// *ends* now and lasted `dur_ns`.
#[inline]
pub fn span_backdated(kind: EventKind, dur_ns: u64, arg: u64) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    record(kind, end.saturating_sub(dur_ns), dur_ns, arg);
}

/// Finish a span started with [`span_start`], additionally crediting
/// its duration to the calling thread's per-stage latency scratch (see
/// [`crate::stage`]). Used by instrumentation sites whose time is a
/// named request stage (batch commit), so the worker can attribute the
/// request's total without re-measuring.
#[inline]
pub fn span_end_staged(kind: EventKind, start: Option<u64>, arg: u64) {
    if let Some(start_ns) = start {
        let dur_ns = now_ns().saturating_sub(start_ns);
        record(kind, start_ns, dur_ns, arg);
        crate::stage::add_for_kind(kind, dur_ns);
    }
}

/// Drain every thread's ring, returning all buffered events sorted by
/// start time. Safe to call while recording continues (events recorded
/// during the drain land in the next one).
pub fn drain() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let rings = collector().rings.lock().expect("trace registry");
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    drop(rings);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Drain and discard everything buffered (reset between runs). Returns
/// how many events were thrown away. Drop counters are *not* reset —
/// they are cumulative for the process, like every other counter here.
pub fn clear() -> usize {
    drain().len()
}

/// Total events dropped on ring overflow, across all threads.
pub fn dropped() -> u64 {
    collector()
        .rings
        .lock()
        .expect("trace registry")
        .iter()
        .map(|r| r.drops())
        .sum()
}

/// Per-ring overflow counters as `(trace thread id, events dropped)`,
/// in registration order. A ring that dropped events explains a gap in
/// any exemplar assembled from it, so exporters surface these
/// individually rather than only in aggregate.
pub fn ring_drops() -> Vec<(u32, u64)> {
    collector()
        .rings
        .lock()
        .expect("trace registry")
        .iter()
        .map(|r| (r.tid(), r.drops()))
        .collect()
}

/// Copy (without consuming) every buffered event stamped with request
/// `req`, across all rings, sorted by start time. This is the flight
/// recorder's capture path: the events stay in place for the next
/// [`drain`], so capturing an exemplar never steals spans from the
/// normal export stream. Registry-lock serialized against drains and
/// trims.
pub fn snapshot_for_request(req: u64) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let rings = collector().rings.lock().expect("trace registry");
    let mut scratch = Vec::new();
    for ring in rings.iter() {
        scratch.clear();
        ring.snapshot_into(&mut scratch);
        out.extend(scratch.iter().copied().filter(|e| e.req == req));
    }
    drop(rings);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Discard buffered events older than `age_ns`. With no steady-state
/// drainer the drop-don't-overwrite rings would fill and then lose
/// every *new* event — exactly the ones a flight-recorder capture
/// needs — so a server with an SLO armed runs this periodically to
/// keep a bounded recent window live. Returns how many events were
/// discarded.
pub fn trim_older_than(age_ns: u64) -> usize {
    let cutoff = now_ns().saturating_sub(age_ns);
    collector()
        .rings
        .lock()
        .expect("trace registry")
        .iter()
        .map(|r| r.trim_before(cutoff))
        .sum()
}

/// Number of threads that have recorded at least one event (registered
/// rings, including threads that have since exited).
pub fn thread_count() -> usize {
    collector().rings.lock().expect("trace registry").len()
}

/// Events currently buffered across all rings (racy estimate).
pub fn buffered() -> usize {
    collector()
        .rings
        .lock()
        .expect("trace registry")
        .iter()
        .map(|r| r.len())
        .sum()
}
