//! Prometheus-style text exposition.
//!
//! A hand-rolled writer for the text format scrapers understand:
//! `# HELP` / `# TYPE` comments followed by `name{labels} value`
//! samples. Covers the three shapes this workspace produces — plain
//! counters/gauges, [`Histogram`]s (rendered with cumulative
//! per-bucket counts), and [`LockSnapshot`]s (one labeled sample per
//! lock counter).

use bpw_metrics::{Histogram, LockSnapshot};
use std::fmt::Write as _;

/// Incremental builder for one exposition payload.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl PromWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                let _ = write!(self.buf, "{k}=\"{}\"", escape_label_value(v));
            }
            self.buf.push('}');
        }
        let _ = writeln!(self.buf, " {value}");
    }

    /// A monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.header(name, help, "counter");
        self.sample(name, &[], &value.to_string());
        self
    }

    /// One counter metric with several labeled series (e.g. the same
    /// counter for each lock). Emits one header and one sample per
    /// `(label_value, value)` pair under `label_key`.
    pub fn labeled_counter(
        &mut self,
        name: &str,
        help: &str,
        label_key: &str,
        series: &[(&str, u64)],
    ) -> &mut Self {
        self.header(name, help, "counter");
        for (label, value) in series {
            self.sample(name, &[(label_key, label)], &value.to_string());
        }
        self
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.header(name, help, "gauge");
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "NaN".to_string()
        };
        self.sample(name, &[], &rendered);
        self
    }

    /// A [`Histogram`] with cumulative `_bucket{le="..."}` samples
    /// (only occupied buckets, plus the mandatory `+Inf`), `_sum`, and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) -> &mut Self {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (_, ceil, count) in h.buckets() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            self.sample(
                &format!("{name}_bucket"),
                &[("le", &ceil.to_string())],
                &cumulative.to_string(),
            );
        }
        self.sample(
            &format!("{name}_bucket"),
            &[("le", "+Inf")],
            &h.count().to_string(),
        );
        self.sample(&format!("{name}_sum"), &[], &h.sum().to_string());
        self.sample(&format!("{name}_count"), &[], &h.count().to_string());
        self
    }

    /// One histogram metric with several labeled series (e.g. the same
    /// per-stage latency histogram for each opcode). Emits one header,
    /// then cumulative `_bucket` samples, `_sum`, and `_count` per
    /// series, with that series' labels ahead of the `le` bucket label.
    pub fn labeled_histograms(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&[(&str, &str)], &Histogram)],
    ) -> &mut Self {
        self.header(name, help, "histogram");
        for (labels, h) in series {
            let mut cumulative = 0u64;
            for (_, ceil, count) in h.buckets() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let ceil = ceil.to_string();
                let mut with_le = labels.to_vec();
                with_le.push(("le", ceil.as_str()));
                self.sample(&format!("{name}_bucket"), &with_le, &cumulative.to_string());
            }
            let mut with_le = labels.to_vec();
            with_le.push(("le", "+Inf"));
            self.sample(&format!("{name}_bucket"), &with_le, &h.count().to_string());
            self.sample(&format!("{name}_sum"), labels, &h.sum().to_string());
            self.sample(&format!("{name}_count"), labels, &h.count().to_string());
        }
        self
    }

    /// A [`LockSnapshot`] as six labeled counters under a shared
    /// `lock="<label>"` series. Call once per lock with the same
    /// `prefix` to build multi-lock output; headers repeat per call,
    /// which scrapers tolerate and humans can diff.
    pub fn lock_snapshot(&mut self, prefix: &str, label: &str, snap: &LockSnapshot) -> &mut Self {
        let fields: [(&str, &str, u64); 6] = [
            (
                "acquisitions_total",
                "Successful lock acquisitions.",
                snap.acquisitions,
            ),
            (
                "contentions_total",
                "Blocked acquisitions (the paper's contention events).",
                snap.contentions,
            ),
            (
                "trylock_failures_total",
                "Non-blocking try-lock attempts that failed.",
                snap.trylock_failures,
            ),
            (
                "wait_ns_total",
                "Nanoseconds spent waiting for the lock.",
                snap.wait_ns,
            ),
            (
                "hold_ns_total",
                "Nanoseconds the lock was held.",
                snap.hold_ns,
            ),
            (
                "accesses_covered_total",
                "Page accesses whose bookkeeping the lock protected.",
                snap.accesses_covered,
            ),
        ];
        for (suffix, help, value) in fields {
            let name = format!("{prefix}_{suffix}");
            self.header(&name, help, "counter");
            self.sample(&name, &[("lock", label)], &value.to_string());
        }
        self
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Sanity-check an exposition payload: every non-comment, non-blank
/// line must be `name[{labels}] value` with a parseable value. Returns
/// the number of samples, or the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line:?}"))?;
        let name = name_part.split('{').next().unwrap_or("");
        if !valid_name(name) {
            return Err(format!("invalid metric name in line {line:?}"));
        }
        if value_part != "NaN" && value_part.parse::<f64>().is_err() {
            return Err(format!("unparseable value in line {line:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let mut w = PromWriter::new();
        w.counter("bpw_requests_total", "Requests served.", 42)
            .gauge("bpw_hit_ratio", "Pool hit ratio.", 0.9375);
        let text = w.finish();
        assert!(text.contains("# TYPE bpw_requests_total counter"));
        assert!(text.contains("bpw_requests_total 42"));
        assert!(text.contains("bpw_hit_ratio 0.9375"));
        assert_eq!(validate_exposition(&text), Ok(2));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 3, 100] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram("bpw_latency_ns", "Latency.", &h);
        let text = w.finish();
        // Bucket 1 holds {1,1}; bucket [2,3] holds {2,3}; [64,127] holds {100}.
        assert!(text.contains("bpw_latency_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("bpw_latency_ns_bucket{le=\"3\"} 4"));
        assert!(text.contains("bpw_latency_ns_bucket{le=\"127\"} 5"));
        assert!(text.contains("bpw_latency_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("bpw_latency_ns_sum 107"));
        assert!(text.contains("bpw_latency_ns_count 5"));
        assert!(validate_exposition(&text).unwrap() >= 6);
    }

    #[test]
    fn labeled_histogram_series_share_one_metric() {
        let slow = Histogram::new();
        slow.record(100);
        let fast = Histogram::new();
        fast.record(1);
        fast.record(2);
        let mut w = PromWriter::new();
        w.labeled_histograms(
            "bpw_stage_ns",
            "Per-stage latency.",
            &[
                (&[("op", "get"), ("stage", "miss_io")], &slow),
                (&[("op", "put"), ("stage", "pin_hit")], &fast),
            ],
        );
        let text = w.finish();
        assert_eq!(text.matches("# TYPE bpw_stage_ns histogram").count(), 1);
        assert!(text.contains("bpw_stage_ns_bucket{op=\"get\",stage=\"miss_io\",le=\"127\"} 1"));
        assert!(text.contains("bpw_stage_ns_bucket{op=\"get\",stage=\"miss_io\",le=\"+Inf\"} 1"));
        assert!(text.contains("bpw_stage_ns_count{op=\"put\",stage=\"pin_hit\"} 2"));
        assert!(text.contains("bpw_stage_ns_sum{op=\"get\",stage=\"miss_io\"} 100"));
        assert!(validate_exposition(&text).unwrap() >= 8);
    }

    #[test]
    fn lock_snapshot_series_are_labeled() {
        let snap = LockSnapshot {
            acquisitions: 10,
            contentions: 2,
            trylock_failures: 3,
            wait_ns: 400,
            hold_ns: 600,
            accesses_covered: 320,
        };
        let mut w = PromWriter::new();
        w.lock_snapshot("bpw_lock", "replacement", &snap);
        let text = w.finish();
        assert!(text.contains("bpw_lock_acquisitions_total{lock=\"replacement\"} 10"));
        assert!(text.contains("bpw_lock_accesses_covered_total{lock=\"replacement\"} 320"));
        assert_eq!(validate_exposition(&text), Ok(6));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.labeled_counter("bpw_x_total", "X.", "who", &[("a\"b\\c", 1)]);
        let text = w.finish();
        assert!(text.contains("bpw_x_total{who=\"a\\\"b\\\\c\"} 1"));
        assert_eq!(validate_exposition(&text), Ok(1));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("9bad_name 1").is_err());
        assert!(validate_exposition("name notanumber").is_err());
        assert!(validate_exposition("no_value").is_err());
        assert_eq!(validate_exposition("# just a comment\n\n"), Ok(0));
    }
}
