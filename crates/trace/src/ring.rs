//! The per-thread event ring: a fixed-capacity single-producer /
//! single-consumer buffer.
//!
//! The producer is the owning thread's record path; the consumer is
//! the collector's drain (serialized by the collector's registry
//! lock). The record path touches no shared lock — one relaxed load of
//! the read index, one slot write, one release store of the write
//! index — so tracing follows the same discipline as BP-Wrapper
//! itself: per-thread buffering with deferred draining.
//!
//! Overflow never blocks and never overwrites unread events: the push
//! is dropped and counted, so exporters can report exactly how much of
//! the stream is missing.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

use crate::event::TraceEvent;

/// A fixed-capacity SPSC ring of [`TraceEvent`]s.
///
/// Safety contract: [`push`](Ring::push) is only called by the owning
/// thread; [`drain_into`](Ring::drain_into) calls are serialized by
/// the caller (the collector holds its registry lock while draining).
pub struct Ring {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    mask: usize,
    /// Next write position (monotonic; slot = head & mask).
    head: CachePadded<AtomicUsize>,
    /// Next read position (monotonic).
    tail: CachePadded<AtomicUsize>,
    /// Events dropped because the ring was full.
    drops: AtomicU64,
    /// Trace thread id of the owning thread.
    tid: u32,
}

// The UnsafeCell slots are only written by the producer before a
// release store of `head` and only read by the consumer after an
// acquire load of `head`, on disjoint index ranges.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// A ring of at least `capacity` slots (rounded up to a power of
    /// two, minimum 8) owned by trace thread `tid`.
    pub fn new(capacity: usize, tid: u32) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Ring {
            slots: (0..cap)
                .map(|_| UnsafeCell::new(TraceEvent::EMPTY))
                .collect(),
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            drops: AtomicU64::new(0),
            tid,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The owning thread's trace id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Events dropped on overflow so far.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Events currently buffered (racy estimate from a third thread;
    /// exact from the producer or consumer).
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.tail.load(Ordering::Acquire))
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `ev`, or count a drop if the ring is full. Producer-only.
    #[inline]
    pub fn push(&self, ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail > self.mask {
            // Full: dropping (not overwriting) keeps the consumer's
            // in-flight reads valid and makes loss observable.
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { *self.slots[head & self.mask].get() = ev };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Move every buffered event into `out` (oldest first).
    /// Consumer-only; callers serialize.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        out.reserve(head - tail);
        while tail < head {
            out.push(unsafe { *self.slots[tail & self.mask].get() });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
    }

    /// Copy every buffered event into `out` (oldest first) *without*
    /// consuming them: `tail` is not advanced, so a later
    /// [`drain_into`](Ring::drain_into) still sees everything. The
    /// flight recorder's capture path. Consumer-only; callers
    /// serialize (same contract as draining — the slots in
    /// `[tail, head)` are exactly the ones the producer will not
    /// touch).
    pub fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        out.reserve(head - tail);
        while tail < head {
            out.push(unsafe { *self.slots[tail & self.mask].get() });
            tail += 1;
        }
    }

    /// Discard buffered events whose `start_ns` predates `cutoff_ns`,
    /// stopping at the first young-enough event. Push order is only
    /// approximately start-ordered (backdated spans start in the past),
    /// so the trim is conservative: a stale event behind a young one
    /// survives until the next pass. Returns how many were discarded.
    /// Consumer-only; callers serialize.
    pub fn trim_before(&self, cutoff_ns: u64) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let start = tail;
        while tail < head {
            let ev = unsafe { *self.slots[tail & self.mask].get() };
            if ev.start_ns >= cutoff_ns {
                break;
            }
            tail += 1;
        }
        if tail != start {
            self.tail.store(tail, Ordering::Release);
        }
        tail - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn ev(start_ns: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::BatchCommit,
            tid: 1,
            start_ns,
            dur_ns: 5,
            arg: 32,
            req: 9,
        }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let r = Ring::new(8, 1);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(r.is_empty());
        assert_eq!(r.drops(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_without_corruption() {
        let r = Ring::new(8, 1);
        for i in 0..20 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 8, "capacity bounds buffered events");
        assert_eq!(r.drops(), 12);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        // The *oldest* events survive; late ones were dropped.
        assert_eq!(
            out.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 6, 7]
        );
        // Space is available again after the drain.
        r.push(ev(99));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn snapshot_copies_without_consuming() {
        let r = Ring::new(8, 1);
        for i in 0..5 {
            r.push(ev(i));
        }
        let mut snap = Vec::new();
        r.snapshot_into(&mut snap);
        assert_eq!(snap.len(), 5);
        assert_eq!(r.len(), 5, "snapshot must not consume");
        // A drain after the snapshot still sees every event.
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out, snap);
        assert!(r.is_empty());
    }

    #[test]
    fn trim_discards_only_the_stale_prefix() {
        let r = Ring::new(8, 1);
        for i in 0..6 {
            r.push(ev(i * 10));
        }
        assert_eq!(r.trim_before(30), 3, "events at 0,10,20 are stale");
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(
            out.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![30, 40, 50]
        );
        // Trimming frees capacity like a drain does.
        for i in 0..8 {
            r.push(ev(100 + i));
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.drops(), 0);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0, 0).capacity(), 8);
        assert_eq!(Ring::new(9, 0).capacity(), 16);
        assert_eq!(Ring::new(16, 0).capacity(), 16);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_it_accepted() {
        let r = Arc::new(Ring::new(1 << 10, 7));
        let total = 100_000u64;
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..total {
                    r.push(ev(i));
                }
            })
        };
        let mut seen = Vec::new();
        while !producer.is_finished() {
            r.drain_into(&mut seen);
        }
        producer.join().unwrap();
        r.drain_into(&mut seen);
        assert_eq!(seen.len() as u64 + r.drops(), total);
        // Within the accepted stream, order is intact and values are
        // a strictly increasing subsequence of the input.
        assert!(seen.windows(2).all(|w| w[0].start_ns < w[1].start_ns));
        for e in &seen {
            assert_eq!(e.tid, 1);
            assert_eq!(e.arg, 32);
        }
    }
}
