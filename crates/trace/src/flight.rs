//! Tail-latency flight recorder.
//!
//! Aggregate histograms say *that* a p999 exists; the flight recorder
//! says *why*. When a request's end-to-end latency exceeds the armed
//! SLO — or the request ends in `ERR_IO` — the reply path assembles the
//! request's span chain out of the per-thread rings (a non-destructive
//! [`crate::collector::snapshot_for_request`], so the normal export
//! stream loses nothing) and parks it in a bounded FIFO exemplar
//! buffer. The server's `EXEMPLARS` opcode renders the buffer as
//! Chrome trace-event JSON loadable in Perfetto.
//!
//! Capture cost is paid only by requests that already blew their
//! budget: the fast path touches the recorder exactly once, for one
//! relaxed load of the armed SLO.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use bpw_metrics::json::JsonObject;

use crate::chrome::event_json;
use crate::collector;
use crate::event::TraceEvent;

/// Exemplars retained before the oldest is evicted.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 64;

/// The protocol's `ERR_IO` status byte — a reply with this status is
/// always exemplar-worthy while the recorder is armed, regardless of
/// latency.
pub const STATUS_ERR_IO: u8 = 4;

/// Armed SLO in nanoseconds; 0 = recorder off.
static SLO_NS: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_EXEMPLAR_CAPACITY);
/// Exemplars captured since process start (cumulative; eviction does
/// not decrement).
static CAPTURED: AtomicU64 = AtomicU64::new(0);
static BUFFER: Mutex<VecDeque<Exemplar>> = Mutex::new(VecDeque::new());

/// One captured slow (or failed) request: its identity plus every
/// trace event stamped with its id that was still buffered at reply
/// time.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The request id the span chain is keyed by.
    pub request_id: u64,
    /// Connection the request arrived on.
    pub conn: u64,
    /// Request opcode (1 GET, 2 PUT, 3 SCAN).
    pub opcode: u8,
    /// Response status byte (0 OK … 4 ERR_IO).
    pub status: u8,
    /// End-to-end latency, admission to reply.
    pub total_ns: u64,
    /// The request's span chain, sorted by start time. May be shorter
    /// than the request's true history if a ring overflowed (see
    /// [`crate::collector::ring_drops`]).
    pub events: Vec<TraceEvent>,
}

/// Arm the recorder: capture requests slower than `slo_ns` (or ending
/// in `ERR_IO`), keeping at most `capacity` exemplars.
pub fn arm(slo_ns: u64, capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    SLO_NS.store(slo_ns, Ordering::Relaxed);
}

/// Disarm the recorder (buffered exemplars stay fetchable).
pub fn disarm() {
    SLO_NS.store(0, Ordering::Relaxed);
}

/// The armed SLO in nanoseconds (0 = off). One relaxed load — the
/// whole per-reply cost while nothing is captured.
#[inline]
pub fn slo_ns() -> u64 {
    SLO_NS.load(Ordering::Relaxed)
}

/// Should a reply with this latency and status be captured?
#[inline]
pub fn should_capture(total_ns: u64, status: u8) -> bool {
    let slo = slo_ns();
    slo != 0 && (total_ns > slo || status == STATUS_ERR_IO)
}

/// Assemble and buffer an exemplar for a finished request. The caller
/// must record the request's `ServerReply` span *before* capturing, so
/// the reply span is part of the chain.
pub fn capture(request_id: u64, conn: u64, opcode: u8, status: u8, total_ns: u64) {
    let events = collector::snapshot_for_request(request_id);
    let ex = Exemplar {
        request_id,
        conn,
        opcode,
        status,
        total_ns,
        events,
    };
    let mut buf = BUFFER.lock().expect("flight buffer");
    let cap = CAPACITY.load(Ordering::Relaxed);
    while buf.len() >= cap {
        buf.pop_front(); // FIFO: the oldest exemplar makes room
    }
    buf.push_back(ex);
    drop(buf);
    CAPTURED.fetch_add(1, Ordering::Relaxed);
}

/// Exemplars captured since process start (cumulative).
pub fn captured_total() -> u64 {
    CAPTURED.load(Ordering::Relaxed)
}

/// Exemplars currently buffered, oldest first.
pub fn exemplars() -> Vec<Exemplar> {
    BUFFER
        .lock()
        .expect("flight buffer")
        .iter()
        .cloned()
        .collect()
}

/// Discard every buffered exemplar (the cumulative capture counter is
/// not reset).
pub fn clear() {
    BUFFER.lock().expect("flight buffer").clear();
}

/// Render the buffered exemplars as one Chrome trace-event JSON
/// document: every exemplar's span chain in a shared `traceEvents`
/// array (each event's `args.req` names its owner), with an
/// `otherData.exemplars` index summarizing identity, status, and
/// latency per capture.
pub fn exemplars_json() -> String {
    let exemplars = exemplars();
    let mut buf = String::with_capacity(1024);
    buf.push_str("{\"traceEvents\":[");
    let mut first = true;
    for ex in &exemplars {
        for e in &ex.events {
            if !first {
                buf.push(',');
            }
            first = false;
            buf.push_str(&event_json(e));
        }
    }
    buf.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":");
    let mut index = String::from("[");
    for (i, ex) in exemplars.iter().enumerate() {
        if i > 0 {
            index.push(',');
        }
        let mut o = JsonObject::new();
        o.field_u64("request_id", ex.request_id)
            .field_u64("conn", ex.conn)
            .field_u64("opcode", ex.opcode as u64)
            .field_u64("status", ex.status as u64)
            .field_u64("total_ns", ex.total_ns)
            .field_u64("events", ex.events.len() as u64);
        index.push_str(&o.finish());
    }
    index.push(']');
    let mut other = JsonObject::new();
    other
        .field_str("source", "bpw-flight-recorder")
        .field_u64("slo_ns", slo_ns())
        .field_u64("captured_total", captured_total())
        .field_raw("exemplars", &index);
    buf.push_str(&other.finish());
    buf.push('}');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_metrics::JsonValue;

    /// The recorder is process-global; tests that arm it must not
    /// overlap.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn capture_predicate_honours_slo_and_err_io() {
        let _g = GATE.lock().unwrap();
        disarm();
        assert!(!should_capture(u64::MAX, STATUS_ERR_IO), "disarmed: never");
        arm(1_000, 4);
        assert!(!should_capture(999, 0));
        assert!(!should_capture(1_000, 0), "exactly at SLO is within budget");
        assert!(should_capture(1_001, 0));
        assert!(should_capture(1, STATUS_ERR_IO), "ERR_IO always captures");
        disarm();
    }

    #[test]
    fn buffer_is_bounded_and_evicts_oldest_first() {
        let _g = GATE.lock().unwrap();
        clear();
        arm(1, 3);
        for id in 1..=5u64 {
            capture(id, 7, 1, 0, 10_000 + id);
        }
        let got = exemplars();
        assert_eq!(
            got.iter().map(|e| e.request_id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "capacity 3 keeps the newest three, oldest evicted first"
        );
        assert!(captured_total() >= 5);
        clear();
        assert!(exemplars().is_empty());
        disarm();
    }

    #[test]
    fn exemplars_json_is_valid_chrome_trace_with_request_stamps() {
        let _g = GATE.lock().unwrap();
        clear();
        arm(1, 8);
        // Record real events under a request id so the snapshot path is
        // exercised end to end.
        let req_id = 0x00F1_1E77_u64;
        collector::set_current_request(req_id);
        crate::set_enabled(true);
        crate::record(crate::EventKind::ServerDequeue, crate::now_ns(), 120, 1);
        crate::record(crate::EventKind::ServerReply, crate::now_ns(), 450, 0);
        crate::set_enabled(false);
        collector::set_current_request(0);
        capture(req_id, 3, 1, 0, 450);

        let text = exemplars_json();
        let v = JsonValue::parse(&text).expect("exemplars must be valid JSON");
        let JsonValue::Arr(events) = v.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert!(events.len() >= 2, "both spans captured: {text}");
        for e in events {
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("req"))
                    .and_then(JsonValue::as_u64),
                Some(req_id),
                "every exemplar event carries its owning request id"
            );
            assert!(e.get("name").is_some() && e.get("ph").is_some() && e.get("ts").is_some());
        }
        let index = v
            .get("otherData")
            .and_then(|o| o.get("exemplars"))
            .expect("index");
        let JsonValue::Arr(index) = index else {
            panic!("exemplar index must be an array")
        };
        assert_eq!(
            index[0].get("request_id").and_then(JsonValue::as_u64),
            Some(req_id)
        );
        assert_eq!(
            index[0].get("total_ns").and_then(JsonValue::as_u64),
            Some(450)
        );
        clear();
        disarm();
    }
}
