//! Chrome trace-event JSON export.
//!
//! Produces the "JSON object format" of the Trace Event spec — a
//! `traceEvents` array of complete (`ph:"X"`) and instant (`ph:"i"`)
//! events — loadable in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. Timestamps are microseconds as doubles, the
//! spec's unit; sub-microsecond detail survives in the fraction.

use std::io;
use std::path::Path;

use bpw_metrics::json::{escape_str_into, JsonObject};

use crate::event::TraceEvent;

/// Render one event as a Chrome trace-event object.
pub(crate) fn event_json(e: &TraceEvent) -> String {
    let mut o = JsonObject::new();
    o.field_str("name", e.kind.name())
        .field_str("cat", "bpw")
        .field_str("ph", if e.kind.is_span() { "X" } else { "i" })
        .field_f64("ts", e.start_ns as f64 / 1_000.0)
        .field_u64("pid", 1)
        .field_u64("tid", e.tid as u64);
    if e.kind.is_span() {
        o.field_f64("dur", e.dur_ns as f64 / 1_000.0);
    } else {
        // Thread-scoped instant marker.
        o.field_str("s", "t");
    }
    let mut args = JsonObject::new();
    args.field_u64(e.kind.arg_name(), e.arg);
    if e.req != 0 {
        args.field_u64("req", e.req);
    }
    o.field_raw("args", &args.finish());
    o.finish()
}

/// Render `events` as a complete Chrome trace JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut buf = String::with_capacity(events.len() * 120 + 64);
    buf.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&event_json(e));
    }
    buf.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"source\":");
    escape_str_into(&mut buf, "bpw-trace");
    buf.push_str("}}");
    buf
}

/// Write `events` as Chrome trace JSON to `path`, creating parent
/// directories as needed.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TraceEvent]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use bpw_metrics::JsonValue;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                kind: EventKind::LockHold,
                tid: 0,
                start_ns: 1_500,
                dur_ns: 700,
                arg: 32,
                req: 0,
            },
            TraceEvent {
                kind: EventKind::Eviction,
                tid: 1,
                start_ns: 2_000,
                dur_ns: 0,
                arg: 42,
                req: 77,
            },
        ]
    }

    #[test]
    fn trace_json_parses_and_has_spec_fields() {
        let text = chrome_trace_json(&sample());
        let v = JsonValue::parse(&text).expect("chrome trace must be valid JSON");
        let JsonValue::Arr(events) = v.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(events.len(), 2);

        let span = &events[0];
        assert_eq!(span.get("name").unwrap().as_str(), Some("lock_hold"));
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(0.7));
        assert_eq!(
            span.get("args")
                .unwrap()
                .get("accesses_covered")
                .unwrap()
                .as_u64(),
            Some(32)
        );

        let inst = &events[1];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
        assert!(inst.get("dur").is_none(), "instants carry no dur");
        assert_eq!(
            inst.get("args")
                .unwrap()
                .get("victim_page")
                .unwrap()
                .as_u64(),
            Some(42)
        );

        // Request attribution: stamped events carry args.req, the
        // unattributed event omits it rather than emitting req:0.
        assert!(span.get("args").unwrap().get("req").is_none());
        assert_eq!(
            inst.get("args").unwrap().get("req").unwrap().as_u64(),
            Some(77)
        );
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let v = JsonValue::parse(&chrome_trace_json(&[])).unwrap();
        assert_eq!(v.get("traceEvents"), Some(&JsonValue::Arr(vec![])));
    }
}
