//! Typed trace events.
//!
//! Events are small `Copy` records so the hot-path ring buffer never
//! allocates: a kind, the recording thread's trace id, a start
//! timestamp relative to the collector's epoch, a duration (zero for
//! instant events), and one kind-specific argument.

/// What happened. Span kinds carry a duration; instant kinds mark a
/// point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A blocking `Lock()` could not be satisfied immediately; the span
    /// covers the wait. Arg: unused (0).
    LockWait,
    /// A replacement (or miss) lock critical section. Arg: page
    /// accesses whose bookkeeping the hold covered.
    LockHold,
    /// BP-Wrapper drained a thread's private FIFO queue into the
    /// policy. Arg: queue length at commit.
    BatchCommit,
    /// A victim page left the buffer pool. Instant. Arg: victim page id.
    Eviction,
    /// Miss-path storage I/O (write-back of the dirty victim, if any,
    /// plus the read of the requested page). Arg: page id read.
    MissIo,
    /// A WAL group-commit leader's physical flush. Arg: bytes flushed.
    WalFlush,
    /// One background-writer sweep. Arg: frames cleaned.
    BgwriterPass,
    /// A request entered the server's admission queue. Instant.
    /// Arg: request opcode (1 GET, 2 PUT, 3 SCAN).
    ServerEnqueue,
    /// A worker picked a request out of the queue; the span covers the
    /// time it sat queued. Arg: request opcode.
    ServerDequeue,
    /// A reply was written back to the client; the span covers
    /// admission to reply (end-to-end latency). Arg: response status
    /// byte (0 OK, 1 BUSY, 2 DROPPED, 3 ERR, 4 ERR_IO).
    ServerReply,
    /// A storage operation failed transiently and is being retried
    /// after backoff. Instant. Arg: page id.
    IoRetry,
    /// A storage operation failed permanently (retry budget exhausted);
    /// the frame involved was repaired and the error surfaced. Instant.
    /// Arg: page id.
    IoError,
    /// A miss had to wait for its page-table shard's miss lock; the
    /// span covers the wait. Arg: shard index.
    MissShardWait,
    /// A lock holder drained other threads' published overflow queues
    /// in the same critical section (combining commit). Arg: entries
    /// applied on behalf of other threads.
    CombinedCommit,
    /// A free-list stripe ran dry and a frame was stolen from another
    /// stripe. Instant. Arg: stripe stolen from.
    FreeListSteal,
    /// One event-loop wakeup: the span covers dispatching every ready
    /// fd, draining completions, and flushing coalesced writes. Arg:
    /// ready events delivered by this `epoll_wait`.
    EpollWakeup,
    /// A worker executing one request against the buffer pool: the span
    /// covers every pin — a hit's latch-and-go or a full miss with
    /// eviction and I/O (which then nests its own `MissIo` span). Arg:
    /// request opcode.
    PinOrMiss,
    /// A lock-free cache hit: the pin CAS landed without touching any
    /// lock. Instant. Arg: page id.
    HitPin,
}

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 18] = [
        EventKind::LockWait,
        EventKind::LockHold,
        EventKind::BatchCommit,
        EventKind::Eviction,
        EventKind::MissIo,
        EventKind::WalFlush,
        EventKind::BgwriterPass,
        EventKind::ServerEnqueue,
        EventKind::ServerDequeue,
        EventKind::ServerReply,
        EventKind::IoRetry,
        EventKind::IoError,
        EventKind::MissShardWait,
        EventKind::CombinedCommit,
        EventKind::FreeListSteal,
        EventKind::EpollWakeup,
        EventKind::PinOrMiss,
        EventKind::HitPin,
    ];

    /// Stable snake_case name (Chrome trace `name`, Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LockWait => "lock_wait",
            EventKind::LockHold => "lock_hold",
            EventKind::BatchCommit => "batch_commit",
            EventKind::Eviction => "eviction",
            EventKind::MissIo => "miss_io",
            EventKind::WalFlush => "wal_flush",
            EventKind::BgwriterPass => "bgwriter_pass",
            EventKind::ServerEnqueue => "server_enqueue",
            EventKind::ServerDequeue => "server_dequeue",
            EventKind::ServerReply => "server_reply",
            EventKind::IoRetry => "io_retry",
            EventKind::IoError => "io_error",
            EventKind::MissShardWait => "miss_shard_wait",
            EventKind::CombinedCommit => "combined_commit",
            EventKind::FreeListSteal => "free_list_steal",
            EventKind::EpollWakeup => "epoll_wakeup",
            EventKind::PinOrMiss => "pin_or_miss",
            EventKind::HitPin => "hit_pin",
        }
    }

    /// What [`TraceEvent::arg`] means for this kind (Chrome trace arg
    /// key).
    pub fn arg_name(self) -> &'static str {
        match self {
            EventKind::LockWait => "waiters",
            EventKind::LockHold => "accesses_covered",
            EventKind::BatchCommit => "queue_len",
            EventKind::Eviction => "victim_page",
            EventKind::MissIo => "page",
            EventKind::WalFlush => "bytes",
            EventKind::BgwriterPass => "cleaned",
            EventKind::ServerEnqueue => "opcode",
            EventKind::ServerDequeue => "opcode",
            EventKind::ServerReply => "status",
            EventKind::IoRetry => "page",
            EventKind::IoError => "page",
            EventKind::MissShardWait => "shard",
            EventKind::CombinedCommit => "entries",
            EventKind::FreeListSteal => "stripe",
            EventKind::EpollWakeup => "ready_events",
            EventKind::PinOrMiss => "opcode",
            EventKind::HitPin => "page",
        }
    }

    /// Does this kind carry a meaningful duration?
    pub fn is_span(self) -> bool {
        !matches!(
            self,
            EventKind::Eviction
                | EventKind::ServerEnqueue
                | EventKind::IoRetry
                | EventKind::IoError
                | EventKind::FreeListSteal
                | EventKind::HitPin
        )
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Trace thread id of the recording thread (assigned at ring
    /// registration, dense from 0).
    pub tid: u32,
    /// Nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Span length in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Kind-specific argument (see [`EventKind::arg_name`]).
    pub arg: u64,
    /// Owning request id (0 = not attributed to any request). Stamped
    /// from the recording thread's current-request cell, so every event
    /// a worker records while executing a request carries that
    /// request's id — the key the flight recorder groups spans by.
    pub req: u64,
}

impl TraceEvent {
    /// A filler event (ring slots start in this state; never exported).
    pub(crate) const EMPTY: TraceEvent = TraceEvent {
        kind: EventKind::LockWait,
        tid: 0,
        start_ns: 0,
        dur_ns: 0,
        arg: 0,
        req: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert!(k.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(!k.arg_name().is_empty());
        }
        assert_eq!(seen.len(), EventKind::ALL.len());
    }

    #[test]
    fn span_classification() {
        assert!(EventKind::LockHold.is_span());
        assert!(EventKind::BatchCommit.is_span());
        assert!(!EventKind::Eviction.is_span());
        assert!(!EventKind::ServerEnqueue.is_span());
    }
}
