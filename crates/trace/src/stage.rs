//! Per-thread stage-latency scratch.
//!
//! Attributing a request's end-to-end latency to stages (pin/hit vs
//! miss I/O vs batch commit) would normally force the buffer pool and
//! the wrapper to know about the server's metrics registry. Instead,
//! the layers that *spend* the time credit it into these thread-local
//! accumulators, and the worker that owns the request resets the
//! scratch before executing and reads it after — no cross-crate
//! coupling, no shared state, no hot-path allocation.
//!
//! Accumulation granularity differs by stage, deliberately:
//!
//! * **Miss I/O** is credited unconditionally (a miss already does
//!   storage I/O; two clock reads are noise there).
//! * **Batch commit** piggybacks on the existing enabled-gated trace
//!   span ([`crate::collector::span_end_staged`]): commits sit on the
//!   paper's hit-only hot path, where an unconditional pair of clock
//!   reads per batch would violate the disabled-tracing overhead
//!   budget. The stage histogram is therefore only populated while
//!   tracing is on (which a server with `--slo-us` armed always is).

use std::cell::Cell;

use crate::event::EventKind;

thread_local! {
    static MISS_IO_NS: Cell<u64> = const { Cell::new(0) };
    static BATCH_COMMIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// What the calling thread accumulated since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageScratch {
    /// Nanoseconds spent in miss-path storage I/O.
    pub miss_io_ns: u64,
    /// Nanoseconds spent committing access batches into the policy.
    pub batch_commit_ns: u64,
}

/// Zero the calling thread's accumulators (the worker does this when it
/// picks up a request).
#[inline]
pub fn reset() {
    MISS_IO_NS.with(|c| c.set(0));
    BATCH_COMMIT_NS.with(|c| c.set(0));
}

/// Credit miss-path storage I/O time to the current request.
#[inline]
pub fn add_miss_io(ns: u64) {
    MISS_IO_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Credit batch-commit time to the current request.
#[inline]
pub fn add_batch_commit(ns: u64) {
    BATCH_COMMIT_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Route a finished span's duration to the stage its kind belongs to
/// (no-op for kinds that are not stages).
#[inline]
pub fn add_for_kind(kind: EventKind, dur_ns: u64) {
    match kind {
        EventKind::BatchCommit => add_batch_commit(dur_ns),
        EventKind::MissIo => add_miss_io(dur_ns),
        _ => {}
    }
}

/// Read and zero the calling thread's accumulators (the worker does
/// this after executing a request).
#[inline]
pub fn take() -> StageScratch {
    StageScratch {
        miss_io_ns: MISS_IO_NS.with(|c| c.replace(0)),
        batch_commit_ns: BATCH_COMMIT_NS.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_accumulates_and_takes_per_thread() {
        reset();
        add_miss_io(100);
        add_miss_io(50);
        add_batch_commit(7);
        add_for_kind(EventKind::BatchCommit, 3);
        add_for_kind(EventKind::LockWait, 999); // not a stage: ignored
        let s = take();
        assert_eq!(s.miss_io_ns, 150);
        assert_eq!(s.batch_commit_ns, 10);
        assert_eq!(take(), StageScratch::default(), "take must reset");

        // Another thread's scratch is independent.
        std::thread::spawn(|| {
            add_miss_io(1);
            assert_eq!(take().miss_io_ns, 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        reset();
        add_miss_io(u64::MAX - 1);
        add_miss_io(100);
        assert_eq!(take().miss_io_ns, u64::MAX);
    }
}
