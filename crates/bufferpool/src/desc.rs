//! Buffer descriptors: per-frame metadata (tag, pin count, flags) in a
//! single packed atomic header — the "buffer header lock collapsed into
//! one CAS word" design modern engines converged on (PostgreSQL 9.6's
//! `BufferDesc.state`, LeanStore-style optimistic latches) — so a cache
//! hit pins and unpins with **zero lock acquisitions**.
//!
//! # Header layout (one `AtomicU64`)
//!
//! ```text
//!   63                    22 21 20 19 18 17                 0
//!  +------------------------+--+--+--+--+--------------------+
//!  |       version (42)     |LK|IO|DT|VD|      pins (18)     |
//!  +------------------------+--+--+--+--+--------------------+
//!   LK = slow-path writer latch   IO = io_in_progress
//!   DT = dirty                    VD = valid
//! ```
//!
//! * **Fast paths** ([`BufferDesc::try_pin`], [`BufferDesc::unpin`])
//!   are bounded CAS loops on the header. `try_pin` loads the header,
//!   rejects latched/invalid/in-I/O frames, reads the tag, and CASes
//!   `pins + 1` against the *exact* header it validated: because every
//!   slow-path writer bumps `version` when it releases the latch, a
//!   successful CAS proves no retag/invalidate/miss-fill intervened
//!   between the tag read and the pin landing (no ABA — the version
//!   would differ). `unpin` is the mirror decrement, with a checked
//!   release-mode guard: an underflow saturates at zero and bumps the
//!   `bpw_pin_underflow_total` counter instead of silently wrapping the
//!   pin count into the flag bits.
//! * **Slow paths** (miss fill, invalidate, eviction's victim filter,
//!   bgwriter, frame repair) acquire the `LK` bit via CAS —
//!   [`BufferDesc::lock`] — mutate an unpacked [`DescState`] copy, and
//!   publish it on guard drop with `version + 1` in a single release
//!   store. While `LK` is held, `try_pin` fails (callers retry through
//!   the fetch loop) and `unpin` spins (the latch is only ever held for
//!   a few loads/stores, never across I/O), so the guard's write-back
//!   cannot clobber a concurrent pin-count change.
//!
//! `tag` and `lsn` live outside the header as plain atomics written
//! only under the `LK` latch; readers validate them against the header
//! version seqlock-style ([`BufferDesc::snapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};

use bpw_replacement::PageId;

/// Bits 0..18: pin count (262 143 concurrent pins per frame).
const PIN_BITS: u32 = 18;
const PIN_MASK: u64 = (1 << PIN_BITS) - 1;
const PIN_ONE: u64 = 1;
/// Frame holds a current, usable copy of `tag`.
const VALID: u64 = 1 << 18;
/// The in-buffer copy is newer than storage.
const DIRTY: u64 = 1 << 19;
/// A read from storage is filling this frame.
const IO: u64 = 1 << 20;
/// Slow-path writer latch.
const LOCKED: u64 = 1 << 21;
/// Bits 22..64: version, bumped once per slow-path critical section
/// that may have mutated state. Wraps after 2^42 descriptor writes —
/// descriptor writes happen on misses, so at 10M misses/s that is two
/// weeks of sustained missing on one frame before a theoretical wrap.
const VERSION_SHIFT: u32 = 22;

/// How many CAS retries the fast path absorbs before giving up and
/// reporting failure (the caller re-runs the full lookup). Retries only
/// happen when a concurrent pin/unpin/writer moved the header first, so
/// a small bound suffices; failing is always safe.
const MAX_PIN_RETRIES: u32 = 16;

/// Mutable state of one buffer frame — the unpacked view of the header
/// plus the latch-protected `tag`/`lsn` fields. Slow paths mutate a
/// copy through [`DescGuard`]; it is also the snapshot type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DescState {
    /// The page currently (or last) cached in this frame.
    pub tag: PageId,
    /// True if the frame holds a current, usable copy of `tag`.
    pub valid: bool,
    /// True if the in-buffer copy is newer than storage.
    pub dirty: bool,
    /// True while a read from storage is filling this frame.
    pub io_in_progress: bool,
    /// Number of threads currently using the frame (an unpinned frame is
    /// the only eviction candidate).
    pub pins: u32,
    /// LSN of the latest WAL record covering this frame's contents
    /// (write-ahead rule: must be durable before the page is written
    /// back). Zero when clean or WAL-less.
    pub lsn: u64,
}

/// Outcome of a fast-path pin attempt: whether it pinned, and how many
/// CAS retries the loop needed (0 on the uncontended path). Retries are
/// the header's contention signal — the pool aggregates them into
/// `bpw_pin_cas_retries_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinAttempt {
    /// The frame is now pinned for the caller.
    pub pinned: bool,
    /// CAS attempts beyond the first (0 = clean first-try outcome).
    pub retries: u32,
}

/// Outcome of a fast-path unpin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnpinOutcome {
    /// One pin released.
    Released,
    /// The pin count was already zero: a pin/unpin imbalance. The count
    /// saturates at zero instead of wrapping; the caller bumps
    /// `bpw_pin_underflow_total`.
    Underflow,
}

/// A buffer descriptor: packed atomic header + latch-protected tag/lsn.
///
/// Deliberately *not* cache-line padded at the type level: the pool
/// stores descriptors as `CachePadded<BufferDesc>` so each frame's
/// header CAS traffic owns its line, while the `hit_scaling` benchmark
/// can build dense arrays to measure exactly what the padding buys.
#[derive(Debug, Default)]
pub struct BufferDesc {
    header: AtomicU64,
    tag: AtomicU64,
    lsn: AtomicU64,
}

#[inline(always)]
fn pins_of(h: u64) -> u64 {
    h & PIN_MASK
}

#[inline(always)]
fn pack(s: &DescState, version: u64) -> u64 {
    debug_assert!(u64::from(s.pins) <= PIN_MASK, "pin count overflow");
    (version << VERSION_SHIFT)
        | (u64::from(s.pins) & PIN_MASK)
        | if s.valid { VALID } else { 0 }
        | if s.dirty { DIRTY } else { 0 }
        | if s.io_in_progress { IO } else { 0 }
}

#[inline(always)]
fn unpack(h: u64, tag: u64, lsn: u64) -> DescState {
    DescState {
        tag,
        valid: h & VALID != 0,
        dirty: h & DIRTY != 0,
        io_in_progress: h & IO != 0,
        pins: pins_of(h) as u32,
        lsn,
    }
}

impl BufferDesc {
    /// New, invalid descriptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to pin the frame for `page`. Succeeds only if the frame holds
    /// a valid, I/O-complete copy of `page`. Lock-free: a bounded CAS
    /// loop whose success proves (via the header version) that the tag
    /// it validated was current at the instant the pin landed.
    #[inline]
    pub fn try_pin(&self, page: PageId) -> PinAttempt {
        let mut retries = 0u32;
        // Each iteration is a schedule point under the dst harness: the
        // window between the tag read and the CAS is exactly where a
        // concurrent invalidate/miss-fill can retag the frame.
        loop {
            bpw_dst::yield_point();
            let h = self.header.load(Ordering::Acquire);
            if h & (LOCKED | IO) != 0 || h & VALID == 0 {
                return PinAttempt {
                    pinned: false,
                    retries,
                };
            }
            let tag = self.tag.load(Ordering::Acquire);
            bpw_dst::yield_point();
            if tag != page {
                return PinAttempt {
                    pinned: false,
                    retries,
                };
            }
            // The tag matched when the header read `h`. The CAS pins
            // against that exact header: any slow-path writer that could
            // have retagged the frame in between released its latch with
            // a version bump, so the compare would fail and we retry
            // with a fresh tag. Release ordering on success keeps the
            // tag load from sinking below the pin store.
            #[cfg(not(dst_mutation = "no_version_check"))]
            let expected = h;
            // MUTANT (CI-verified): trust the *current* header instead
            // of the one the tag was validated under — the version/tag
            // re-verification is gone, so a retag that slips between the
            // tag read and the CAS goes unnoticed and the caller pins a
            // frame now holding a different page.
            #[cfg(dst_mutation = "no_version_check")]
            let expected = self.header.load(Ordering::Acquire);
            #[cfg(dst_mutation = "no_version_check")]
            if expected & (LOCKED | IO) != 0 || expected & VALID == 0 {
                return PinAttempt {
                    pinned: false,
                    retries,
                };
            }
            match self.header.compare_exchange_weak(
                expected,
                expected + PIN_ONE,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    bpw_dst::record(|| bpw_dst::Op::Pin {
                        page,
                        pins: pins_of(expected) as u32 + 1,
                    });
                    return PinAttempt {
                        pinned: true,
                        retries,
                    };
                }
                Err(_) => {
                    retries += 1;
                    if retries >= MAX_PIN_RETRIES {
                        // Persistent interference; let the caller redo
                        // the lookup rather than spinning here.
                        return PinAttempt {
                            pinned: false,
                            retries,
                        };
                    }
                }
            }
        }
    }

    /// Drop one pin. Lock-free CAS decrement with a checked guard that
    /// survives release builds: an unpin without a matching pin (the
    /// old `debug_assert!` caught it only in debug profiles — and a
    /// release-mode wrap would have corrupted the flag bits) saturates
    /// at zero and reports [`UnpinOutcome::Underflow`].
    #[inline]
    pub fn unpin(&self) -> UnpinOutcome {
        loop {
            bpw_dst::yield_point();
            let h = self.header.load(Ordering::Relaxed);
            if h & LOCKED != 0 {
                // A slow-path writer is mid-critical-section; its guard
                // will write the header back from its own copy, so a
                // concurrent decrement would be lost. Latch holds are a
                // few loads/stores — spin until it releases.
                bpw_dst::yield_now();
                continue;
            }
            if pins_of(h) == 0 {
                debug_assert!(false, "unpin without pin");
                return UnpinOutcome::Underflow;
            }
            if self
                .header
                .compare_exchange_weak(h, h - PIN_ONE, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                bpw_dst::record(|| bpw_dst::Op::Unpin {
                    page: self.tag.load(Ordering::Relaxed),
                    pins: pins_of(h) as u32 - 1,
                });
                return UnpinOutcome::Released;
            }
        }
    }

    /// Acquire the slow-path latch (the `LK` header bit), returning a
    /// guard over an unpacked [`DescState`] copy. Mutations publish on
    /// drop with a version bump. Spins (latch holds never span I/O);
    /// under the dst harness each spin is a voluntary yield.
    pub fn lock(&self) -> DescGuard<'_> {
        loop {
            bpw_dst::yield_point();
            if let Some(g) = self.try_lock() {
                return g;
            }
            bpw_dst::yield_now();
        }
    }

    /// Non-blocking latch attempt.
    pub fn try_lock(&self) -> Option<DescGuard<'_>> {
        let h = self.header.load(Ordering::Relaxed);
        if h & LOCKED != 0 {
            return None;
        }
        if self
            .header
            .compare_exchange(h, h | LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let state = unpack(
            h,
            self.tag.load(Ordering::Relaxed),
            self.lsn.load(Ordering::Relaxed),
        );
        Some(DescGuard {
            desc: self,
            entry: state,
            state,
            version: h >> VERSION_SHIFT,
        })
    }

    /// Snapshot the state (tests, stats, invariant checks): a
    /// seqlock-style read validated against the header version, so the
    /// tag/lsn fields are consistent with the flags.
    pub fn snapshot(&self) -> DescState {
        loop {
            bpw_dst::yield_point();
            let h1 = self.header.load(Ordering::Acquire);
            if h1 & LOCKED != 0 {
                bpw_dst::yield_now();
                std::hint::spin_loop();
                continue;
            }
            let tag = self.tag.load(Ordering::Acquire);
            let lsn = self.lsn.load(Ordering::Acquire);
            let h2 = self.header.load(Ordering::Acquire);
            // Same version and no latch on both reads: tag/lsn belong to
            // h1's version. Pin-count-only movement between h1 and h2 is
            // fine — report h2's count (it never changes tag/lsn).
            if h1 >> VERSION_SHIFT == h2 >> VERSION_SHIFT && h2 & LOCKED == 0 {
                return unpack(h2, tag, lsn);
            }
        }
    }

    /// Current pin count (racy read; tests and victim prefilters).
    pub fn pins(&self) -> u32 {
        pins_of(self.header.load(Ordering::Relaxed)) as u32
    }
}

/// RAII slow-path latch guard: derefs to a [`DescState`] copy; writes
/// it back (tag/lsn first, then the packed header with `version + 1`,
/// one release store) when dropped. Read-only critical sections skip
/// the version bump so they cannot fail concurrent optimistic pins.
pub struct DescGuard<'a> {
    desc: &'a BufferDesc,
    /// State as it was at latch acquisition (write-back elision check).
    entry: DescState,
    state: DescState,
    version: u64,
}

impl std::ops::Deref for DescGuard<'_> {
    type Target = DescState;

    fn deref(&self) -> &DescState {
        &self.state
    }
}

impl std::ops::DerefMut for DescGuard<'_> {
    fn deref_mut(&mut self) -> &mut DescState {
        &mut self.state
    }
}

impl Drop for DescGuard<'_> {
    fn drop(&mut self) {
        if self.state == self.entry {
            // Nothing changed: restore the pre-latch header unmodified
            // (no version bump), so optimistic pins that straddled this
            // read-only section still validate.
            self.desc
                .header
                .store(pack(&self.entry, self.version), Ordering::Release);
            return;
        }
        self.desc.tag.store(self.state.tag, Ordering::Relaxed);
        self.desc.lsn.store(self.state.lsn, Ordering::Relaxed);
        self.desc.header.store(
            pack(&self.state, self.version.wrapping_add(1)),
            Ordering::Release,
        );
    }
}

/// The seed's mutex-based descriptor, kept as the A/B baseline for the
/// `hit_scaling` benchmark and the lock-counting tests: same API shape
/// as [`BufferDesc`]'s fast paths, but every operation takes the
/// per-frame `parking_lot::Mutex` — one shared-cache-line RMW to lock,
/// another to unlock, per pin *and* per unpin.
#[derive(Debug, Default)]
pub struct MutexDesc {
    state: parking_lot::Mutex<DescState>,
}

impl MutexDesc {
    /// New, invalid descriptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the descriptor latch.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, DescState> {
        self.state.lock()
    }

    /// Mutex-guarded pin (the seed's `try_pin`).
    pub fn try_pin(&self, page: PageId) -> bool {
        let mut s = self.state.lock();
        if s.valid && !s.io_in_progress && s.tag == page {
            s.pins += 1;
            true
        } else {
            false
        }
    }

    /// Mutex-guarded unpin.
    pub fn unpin(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.pins > 0, "unpin without pin");
        s.pins = s.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_requires_valid_matching_tag() {
        let d = BufferDesc::new();
        assert!(!d.try_pin(5).pinned, "invalid frame must not pin");
        {
            let mut s = d.lock();
            s.tag = 5;
            s.valid = true;
        }
        assert!(d.try_pin(5).pinned);
        assert!(!d.try_pin(6).pinned, "wrong tag must not pin");
        assert_eq!(d.snapshot().pins, 1);
        assert_eq!(d.unpin(), UnpinOutcome::Released);
        assert_eq!(d.snapshot().pins, 0);
    }

    #[test]
    fn io_in_progress_blocks_pin() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 1;
            s.valid = true;
            s.io_in_progress = true;
        }
        assert!(!d.try_pin(1).pinned);
        d.lock().io_in_progress = false;
        assert!(d.try_pin(1).pinned);
    }

    #[test]
    fn concurrent_pins_count() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 9;
            s.valid = true;
        }
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for _ in 0..100 {
                        // Contended CAS may need several rounds; a pin
                        // must still always land (retries are bounded
                        // per attempt, not per pin).
                        while !d.try_pin(9).pinned {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(d.snapshot().pins, 800);
    }

    #[test]
    fn concurrent_pin_unpin_churn_balances() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 3;
            s.valid = true;
        }
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for _ in 0..2_000 {
                        if d.try_pin(3).pinned {
                            assert_eq!(d.unpin(), UnpinOutcome::Released);
                        }
                    }
                });
            }
        });
        assert_eq!(d.snapshot().pins, 0, "pins and unpins must balance");
    }

    #[test]
    fn latch_retag_fails_concurrent_pin_validation() {
        // A pin validated against the old tag must not survive a retag:
        // the version bump makes the CAS fail and the retry sees the
        // new tag.
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 1;
            s.valid = true;
        }
        assert!(d.try_pin(1).pinned);
        d.unpin();
        {
            let mut s = d.lock();
            s.tag = 2; // retag (what a miss-fill does after invalidate)
        }
        assert!(!d.try_pin(1).pinned, "stale tag must not pin");
        assert!(d.try_pin(2).pinned);
    }

    #[test]
    fn read_only_latch_does_not_bump_version() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 7;
            s.valid = true;
        }
        let before = d.header.load(Ordering::Relaxed) >> VERSION_SHIFT;
        {
            let g = d.lock();
            assert_eq!(g.tag, 7); // read-only section
        }
        let after = d.header.load(Ordering::Relaxed) >> VERSION_SHIFT;
        assert_eq!(before, after, "read-only latch must not bump version");
        {
            let mut g = d.lock();
            g.dirty = true;
        }
        let bumped = d.header.load(Ordering::Relaxed) >> VERSION_SHIFT;
        assert_eq!(bumped, after + 1, "mutation must bump version");
    }

    #[test]
    fn unpin_underflow_saturates_and_reports() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 4;
            s.valid = true;
            s.dirty = true;
        }
        // debug_assert fires in debug builds; the release-profile
        // behaviour is exercised by tests/release_pin_underflow.rs.
        if cfg!(not(debug_assertions)) {
            assert_eq!(d.unpin(), UnpinOutcome::Underflow);
            let s = d.snapshot();
            assert_eq!(s.pins, 0, "underflow must saturate, not wrap");
            assert!(s.valid && s.dirty, "flag bits must be untouched");
        }
    }

    #[test]
    fn try_lock_excludes_and_releases() {
        let d = BufferDesc::new();
        let g = d.try_lock().expect("uncontended latch");
        assert!(d.try_lock().is_none(), "latch must exclude");
        drop(g);
        assert!(d.try_lock().is_some());
    }

    #[test]
    fn snapshot_is_flag_tag_consistent() {
        let d = BufferDesc::new();
        std::thread::scope(|sc| {
            let writer = sc.spawn(|| {
                for i in 0..10_000u64 {
                    let mut s = d.lock();
                    s.tag = i;
                    s.lsn = i * 2;
                    s.valid = i % 2 == 0;
                }
            });
            for _ in 0..10_000 {
                let s = d.snapshot();
                assert_eq!(s.lsn, s.tag * 2, "snapshot tore tag against lsn");
                assert_eq!(
                    s.valid,
                    s.tag.is_multiple_of(2),
                    "snapshot tore tag vs flags"
                );
            }
            writer.join().unwrap();
        });
    }

    #[test]
    fn mutex_baseline_matches_semantics() {
        let d = MutexDesc::new();
        assert!(!d.try_pin(5));
        {
            let mut s = d.lock();
            s.tag = 5;
            s.valid = true;
        }
        assert!(d.try_pin(5));
        assert!(!d.try_pin(6));
        d.unpin();
        assert_eq!(d.lock().pins, 0);
    }
}
