//! Buffer descriptors: per-frame metadata (tag, pin count, flags) under
//! a short per-frame latch, mirroring PostgreSQL's `BufferDesc` with its
//! buffer-header spinlock.

use bpw_replacement::PageId;
use parking_lot::Mutex;

/// Mutable state of one buffer frame, protected by the descriptor latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DescState {
    /// The page currently (or last) cached in this frame.
    pub tag: PageId,
    /// True if the frame holds a current, usable copy of `tag`.
    pub valid: bool,
    /// True if the in-buffer copy is newer than storage.
    pub dirty: bool,
    /// True while a read from storage is filling this frame.
    pub io_in_progress: bool,
    /// Number of threads currently using the frame (an unpinned frame is
    /// the only eviction candidate).
    pub pins: u32,
    /// LSN of the latest WAL record covering this frame's contents
    /// (write-ahead rule: must be durable before the page is written
    /// back). Zero when clean or WAL-less.
    pub lsn: u64,
}

/// A buffer descriptor: latch + state.
#[derive(Debug, Default)]
pub struct BufferDesc {
    state: Mutex<DescState>,
}

impl BufferDesc {
    /// New, invalid descriptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the descriptor latch.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, DescState> {
        self.state.lock()
    }

    /// Try to pin the frame for `page`. Succeeds only if the frame holds
    /// a valid, I/O-complete copy of `page`. Returns false otherwise.
    pub fn try_pin(&self, page: PageId) -> bool {
        let mut s = self.state.lock();
        if s.valid && !s.io_in_progress && s.tag == page {
            s.pins += 1;
            true
        } else {
            false
        }
    }

    /// Drop one pin.
    pub fn unpin(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.pins > 0, "unpin without pin");
        s.pins -= 1;
    }

    /// Snapshot the state (test/debug aid).
    pub fn snapshot(&self) -> DescState {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_requires_valid_matching_tag() {
        let d = BufferDesc::new();
        assert!(!d.try_pin(5), "invalid frame must not pin");
        {
            let mut s = d.lock();
            s.tag = 5;
            s.valid = true;
        }
        assert!(d.try_pin(5));
        assert!(!d.try_pin(6), "wrong tag must not pin");
        assert_eq!(d.snapshot().pins, 1);
        d.unpin();
        assert_eq!(d.snapshot().pins, 0);
    }

    #[test]
    fn io_in_progress_blocks_pin() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 1;
            s.valid = true;
            s.io_in_progress = true;
        }
        assert!(!d.try_pin(1));
        d.lock().io_in_progress = false;
        assert!(d.try_pin(1));
    }

    #[test]
    fn concurrent_pins_count() {
        let d = BufferDesc::new();
        {
            let mut s = d.lock();
            s.tag = 9;
            s.valid = true;
        }
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for _ in 0..100 {
                        assert!(d.try_pin(9));
                    }
                });
            }
        });
        assert_eq!(d.snapshot().pins, 800);
    }
}
