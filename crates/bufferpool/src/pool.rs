//! The buffer pool: page table + descriptors + frames + storage +
//! replacement manager, with the fetch path of Fig. 1/Fig. 3 in the
//! paper — concurrent hash-table lookup, per-frame pinning, and
//! replacement bookkeeping routed through a [`ReplacementManager`].

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bpw_core::{CachePadded, InstrumentedLock};
use bpw_metrics::{LockShardSummary, LockSnapshot, LockStats};
use bpw_replacement::{FrameId, MissOutcome, PageId, SampleTap};
use parking_lot::Mutex;

use crate::desc::{BufferDesc, UnpinOutcome};
use crate::free_list::StripedFreeList;
use crate::managers::{ManagerHandle, ReplacementManager};
use crate::page_table::PageTable;
use crate::storage::Storage;
use crate::swap::SwapReport;
use crate::wal::Wal;

/// Why [`BufferPool::invalidate`] did or did not drop a page.
/// `NotResident` is permanent (until someone re-fetches the page);
/// `Busy` is transient and worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidateOutcome {
    /// The page was resident and is now dropped; its frame is free.
    Invalidated,
    /// The page is not in the buffer — nothing to drop.
    NotResident,
    /// The page is resident but pinned, mid-I/O, or mid-eviction; retry
    /// after the current user releases it.
    Busy,
}

impl InvalidateOutcome {
    /// Did the call actually drop the page?
    pub fn is_invalidated(self) -> bool {
        matches!(self, InvalidateOutcome::Invalidated)
    }

    /// Could a retry succeed where this call did not?
    pub fn is_retryable(self) -> bool {
        matches!(self, InvalidateOutcome::Busy)
    }
}

/// Aggregate pool statistics.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Fetches satisfied from the buffer.
    pub hits: AtomicU64,
    /// Fetches that read from storage.
    pub misses: AtomicU64,
    /// Dirty victims written back.
    pub writebacks: AtomicU64,
    /// Storage operations retried after a transient fault.
    pub io_retries: AtomicU64,
    /// Storage operations that failed after exhausting their retry
    /// budget (each surfaced an error to the caller or re-dirtied the
    /// frame; none wedged a frame).
    pub io_errors: AtomicU64,
    /// CAS retries inside `try_pin` beyond the first attempt — the
    /// lock-free hit path's contention signal (each retry is one more
    /// loop iteration, not a blocked thread).
    pub pin_cas_retries: AtomicU64,
    /// Unpins that found the pin count already at zero (pin/unpin
    /// imbalance). The count saturates instead of wrapping; this should
    /// stay 0 outside deliberate fault injection.
    pub pin_underflows: AtomicU64,
}

/// How the pool retries failed storage operations before giving up:
/// bounded attempts with exponential backoff, the standard treatment
/// for transient device faults.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Sleep before retry `k` is `base_backoff * 2^k`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(50),
        }
    }
}

impl RetryPolicy {
    /// No retries: every fault surfaces immediately (tests).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff.saturating_mul(1u32 << attempt.min(10))
    }
}

impl PoolStats {
    /// Hit ratio over all fetches so far.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// A DBMS-style buffer pool generic over its replacement manager.
pub struct BufferPool<M: ReplacementManager> {
    table: PageTable,
    /// One descriptor per frame, each on its own cache line: the pin
    /// CAS traffic of hot frames must not false-share with neighbours
    /// (the `hit_scaling` bench A/Bs padded vs dense to quantify this).
    descs: Vec<CachePadded<BufferDesc>>,
    data: Vec<Mutex<Box<[u8]>>>,
    free: StripedFreeList,
    /// Serialize victim selection + table rebinding (not the I/O), one
    /// lock per page-table shard: misses on pages in different shards
    /// run their whole slow path concurrently. Instrumented: misses are
    /// where lock contention concentrates once BP-Wrapper removes it
    /// from the hit path. A miss only ever holds the one lock its page
    /// hashes to — no ordering between shard locks exists, so no
    /// deadlock can.
    miss_locks: Vec<InstrumentedLock<()>>,
    manager: M,
    storage: Arc<dyn Storage>,
    wal: Option<Arc<Wal>>,
    stats: PoolStats,
    page_size: usize,
    retry: RetryPolicy,
    /// Sampled-access tap feeding the adaptive-replacement advisor.
    /// `None` (the default) costs one branch on the fetch path.
    tap: Option<Arc<SampleTap>>,
}

impl<M: ReplacementManager> BufferPool<M> {
    /// Build a pool of `frames` frames of `page_size` bytes each, with
    /// one miss lock and one free-list stripe per page-table shard.
    pub fn new(frames: usize, page_size: usize, manager: M, storage: Arc<dyn Storage>) -> Self {
        assert!(frames >= 1);
        let table = PageTable::new(frames / 4);
        let shards = table.shards();
        BufferPool {
            table,
            descs: (0..frames)
                .map(|_| CachePadded::new(BufferDesc::new()))
                .collect(),
            data: (0..frames)
                .map(|_| Mutex::new(vec![0u8; page_size].into_boxed_slice()))
                .collect(),
            free: StripedFreeList::new(frames, shards),
            miss_locks: Self::build_miss_locks(shards),
            manager,
            storage,
            wal: None,
            stats: PoolStats::default(),
            page_size,
            retry: RetryPolicy::default(),
            tap: None,
        }
    }

    /// Attach a sampled-access tap (builder style): every
    /// `tap.period()`-th fetch per session pushes its page id into the
    /// tap's lossy ring for the adaptive advisor to score. The sampling
    /// countdown is session-local, so the steady-state fetch cost with
    /// a tap attached is one decrement and (1-in-N) a couple of relaxed
    /// atomics — never a lock.
    pub fn with_sample_tap(mut self, tap: Arc<SampleTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// The attached sample tap, if any.
    pub fn sample_tap(&self) -> Option<&Arc<SampleTap>> {
        self.tap.as_ref()
    }

    /// Hot-swap the replacement manager for `next`, if the configured
    /// manager supports it (i.e. it is a
    /// [`SwapManager`](crate::swap::SwapManager), possibly boxed).
    /// Returns `None` — dropping `next` — for static managers.
    ///
    /// Residency is frozen for the duration by acquiring **every**
    /// miss-shard lock (in index order; safe because every other pool
    /// path holds at most one shard lock and never waits for a second):
    /// misses, invalidations, and frame repair are all excluded, so the
    /// resident set transferred by `export_state`/`import_state` cannot
    /// change underfoot. Hits keep flowing — they never touch residency
    /// and the swap epoch protocol (swap.rs) handles their advice.
    pub fn swap_manager(&self, next: Box<dyn ReplacementManager>) -> Option<SwapReport> {
        let _guards: Vec<_> = self.miss_locks.iter().map(|l| l.lock()).collect();
        bpw_dst::yield_point();
        self.manager.swap_to(next)
    }

    fn build_miss_locks(shards: usize) -> Vec<InstrumentedLock<()>> {
        (0..shards)
            .map(|i| {
                InstrumentedLock::with_wait_event(
                    (),
                    Arc::new(LockStats::new()),
                    bpw_trace::EventKind::MissShardWait,
                    i as u64,
                )
            })
            .collect()
    }

    /// Override the miss-path partition width (builder style; call
    /// before the first fetch). `1` restores the seed's single global
    /// miss lock + free list — the coarse baseline the scaling
    /// benchmark compares against. Values above the page-table shard
    /// count are clamped to it (extra locks could never be indexed).
    pub fn with_miss_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one miss shard");
        assert_eq!(
            self.free.len(),
            self.frames(),
            "with_miss_shards must be called before any fetch"
        );
        let n = shards.min(self.table.shards());
        self.miss_locks = Self::build_miss_locks(n);
        self.free = StripedFreeList::new(self.frames(), n);
        self
    }

    /// The shard lock index `page`'s miss path serializes on: the page
    /// table's shard function, folded onto the miss-lock count.
    fn miss_shard(&self, page: PageId) -> usize {
        self.table.shard_index(page) % self.miss_locks.len()
    }

    /// Set the storage retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The storage retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Attach a write-ahead log: page writes append records and dirty
    /// write-backs wait for durability (WAL-before-data).
    pub fn with_wal(mut self, wal: Arc<Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Commit everything logged so far (transaction boundary): group
    /// commit makes the log durable up to the current append point.
    /// An `Err` means the log device failed after retries; nothing was
    /// lost (the records stay buffered) and the commit may be retried.
    pub fn commit_transaction(&self) -> io::Result<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let lsn = wal.append_lsn();
        self.io_with_retries(0, || wal.commit(lsn))
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.descs.len()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The replacement manager.
    pub fn manager(&self) -> &M {
        &self.manager
    }

    /// Aggregate contention profile of the miss path (victim selection
    /// and rebinding), summed over every shard lock — the legacy
    /// single-lock view.
    pub fn miss_lock_snapshot(&self) -> LockSnapshot {
        self.miss_lock_shard_snapshots()
            .iter()
            .fold(LockSnapshot::default(), |acc, s| acc.merge(s))
    }

    /// Number of miss-path shard locks.
    pub fn miss_lock_shards(&self) -> usize {
        self.miss_locks.len()
    }

    /// Per-shard miss-lock snapshots, in shard order.
    pub fn miss_lock_shard_snapshots(&self) -> Vec<LockSnapshot> {
        self.miss_locks
            .iter()
            .map(|l| l.stats().snapshot())
            .collect()
    }

    /// Shard-aware miss-lock summary (totals + hottest shard).
    pub fn miss_lock_summary(&self) -> LockShardSummary {
        LockShardSummary::from_snapshots(&self.miss_lock_shard_snapshots())
    }

    /// Free-list pops served by a stripe other than the asker's home
    /// (work-stealing rebalances).
    pub fn free_list_steals(&self) -> u64 {
        self.free.steals()
    }

    /// Frames parked on the free list's cold stack by frame repair.
    pub fn free_list_cold_pushes(&self) -> u64 {
        self.free.cold_pushes()
    }

    /// Page-table lookups that retried through the locked fallback path
    /// (torn optimistic read or a spilled shard).
    pub fn page_table_fallback_reads(&self) -> u64 {
        self.table.fallback_reads()
    }

    /// The storage device.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// Create a per-thread session (carries the manager handle, i.e. the
    /// BP-Wrapper private queue for wrapped managers).
    pub fn session(&self) -> PoolSession<'_, M> {
        PoolSession {
            pool: self,
            handle: self.manager.handle(),
            sample_countdown: self.tap.as_ref().map_or(0, |t| t.period()),
        }
    }

    /// Drop `page` from the buffer (e.g. relation truncation),
    /// distinguishing "nothing to drop" from "in use right now" so
    /// callers know whether a retry can help. Serializes on the page's
    /// own shard lock only.
    pub fn invalidate(&self, page: PageId) -> InvalidateOutcome {
        let out = self.invalidate_inner(page);
        bpw_dst::record(|| bpw_dst::Op::Invalidate {
            page,
            outcome: match out {
                InvalidateOutcome::Invalidated => 0,
                InvalidateOutcome::NotResident => 1,
                InvalidateOutcome::Busy => 2,
            },
        });
        out
    }

    fn invalidate_inner(&self, page: PageId) -> InvalidateOutcome {
        let shard = self.miss_shard(page);
        let _g = self.miss_locks[shard].lock();
        bpw_dst::yield_point();
        let Some(frame) = self.table.get(page) else {
            return InvalidateOutcome::NotResident;
        };
        bpw_dst::yield_point();
        {
            let mut s = self.descs[frame as usize].lock();
            if s.pins > 0 || s.io_in_progress || !(s.valid && s.tag == page) {
                return InvalidateOutcome::Busy;
            }
            s.valid = false;
            s.dirty = false;
        }
        self.table.remove(page);
        self.manager.invalidate(frame);
        self.free.push(shard, frame);
        InvalidateOutcome::Invalidated
    }

    /// Frame `f`'s descriptor (crate-internal: background writer).
    pub(crate) fn desc(&self, f: FrameId) -> &BufferDesc {
        &self.descs[f as usize]
    }

    /// Lock frame `f`'s content (crate-internal: background writer).
    pub(crate) fn data_lock(&self, f: FrameId) -> parking_lot::MutexGuard<'_, Box<[u8]>> {
        self.data[f as usize].lock()
    }

    /// Crash recovery: redo every durable WAL record into `storage`
    /// (later records overwrite earlier ones, so the final state is the
    /// last committed version of each page). Run against a *fresh* pool's
    /// storage after a crash that lost dirty buffers. Returns the first
    /// storage error, if any (recovery should be restarted on a healthy
    /// device; redo is idempotent).
    pub fn replay_wal_into_storage(wal: &Wal, storage: &dyn Storage) -> io::Result<()> {
        let mut first_err = None;
        wal.replay(|payload| {
            if first_err.is_none() && payload.len() >= 8 {
                let page = PageId::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                if let Err(e) = storage.write_page(page, &payload[8..]) {
                    first_err = Some(e);
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Run `op` with bounded retries and exponential backoff per the
    /// pool's [`RetryPolicy`]. Emits an `IoRetry` trace event per retry
    /// and an `IoError` (plus the `io_errors` counter) on exhaustion.
    pub(crate) fn io_with_retries(
        &self,
        page: PageId,
        mut op: impl FnMut() -> io::Result<()>,
    ) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                        bpw_trace::instant(bpw_trace::EventKind::IoError, page);
                        return Err(e);
                    }
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    bpw_trace::instant(bpw_trace::EventKind::IoRetry, page);
                    let backoff = self.retry.backoff(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Undo a failed miss: the frame was claimed for `page` (tagged,
    /// pinned once, `io_in_progress`) but the I/O never completed. Put
    /// everything back the way it was — mapping removed, replacement
    /// state forgotten, frame on the free list — so no frame is ever
    /// wedged and a later fetch of `page` starts from scratch.
    fn repair_failed_frame(&self, page: PageId, frame: FrameId) {
        let _g = self.miss_locks[self.miss_shard(page)].lock();
        {
            let mut s = self.descs[frame as usize].lock();
            debug_assert!(s.io_in_progress, "repair of a frame not in I/O");
            debug_assert_eq!(s.tag, page, "repair of a re-tagged frame");
            debug_assert_eq!(s.pins, 1, "only the failed fetch may hold a pin");
            s.valid = false;
            s.dirty = false;
            s.io_in_progress = false;
            s.pins = 0; // the caller gets an error, not a guard
            s.lsn = 0;
        }
        bpw_dst::record(|| bpw_dst::Op::Unpin { page, pins: 0 });
        self.table.remove(page);
        self.manager.invalidate(frame);
        // Cold push: the frame just hosted a failing I/O; a plain LIFO
        // push would hand it straight to the next miss, so one bad page
        // could monopolize a single frame indefinitely.
        self.free.push_cold(frame);
    }

    /// Number of valid resident pages (O(frames); tests).
    pub fn resident_count(&self) -> usize {
        self.descs.iter().filter(|d| d.snapshot().valid).count()
    }

    /// Frames currently on the free list (never used or freed by
    /// [`invalidate`](Self::invalidate)).
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Check that no two pages map to the same frame and every mapped
    /// frame's descriptor agrees with the mapping (O(table); tests).
    pub fn check_mapping_invariants(&self) {
        let mut owner = vec![None::<PageId>; self.frames()];
        self.table.for_each(|page, frame| {
            if let Some(prev) = owner[frame as usize].replace(page) {
                panic!("frame {frame} mapped by both page {prev} and page {page}");
            }
        });
    }
}

/// A thread's session against the pool.
pub struct PoolSession<'p, M: ReplacementManager> {
    pool: &'p BufferPool<M>,
    handle: Box<dyn ManagerHandle + 'p>,
    /// 1-in-N sampling countdown for the advisor tap — session-local so
    /// the common fetch pays no shared read-modify-write for it.
    sample_countdown: u64,
}

impl<'p, M: ReplacementManager> PoolSession<'p, M> {
    /// Fetch `page`, pinning it in the buffer. Blocks on storage I/O for
    /// a miss. Returns a guard that unpins on drop, or the storage error
    /// once the miss path has exhausted its retry budget — in which case
    /// the claimed frame has been fully repaired (unpinned, unmapped,
    /// returned to the free list) and the fetch may simply be retried.
    pub fn fetch(&mut self, page: PageId) -> io::Result<PinnedPage<'p, M>> {
        // Advisor tap: 1-in-N sampling with a session-local countdown.
        // No tap (the default) is one branch; with a tap the off-sample
        // cost is the decrement, and the on-sample cost is a couple of
        // relaxed atomics into a lossy ring — never a lock, so the
        // lock-free-hit census is unaffected either way.
        if let Some(tap) = self.pool.tap.as_deref() {
            self.sample_countdown -= 1;
            if self.sample_countdown == 0 {
                self.sample_countdown = tap.period();
                tap.push(page);
            }
        }
        loop {
            // Fast path: concurrent hash lookup + pin. The yield between
            // lookup and pin is where eviction/invalidation can rebind
            // the frame under the dst harness.
            bpw_dst::yield_point();
            if let Some(frame) = self.pool.table.get(page) {
                bpw_dst::yield_point();
                let attempt = self.pool.descs[frame as usize].try_pin(page);
                if attempt.retries > 0 {
                    // Off the common path: only contended pins pay this
                    // shared RMW (an unconditional fetch_add here would
                    // reintroduce per-hit cache-line traffic).
                    self.pool
                        .stats
                        .pin_cas_retries
                        .fetch_add(u64::from(attempt.retries), Ordering::Relaxed);
                }
                if attempt.pinned {
                    bpw_trace::instant(bpw_trace::EventKind::HitPin, page);
                    self.pool.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.handle.on_hit(page, frame);
                    bpw_dst::record(|| bpw_dst::Op::FetchDone {
                        page,
                        frame,
                        hit: true,
                    });
                    return Ok(PinnedPage {
                        pool: self.pool,
                        frame,
                        page,
                    });
                }
                // Mapping present but unpinnable: I/O in progress or a
                // stale mapping mid-eviction. Yield and retry. (A failed
                // I/O removes the mapping, so this cannot spin forever.)
                bpw_dst::yield_now();
                continue;
            }
            // Miss path.
            if let Some(pinned) = self.fetch_miss(page)? {
                return Ok(pinned);
            }
            bpw_dst::yield_now();
        }
    }

    /// Slow path. Returns `Ok(None)` when the state changed underfoot
    /// (the caller retries), `Err` when storage failed after retries.
    fn fetch_miss(&mut self, page: PageId) -> io::Result<Option<PinnedPage<'p, M>>> {
        let pool = self.pool;
        let shard = pool.miss_shard(page);
        let mut guard = pool.miss_locks[shard].lock();
        bpw_dst::yield_point();
        // Re-check: another thread may have loaded the page while we
        // waited for this shard's miss lock.
        if pool.table.get(page).is_some() {
            drop(guard);
            return Ok(None); // retry via the hit path
        }
        guard.cover_accesses(1);
        let free = pool.free.pop(shard);
        // Victim filter: pinned or in-I/O frames are rejected; the
        // accepted frame is atomically invalidated under its latch so no
        // new pin can slip in after selection.
        let descs = &pool.descs;
        let outcome = self.handle.on_miss(page, free, &mut |f| {
            let mut s = descs[f as usize].lock();
            if s.pins == 0 && !s.io_in_progress && s.valid {
                s.valid = false;
                true
            } else {
                false
            }
        });
        let (frame, victim) = match outcome {
            MissOutcome::AdmittedFree(f) => (f, None),
            MissOutcome::Evicted { frame, victim } => (frame, Some(victim)),
            MissOutcome::NoEvictableFrame => {
                // Everything pinned: put the free frame back (none was
                // consumed — on_miss only returns NoEvictableFrame when
                // free was None) and let the caller retry. No miss is
                // counted: the logical miss has not completed, and a
                // retry would otherwise double-count it.
                debug_assert!(free.is_none());
                return Ok(None);
            }
        };
        // Claim the frame for the new page, marked in-I/O.
        let (was_dirty, victim_lsn) = {
            let mut s = pool.descs[frame as usize].lock();
            debug_assert_eq!(s.pins, 0, "evicted frame had pins");
            let was_dirty = s.dirty && victim.is_some();
            let victim_lsn = s.lsn;
            s.tag = page;
            s.valid = true;
            s.dirty = false;
            s.io_in_progress = true;
            s.pins = 1; // pinned for the caller
            s.lsn = 0;
            if was_dirty {
                (was_dirty, victim_lsn)
            } else {
                (was_dirty, 0)
            }
        };
        bpw_dst::record(|| bpw_dst::Op::Pin { page, pins: 1 });
        if let Some(v) = victim {
            bpw_trace::instant(bpw_trace::EventKind::Eviction, v);
            pool.table.remove(v);
        }
        pool.table.insert(page, frame);
        // I/O happens outside the miss lock: other misses proceed.
        drop(guard);
        // The frame is now mapped with io_in_progress set and the shard
        // lock released — the window where concurrent fetchers of the
        // same page spin on the unpinnable mapping and invalidate must
        // report Busy.
        bpw_dst::yield_point();
        // Miss I/O is timed unconditionally (not just when tracing is
        // on): the stage scratch is how the server attributes a
        // request's latency to disk time, and two clock reads are noise
        // next to a storage round trip.
        let io_t0 = std::time::Instant::now();
        let io_span = bpw_trace::span_start();
        let io_result = (|| -> io::Result<()> {
            let mut data = pool.data[frame as usize].lock();
            if was_dirty {
                let v = victim.expect("dirty implies eviction");
                pool.io_with_retries(v, || {
                    // WAL-before-data: the log covering this page must
                    // be durable before its new version reaches storage.
                    if let (Some(wal), true) = (&pool.wal, victim_lsn > 0) {
                        wal.commit(victim_lsn)?;
                    }
                    pool.storage.write_page(v, &data)
                })?;
                pool.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            let buf = &mut **data;
            pool.io_with_retries(page, || pool.storage.read_page(page, &mut *buf))
        })();
        if let Err(e) = io_result {
            // The dirty victim's latest bytes may be lost here (its
            // committed WAL records still cover it when a log is
            // attached); what must never happen is a wedged frame.
            bpw_trace::stage::add_miss_io(io_t0.elapsed().as_nanos() as u64);
            pool.repair_failed_frame(page, frame);
            return Err(e);
        }
        bpw_dst::yield_point();
        pool.descs[frame as usize].lock().io_in_progress = false;
        // Count the miss only now that it has completed: a retry after
        // NoEvictableFrame or an I/O failure must not count twice.
        pool.stats.misses.fetch_add(1, Ordering::Relaxed);
        bpw_trace::span_end(bpw_trace::EventKind::MissIo, io_span, page);
        bpw_trace::stage::add_miss_io(io_t0.elapsed().as_nanos() as u64);
        bpw_dst::record(|| bpw_dst::Op::FetchDone {
            page,
            frame,
            hit: false,
        });
        Ok(Some(PinnedPage { pool, frame, page }))
    }

    /// Commit any deferred replacement bookkeeping (BP-Wrapper queue).
    pub fn flush(&mut self) {
        self.handle.flush();
    }
}

impl<'p, M: ReplacementManager> Drop for PoolSession<'p, M> {
    fn drop(&mut self) {
        self.handle.flush();
    }
}

/// A pinned page: read/write access to the frame contents; unpins on
/// drop.
pub struct PinnedPage<'p, M: ReplacementManager> {
    pool: &'p BufferPool<M>,
    frame: FrameId,
    page: PageId,
}

impl<'p, M: ReplacementManager> PinnedPage<'p, M> {
    /// The page id this guard pins.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// The frame holding the page.
    pub fn frame(&self) -> FrameId {
        self.frame
    }

    /// Read the page contents.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.pool.data[self.frame as usize].lock();
        f(&data)
    }

    /// Mutate the page contents and mark the page dirty. With a WAL
    /// attached, a record describing the write is appended and the
    /// frame's recovery LSN advances (flushed lazily at transaction
    /// commit or forced by write-back).
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut data = self.pool.data[self.frame as usize].lock();
        let r = f(&mut data);
        let mut s = self.pool.descs[self.frame as usize].lock();
        s.dirty = true;
        if let Some(wal) = &self.pool.wal {
            // Physical redo record: page id + after-image, so the log is
            // replayable (a production system would log byte diffs).
            let mut rec = Vec::with_capacity(8 + data.len());
            rec.extend_from_slice(&self.page.to_le_bytes());
            rec.extend_from_slice(&data);
            let lsn = wal.append(&rec);
            s.lsn = s.lsn.max(lsn);
        }
        r
    }
}

impl<'p, M: ReplacementManager> std::fmt::Debug for PinnedPage<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("page", &self.page)
            .field("frame", &self.frame)
            .finish()
    }
}

impl<'p, M: ReplacementManager> Drop for PinnedPage<'p, M> {
    fn drop(&mut self) {
        bpw_dst::yield_point();
        if self.pool.descs[self.frame as usize].unpin() == UnpinOutcome::Underflow {
            self.pool
                .stats
                .pin_underflows
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::{ClockManager, CoarseManager, WrappedManager};
    use crate::storage::SimDisk;
    use bpw_core::WrapperConfig;
    use bpw_replacement::{Lirs, ReplacementPolicy, TwoQ};

    fn pool_2q(frames: usize) -> BufferPool<CoarseManager<TwoQ>> {
        BufferPool::new(
            frames,
            128,
            CoarseManager::new(TwoQ::new(frames)),
            Arc::new(SimDisk::instant()),
        )
    }

    #[test]
    fn fetch_reads_correct_content() {
        let pool = pool_2q(4);
        let mut s = pool.session();
        let p = s.fetch(42).unwrap();
        p.read(|data| {
            assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 42);
        });
        drop(p);
        assert_eq!(pool.stats().misses.load(Ordering::Relaxed), 1);
        let p = s.fetch(42).unwrap();
        drop(p);
        assert_eq!(pool.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.storage().reads(), 1, "second fetch must not hit disk");
    }

    #[test]
    fn eviction_and_reload() {
        let pool = pool_2q(2);
        let mut s = pool.session();
        for p in [1u64, 2, 3] {
            drop(s.fetch(p).unwrap());
        }
        // One of 1, 2 was evicted; fetch both again -> at least one miss.
        drop(s.fetch(1).unwrap());
        drop(s.fetch(2).unwrap());
        let st = pool.stats();
        assert!(st.misses.load(Ordering::Relaxed) >= 4);
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = pool_2q(2);
        let mut s = pool.session();
        let held = s.fetch(1).unwrap(); // stays pinned
        drop(s.fetch(2).unwrap());
        for p in 10..20u64 {
            drop(s.fetch(p).unwrap()); // must always evict the *other* frame
        }
        held.read(|data| {
            assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 1);
        });
        drop(held);
    }

    #[test]
    fn dirty_pages_written_back() {
        let pool = pool_2q(2);
        let mut s = pool.session();
        let p = s.fetch(1).unwrap();
        p.write(|data| data[9] = 0xAB);
        drop(p);
        for q in [2u64, 3, 4] {
            drop(s.fetch(q).unwrap()); // force eviction of page 1
        }
        assert!(
            pool.storage().writes() >= 1,
            "dirty page must be written back"
        );
        assert!(pool.stats().writebacks.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn invalidate_frees_frame() {
        let pool = pool_2q(2);
        let mut s = pool.session();
        drop(s.fetch(1).unwrap());
        drop(s.fetch(2).unwrap());
        assert_eq!(pool.invalidate(1), InvalidateOutcome::Invalidated);
        assert_eq!(pool.invalidate(1), InvalidateOutcome::NotResident);
        assert_eq!(pool.resident_count(), 1);
        drop(s.fetch(3).unwrap()); // takes the freed frame, no eviction
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn wrapped_pool_concurrent_correctness() {
        // Many threads hammering a small pool through BP-Wrapper: every
        // fetch must return the right bytes, and accounting must add up.
        let frames = 32;
        let pool: BufferPool<WrappedManager<Lirs>> = BufferPool::new(
            frames,
            64,
            WrappedManager::new(Lirs::new(frames), WrapperConfig::default()),
            Arc::new(SimDisk::instant()),
        );
        let threads = 4;
        let per_thread = 3000u64;
        std::thread::scope(|sc| {
            for t in 0..threads {
                let pool = &pool;
                sc.spawn(move || {
                    let mut s = pool.session();
                    let mut x = 0xDEADBEEFu64.wrapping_add(t);
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let page = x % 64; // 2x the pool size
                        let p = s.fetch(page).unwrap();
                        p.read(|data| {
                            assert_eq!(
                                u64::from_le_bytes(data[..8].try_into().unwrap()),
                                page,
                                "wrong content for page {page}"
                            );
                        });
                    }
                });
            }
        });
        let st = pool.stats();
        assert_eq!(
            st.hits.load(Ordering::Relaxed) + st.misses.load(Ordering::Relaxed),
            threads * per_thread
        );
        pool.manager()
            .wrapper()
            .with_locked(|p| p.check_invariants());
    }

    #[test]
    fn clock_pool_concurrent_correctness() {
        let frames = 16;
        let pool = BufferPool::new(
            frames,
            64,
            ClockManager::new(frames),
            Arc::new(SimDisk::instant()),
        );
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let pool = &pool;
                sc.spawn(move || {
                    let mut s = pool.session();
                    for i in 0..2000u64 {
                        let page = (i * (t + 1)) % 40;
                        let p = s.fetch(page).unwrap();
                        p.read(|data| {
                            assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), page);
                        });
                    }
                });
            }
        });
        assert_eq!(pool.resident_count(), frames);
    }

    #[test]
    fn written_data_survives_eviction() {
        // Write a marker, churn the page out, fetch it back: the
        // write-back + SimDisk retention must round-trip the bytes.
        let pool = pool_2q(2);
        let mut s = pool.session();
        let p = s.fetch(1).unwrap();
        p.write(|data| data[20] = 0xC4);
        drop(p);
        for q in 10..20u64 {
            drop(s.fetch(q).unwrap());
        }
        assert!(pool.table.get(1).is_none() || pool.descs.len() == 2);
        let p = s.fetch(1).unwrap();
        p.read(|data| assert_eq!(data[20], 0xC4, "write lost through eviction"));
    }

    #[test]
    fn wal_before_data_enforced() {
        let wal = Arc::new(crate::wal::Wal::instant());
        let pool = BufferPool::new(
            2,
            128,
            CoarseManager::new(TwoQ::new(2)),
            Arc::new(SimDisk::instant()),
        )
        .with_wal(Arc::clone(&wal));
        let mut s = pool.session();
        let p = s.fetch(1).unwrap();
        p.write(|data| data[9] = 0x55);
        drop(p);
        let logged = wal.append_lsn();
        assert!(logged > 0, "write must append a WAL record");
        assert_eq!(wal.flushed_lsn(), 0, "nothing committed yet");
        // Evict page 1: the write-back must first force the WAL.
        for q in [2u64, 3, 4] {
            drop(s.fetch(q).unwrap());
        }
        assert!(pool.storage().writes() >= 1, "dirty page written back");
        assert!(
            wal.flushed_lsn() >= logged,
            "WAL must be durable before the data page ({} < {logged})",
            wal.flushed_lsn()
        );
    }

    #[test]
    fn crash_recovery_replays_committed_writes() {
        let wal = Arc::new(crate::wal::Wal::instant());
        let storage: Arc<SimDisk> = Arc::new(SimDisk::instant());
        {
            // Session 1: write two pages, commit, then "crash" (drop the
            // pool with its dirty buffers never written back).
            let pool = BufferPool::new(
                8,
                64,
                CoarseManager::new(TwoQ::new(8)),
                Arc::clone(&storage) as Arc<dyn crate::storage::Storage>,
            )
            .with_wal(Arc::clone(&wal));
            let mut s = pool.session();
            let p = s.fetch(5).unwrap();
            p.write(|data| data[16] = 0xAA);
            drop(p);
            let p = s.fetch(6).unwrap();
            p.write(|data| data[17] = 0xBB);
            drop(p);
            pool.commit_transaction().unwrap();
            // Uncommitted write: must NOT survive the crash.
            let p = s.fetch(7).unwrap();
            p.write(|data| data[18] = 0xCC);
            drop(p);
        } // crash: dirty pages lost
        assert_eq!(
            storage.writes(),
            0,
            "nothing reached storage before the crash"
        );

        // Recovery: redo the durable log into storage.
        BufferPool::<CoarseManager<TwoQ>>::replay_wal_into_storage(&wal, &*storage).unwrap();

        // Session 2: a fresh pool over the same storage sees the
        // committed writes and not the uncommitted one.
        let pool = BufferPool::new(
            8,
            64,
            CoarseManager::new(TwoQ::new(8)),
            Arc::clone(&storage) as Arc<dyn crate::storage::Storage>,
        );
        let mut s = pool.session();
        s.fetch(5)
            .unwrap()
            .read(|d| assert_eq!(d[16], 0xAA, "committed write lost"));
        s.fetch(6)
            .unwrap()
            .read(|d| assert_eq!(d[17], 0xBB, "committed write lost"));
        s.fetch(7)
            .unwrap()
            .read(|d| assert_ne!(d[18], 0xCC, "uncommitted write must not survive"));
    }

    #[test]
    fn commit_transaction_flushes_wal() {
        let wal = Arc::new(crate::wal::Wal::instant());
        let pool = BufferPool::new(
            4,
            128,
            CoarseManager::new(TwoQ::new(4)),
            Arc::new(SimDisk::instant()),
        )
        .with_wal(Arc::clone(&wal));
        let mut s = pool.session();
        let p = s.fetch(7).unwrap();
        p.write(|data| data[10] = 1);
        p.write(|data| data[11] = 2);
        drop(p);
        pool.commit_transaction().unwrap();
        assert_eq!(wal.flushed_lsn(), wal.append_lsn());
        assert_eq!(wal.flushes.get(), 1, "one group flush for the txn");
    }

    #[test]
    fn all_frames_pinned_misses_not_double_counted() {
        // Regression for the miss double-count: with every frame pinned
        // the miss path retries (NoEvictableFrame); each retry must NOT
        // count another miss, so hits + misses == completed fetches.
        let frames = 4usize;
        let pool = Arc::new(pool_2q(frames));
        let mut s = pool.session();
        let held: Vec<_> = (0..frames as u64).map(|p| s.fetch(p).unwrap()).collect();
        let base = pool.miss_lock_snapshot().acquisitions;
        let pool2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            let mut s = pool2.session();
            // Spins through NoEvictableFrame until a pin drops below.
            drop(s.fetch(100).unwrap());
        });
        // Each failed attempt takes page 100's miss shard lock once;
        // wait until several such acquisitions are on the books instead
        // of sleeping a fixed interval.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.miss_lock_snapshot().acquisitions < base + 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "fetcher never retried the miss path"
            );
            std::thread::yield_now();
        }
        drop(held);
        t.join().unwrap();
        let st = pool.stats();
        let completed = frames as u64 + 1; // N initial loads + page 100
        assert_eq!(
            st.hits.load(Ordering::Relaxed) + st.misses.load(Ordering::Relaxed),
            completed,
            "hits + misses must equal completed fetches"
        );
        assert_eq!(st.misses.load(Ordering::Relaxed), completed);
    }

    #[test]
    fn failed_read_repairs_frame_and_recovers() {
        // Persistent read fault: fetch errors (no wedge), the frame goes
        // back on the free list, and once the fault clears the same page
        // fetches fine.
        let frames = 4usize;
        let disk = Arc::new(crate::storage::FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            crate::storage::FaultPlan::default(),
        ));
        let pool = BufferPool::new(
            frames,
            128,
            CoarseManager::new(TwoQ::new(frames)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy::none());
        disk.break_page_reads(7);
        let mut s = pool.session();
        let err = s.fetch(7).expect_err("broken page must error");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(pool.stats().io_errors.load(Ordering::Relaxed), 1);
        assert_eq!(pool.free_frames(), frames, "frame returned to free list");
        assert_eq!(pool.resident_count(), 0);
        assert_eq!(
            pool.stats().misses.load(Ordering::Relaxed),
            0,
            "failed miss must not count"
        );
        // Unrelated pages unaffected.
        drop(s.fetch(1).unwrap());
        // Fault clears: page 7 now loads.
        disk.clear_faults();
        let p = s.fetch(7).unwrap();
        p.read(|d| assert_eq!(u64::from_le_bytes(d[..8].try_into().unwrap()), 7));
        drop(p);
        assert_eq!(pool.free_frames() + pool.resident_count(), frames);
    }

    #[test]
    fn transient_fault_retried_transparently() {
        let disk = Arc::new(crate::storage::FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            crate::storage::FaultPlan::default(),
        ));
        let pool = BufferPool::new(
            4,
            128,
            CoarseManager::new(TwoQ::new(4)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::ZERO,
        });
        disk.fail_next_reads(2); // fewer than the retry budget
        let mut s = pool.session();
        let p = s.fetch(9).expect("transient faults must be retried");
        p.read(|d| assert_eq!(u64::from_le_bytes(d[..8].try_into().unwrap()), 9));
        drop(p);
        assert_eq!(pool.stats().io_retries.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().io_errors.load(Ordering::Relaxed), 0);
        assert_eq!(pool.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failed_writeback_surfaces_but_repairs() {
        // Dirty victim whose write-back fails persistently: the fetch
        // that tried to evict it errors, the claimed frame is repaired,
        // and the pool's frame accounting stays intact.
        let disk = Arc::new(crate::storage::FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            crate::storage::FaultPlan::default(),
        ));
        let pool = BufferPool::new(
            1,
            128,
            CoarseManager::new(TwoQ::new(1)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy::none());
        let mut s = pool.session();
        let p = s.fetch(1).unwrap();
        p.write(|d| d[9] = 0xEE);
        drop(p);
        disk.break_page_writes(1);
        let err = s.fetch(2).expect_err("write-back failure must surface");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(pool.free_frames() + pool.resident_count(), 1);
        disk.clear_faults();
        // Both pages reachable again once the device heals.
        drop(s.fetch(2).unwrap());
        drop(s.fetch(1).unwrap());
    }

    #[test]
    fn concurrent_fetchers_survive_failed_io() {
        // Threads racing on a page whose read fails must all get an
        // error or a correct page — and nobody may livelock on the
        // yield-and-retry loop (the pre-fix wedge).
        let disk = Arc::new(crate::storage::FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            crate::storage::FaultPlan::default(),
        ));
        let pool = BufferPool::new(
            8,
            64,
            CoarseManager::new(TwoQ::new(8)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy::none());
        disk.fail_next_reads(6);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let pool = &pool;
                sc.spawn(move || {
                    let mut s = pool.session();
                    for i in 0..200u64 {
                        let page = (i + t) % 16;
                        // Err means an injected fault; the next fetch retries.
                        if let Ok(p) = s.fetch(page) {
                            p.read(|d| {
                                assert_eq!(
                                    u64::from_le_bytes(d[..8].try_into().unwrap()),
                                    page,
                                    "wrong bytes served"
                                );
                            });
                        }
                    }
                });
            }
        });
        assert_eq!(
            pool.free_frames() + pool.resident_count(),
            8,
            "no frame may be wedged or leaked"
        );
    }

    #[test]
    fn commit_transaction_surfaces_log_fault() {
        let wal = Arc::new(crate::wal::Wal::instant());
        let pool = BufferPool::new(
            2,
            128,
            CoarseManager::new(TwoQ::new(2)),
            Arc::new(SimDisk::instant()),
        )
        .with_wal(Arc::clone(&wal))
        .with_retry_policy(RetryPolicy::none());
        let mut s = pool.session();
        let p = s.fetch(1).unwrap();
        p.write(|d| d[10] = 7);
        drop(p);
        wal.fail_next_flushes(1);
        assert!(pool.commit_transaction().is_err());
        assert_eq!(pool.stats().io_errors.load(Ordering::Relaxed), 1);
        // Nothing lost: retry commits the same records.
        pool.commit_transaction().unwrap();
        assert_eq!(wal.flushed_lsn(), wal.append_lsn());
    }

    #[test]
    fn invalidate_distinguishes_busy_from_absent() {
        let pool = pool_2q(4);
        let mut s = pool.session();
        let pinned = s.fetch(8).unwrap();
        assert_eq!(
            pool.invalidate(8),
            InvalidateOutcome::Busy,
            "pinned page must report Busy, not NotResident"
        );
        assert!(pool.invalidate(8).is_retryable());
        drop(pinned);
        assert_eq!(pool.invalidate(8), InvalidateOutcome::Invalidated);
        assert_eq!(pool.invalidate(8), InvalidateOutcome::NotResident);
        assert!(!pool.invalidate(8).is_retryable());
        assert_eq!(pool.invalidate(99), InvalidateOutcome::NotResident);
    }

    #[test]
    fn failing_page_rotates_through_frames_not_one() {
        // A page whose read always fails must not monopolize a single
        // frame: repair parks the failed frame on the free list's cold
        // stack, so the next attempt claims a different (regular-stripe)
        // frame. The repair leaves the frame's tag as a remnant, which
        // lets the test count distinct frames the bad page touched.
        let frames = 4usize;
        let disk = Arc::new(crate::storage::FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            crate::storage::FaultPlan::default(),
        ));
        let pool = BufferPool::new(
            frames,
            128,
            CoarseManager::new(TwoQ::new(frames)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy::none());
        let bad = 7u64;
        disk.break_page_reads(bad);
        let mut s = pool.session();
        for _ in 0..frames - 1 {
            s.fetch(bad).expect_err("broken page must error");
        }
        let touched = (0..frames)
            .filter(|&f| pool.descs[f].snapshot().tag == bad)
            .count();
        assert!(
            touched >= 2,
            "bad page churned only {touched} frame(s); cold rotation broken"
        );
        assert_eq!(pool.free_list_cold_pushes(), frames as u64 - 1);
        assert_eq!(pool.free_frames(), frames, "every failure fully repaired");
    }

    #[test]
    fn miss_shards_partition_and_aggregate() {
        let pool = pool_2q(16);
        assert!(pool.miss_lock_shards() > 1, "default pool must shard");
        let mut s = pool.session();
        for p in 0..64u64 {
            drop(s.fetch(p).unwrap());
        }
        let shards = pool.miss_lock_shard_snapshots();
        let touched = shards.iter().filter(|s| s.acquisitions > 0).count();
        assert!(touched > 1, "64 pages must spread over multiple shards");
        let agg = pool.miss_lock_snapshot();
        assert_eq!(
            agg.acquisitions,
            shards.iter().map(|s| s.acquisitions).sum::<u64>()
        );
        let summary = pool.miss_lock_summary();
        assert_eq!(summary.shards, pool.miss_lock_shards());
        assert_eq!(summary.total_acquisitions, agg.acquisitions);
        pool.check_mapping_invariants();
    }

    #[test]
    fn coarse_baseline_single_shard() {
        let pool = pool_2q(8).with_miss_shards(1);
        assert_eq!(pool.miss_lock_shards(), 1);
        let mut s = pool.session();
        for p in 0..32u64 {
            drop(s.fetch(p).unwrap());
        }
        assert_eq!(pool.miss_lock_snapshot().acquisitions, 32);
        assert_eq!(pool.free_frames() + pool.resident_count(), 8);
    }

    #[test]
    fn hit_ratio_reported() {
        let pool = pool_2q(8);
        let mut s = pool.session();
        for p in 0..8u64 {
            drop(s.fetch(p).unwrap());
        }
        for _ in 0..3 {
            for p in 0..8u64 {
                drop(s.fetch(p).unwrap());
            }
        }
        assert!((pool.stats().hit_ratio() - 0.75).abs() < 1e-9);
    }
}
