//! Hot-swapping the replacement manager under live traffic.
//!
//! [`SwapManager`] wraps any [`ReplacementManager`] and adds one
//! capability: atomically replacing it with a successor while worker
//! threads keep hitting the pool, without adding a single lock
//! acquisition to the steady-state hit path. The protocol (DESIGN.md
//! §18) is a generation-stamped epoch scheme:
//!
//! * Every per-thread [`SwapHandle`] owns a cache-padded epoch **cell**.
//!   Before touching the inner manager it *enters*: publish
//!   `generation + 1` into the cell, then re-read the generation
//!   (a Dekker-style store/load handshake against the swapper's
//!   install). On exit the cell returns to 0. Steady state is two
//!   relaxed-cost atomic loads and two stores — no locks.
//! * The swapper installs the successor (new generation), then waits
//!   for **quiescence**: every cell either idle or entered under the
//!   *new* generation. Only then is the old manager retired.
//! * Retirement drains the old manager's combining publication board
//!   ([`ReplacementManager::take_published`]) and replays the stranded
//!   advice into the successor — the coordinator is the *only*
//!   retirement path for published batches across a swap, which is
//!   exactly what the `dst_mutation = "swap_no_drain"` mutant breaks
//!   and the dst conservation checker catches.
//! * Handles lazily migrate: the first enter after a swap moves the
//!   thread's queued advice into a successor handle
//!   ([`ManagerHandle::take_for_swap`] / [`ManagerHandle::absorb`]).
//!
//! Residency safety is the *caller's* job:
//! [`BufferPool::swap_manager`](crate::BufferPool::swap_manager) holds
//! every miss-shard lock across the swap, freezing all residency
//! mutations (misses, invalidations, frame repair), so
//! `export_state`/`import_state` transfer an immutable resident set.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bpw_core::{CachePadded, CombiningSnapshot};
use bpw_dst::shim::{AtomicU64, Mutex};
use bpw_metrics::LockSnapshot;
use bpw_replacement::{FrameId, MissOutcome, PageId};

use crate::managers::{ManagerHandle, ReplacementManager};

/// What a completed hot-swap did, for STATS and bench reports.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Name of the retired manager.
    pub from: String,
    /// Name of the installed manager.
    pub to: String,
    /// Generation the successor was installed under.
    pub generation: u64,
    /// Resident pages transferred via `export_state`/`import_state`.
    pub pages_transferred: usize,
    /// Stranded published accesses recovered off the old board.
    pub advice_recovered: usize,
}

/// One installed manager generation. Handles hold an `Arc` to the
/// generation they entered, so a retired manager stays alive until the
/// last straggler has migrated off it.
struct Generation {
    gen: u64,
    mgr: Box<dyn ReplacementManager>,
}

type EpochCell = Arc<CachePadded<AtomicU64>>;

/// A [`ReplacementManager`] that can be hot-swapped for another at
/// runtime. See the module docs for the protocol.
pub struct SwapManager {
    /// Current generation number; handles validate against this.
    gen: AtomicU64,
    /// Current generation slot (swapped under `slot` + `swap_lock`).
    slot: Mutex<Arc<Generation>>,
    /// Every live handle's epoch cell (0 = idle, `g + 1` = entered
    /// under generation `g`).
    cells: Mutex<Vec<EpochCell>>,
    /// Serializes swappers.
    swap_lock: Mutex<()>,
    swaps: AtomicU64,
    migrations: AtomicU64,
    pages_transferred: AtomicU64,
    advice_recovered: AtomicU64,
}

impl SwapManager {
    /// Wrap `initial` as generation 0.
    pub fn new(initial: Box<dyn ReplacementManager>) -> Self {
        SwapManager {
            gen: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(Generation {
                gen: 0,
                mgr: initial,
            })),
            cells: Mutex::new(Vec::new()),
            swap_lock: Mutex::new(()),
            swaps: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            pages_transferred: AtomicU64::new(0),
            advice_recovered: AtomicU64::new(0),
        }
    }

    /// Completed swaps.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Lazy handle migrations performed after swaps.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Resident pages transferred across all swaps.
    pub fn pages_transferred(&self) -> u64 {
        self.pages_transferred.load(Ordering::Relaxed)
    }

    /// Stranded published accesses recovered across all swaps.
    pub fn advice_recovered(&self) -> u64 {
        self.advice_recovered.load(Ordering::Relaxed)
    }

    /// Name of the currently installed inner manager.
    pub fn current_name(&self) -> String {
        self.current_generation().mgr.name()
    }

    fn current_generation(&self) -> Arc<Generation> {
        Arc::clone(&self.slot.lock())
    }

    fn unregister(&self, cell: &EpochCell) {
        self.cells.lock().retain(|c| !Arc::ptr_eq(c, cell));
    }

    /// Replace the live manager with `next`. The caller must have
    /// frozen residency (all pool miss-shard locks held) — use
    /// [`BufferPool::swap_manager`](crate::BufferPool::swap_manager)
    /// unless you know no concurrent residency mutation is possible.
    pub fn swap(&self, next: Box<dyn ReplacementManager>) -> SwapReport {
        let _exclusive = self.swap_lock.lock();
        let old = self.current_generation();
        let from = old.mgr.name();
        let to = next.name();

        // Seed the successor with the (frozen) resident set before any
        // thread can reach it.
        let state = old.mgr.export_state();
        next.import_state(&state);

        // Install: new generation becomes visible, then the gen counter
        // publishes it to the handles' Dekker handshake. The install op
        // is recorded *before* the store so no MgrEnter{new} can
        // precede it in a dst history.
        let new_gen = old.gen + 1;
        let new_slot = Arc::new(Generation {
            gen: new_gen,
            mgr: next,
        });
        *self.slot.lock() = Arc::clone(&new_slot);
        bpw_dst::record(|| bpw_dst::Op::SwapInstall { gen: new_gen });
        self.gen.store(new_gen, Ordering::SeqCst);
        bpw_dst::yield_point();

        // Quiescence: wait until no handle is still entered under the
        // old (or any older) generation. A cell holding `v` is inside
        // generation `v - 1`; anything `<= old.gen + 1` still blocks
        // retirement.
        loop {
            let busy = {
                let cells = self.cells.lock();
                cells.iter().any(|c| {
                    let v = c.load(Ordering::SeqCst);
                    v != 0 && v <= old.gen + 1
                })
            };
            if !busy {
                break;
            }
            if bpw_dst::in_task() {
                bpw_dst::yield_now();
            } else {
                std::thread::yield_now();
            }
        }
        bpw_dst::record(|| bpw_dst::Op::SwapRetire { gen: old.gen });

        // Retire: the old board's published batches have exactly one
        // surviving owner — this coordinator. Handles abandoned their
        // slots on migration (`take_for_swap` never touches the board),
        // so skipping this drain strands the advice forever; the
        // `swap_no_drain` mutant proves the dst tier notices.
        #[cfg(not(dst_mutation = "swap_no_drain"))]
        let recovered = {
            let stranded = old.mgr.take_published();
            if !stranded.is_empty() {
                let mut h = new_slot.mgr.handle();
                h.absorb(&stranded);
                h.flush();
            }
            stranded.len()
        };
        #[cfg(dst_mutation = "swap_no_drain")]
        let recovered = 0usize;

        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.pages_transferred
            .fetch_add(state.len() as u64, Ordering::Relaxed);
        self.advice_recovered
            .fetch_add(recovered as u64, Ordering::Relaxed);
        SwapReport {
            from,
            to,
            generation: new_gen,
            pages_transferred: state.len(),
            advice_recovered: recovered,
        }
    }
}

impl ReplacementManager for SwapManager {
    fn name(&self) -> String {
        format!("adaptive({})", self.current_name())
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        let slot = self.current_generation();
        let inner = unsafe { make_inner(&slot) };
        let cell: EpochCell = Arc::new(CachePadded::new(AtomicU64::new(0)));
        self.cells.lock().push(Arc::clone(&cell));
        Box::new(SwapHandle {
            inner,
            slot,
            cell,
            mgr: self,
        })
    }

    fn invalidate(&self, frame: FrameId) {
        // Not on the hit path; excluded from racing a swap by the pool
        // miss-shard locks (invalidation holds one, the swapper all).
        self.current_generation().mgr.invalidate(frame);
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        self.current_generation().mgr.lock_snapshot()
    }

    fn combining_snapshot(&self) -> Option<CombiningSnapshot> {
        self.current_generation().mgr.combining_snapshot()
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        self.current_generation().mgr.export_state()
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        self.current_generation().mgr.import_state(state)
    }

    fn take_published(&self) -> Vec<(PageId, FrameId)> {
        self.current_generation().mgr.take_published()
    }

    fn swap_to(&self, next: Box<dyn ReplacementManager>) -> Option<SwapReport> {
        Some(self.swap(next))
    }
}

/// Borrow-erase a handle of the generation's inner manager. Sound
/// because every `Box<dyn ManagerHandle + 'static>` produced here lives
/// in a struct that also holds the backing `Arc<Generation>`, declared
/// *after* the box so the borrower drops first — and migration replaces
/// the box before releasing the old `Arc`.
unsafe fn make_inner(slot: &Arc<Generation>) -> Box<dyn ManagerHandle + 'static> {
    let h: Box<dyn ManagerHandle + '_> = slot.mgr.handle();
    unsafe { std::mem::transmute(h) }
}

/// Per-thread handle over the current generation's manager. Field order
/// matters: `inner` borrows (via [`make_inner`]) from `slot` and must
/// be declared first so it drops first.
struct SwapHandle<'m> {
    inner: Box<dyn ManagerHandle + 'static>,
    slot: Arc<Generation>,
    cell: EpochCell,
    mgr: &'m SwapManager,
}

impl SwapHandle<'_> {
    /// Enter the epoch: publish intent in the cell, then confirm the
    /// generation didn't move (if it did, retract and retry — the
    /// swapper may already have taken our stale announcement as
    /// blocking). Returns the generation entered under. Steady state:
    /// one load, one store, one load.
    fn enter(&self) -> u64 {
        loop {
            let g = self.mgr.gen.load(Ordering::Acquire);
            self.cell.store(g + 1, Ordering::SeqCst);
            bpw_dst::yield_point();
            if self.mgr.gen.load(Ordering::SeqCst) == g {
                return g;
            }
            self.cell.store(0, Ordering::SeqCst);
            if bpw_dst::in_task() {
                bpw_dst::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn exit(&self) {
        self.cell.store(0, Ordering::Release);
    }

    /// Entered under generation `g` but our cached generation is older:
    /// move this thread's deferred advice into a successor handle. Our
    /// cell (`g + 1`) blocks retirement of every generation `>= g`, so
    /// whatever `current_generation()` returns is live for the duration.
    #[cold]
    fn migrate(&mut self) {
        let moved = self.inner.take_for_swap();
        let new_slot = self.mgr.current_generation();
        let mut new_inner = unsafe { make_inner(&new_slot) };
        new_inner.absorb(&moved);
        // Drop the old inner *before* releasing the old generation Arc:
        // its queue is empty and its publication slot abandoned, so the
        // drop is a no-op, but the borrow checker discipline stands.
        let old_inner = std::mem::replace(&mut self.inner, new_inner);
        drop(old_inner);
        self.slot = new_slot;
        self.mgr.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Enter, migrate if stale, and record the (proven-live) generation
    /// actually used. Callers must `exit()` after using `inner`.
    fn enter_current(&mut self) -> u64 {
        let g = self.enter();
        if self.slot.gen != g {
            self.migrate();
        }
        bpw_dst::record(|| bpw_dst::Op::MgrEnter { gen: self.slot.gen });
        g
    }
}

impl ManagerHandle for SwapHandle<'_> {
    fn on_hit(&mut self, page: PageId, frame: FrameId) {
        self.enter_current();
        self.inner.on_hit(page, frame);
        self.exit();
    }

    fn on_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.enter_current();
        let out = self.inner.on_miss(page, free, evictable);
        self.exit();
        out
    }

    fn flush(&mut self) {
        self.enter_current();
        self.inner.flush();
        self.exit();
    }

    fn take_for_swap(&mut self) -> Vec<(PageId, FrameId)> {
        self.enter_current();
        let out = self.inner.take_for_swap();
        self.exit();
        out
    }

    fn absorb(&mut self, entries: &[(PageId, FrameId)]) {
        self.enter_current();
        self.inner.absorb(entries);
        self.exit();
    }
}

impl Drop for SwapHandle<'_> {
    fn drop(&mut self) {
        // Tear the inner handle down under epoch protection: its Drop
        // flushes queued advice into whatever manager is current, which
        // must not be mid-retirement. The replacement Noop keeps the
        // field valid for the struct's own drop.
        self.enter_current();
        self.inner = Box::new(NoopHandle);
        self.exit();
        self.mgr.unregister(&self.cell);
    }
}

/// Placeholder installed while tearing down a [`SwapHandle`].
struct NoopHandle;

impl ManagerHandle for NoopHandle {
    fn on_hit(&mut self, _page: PageId, _frame: FrameId) {}

    fn on_miss(
        &mut self,
        _page: PageId,
        _free: Option<FrameId>,
        _evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        MissOutcome::NoEvictableFrame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::{CoarseManager, WrappedManager};
    use bpw_core::WrapperConfig;
    use bpw_replacement::{Lru, TwoQ};

    fn wrapped(frames: usize) -> Box<dyn ReplacementManager> {
        Box::new(WrappedManager::new(
            Lru::new(frames),
            WrapperConfig::default(),
        ))
    }

    #[test]
    fn swap_transfers_resident_state() {
        let mgr = SwapManager::new(wrapped(4));
        {
            let mut h = mgr.handle();
            for i in 0..4u64 {
                h.on_miss(i, Some(i as u32), &mut |_| true);
            }
            h.flush();
        }
        let report = mgr.swap(Box::new(WrappedManager::new(
            TwoQ::new(4),
            WrapperConfig::default(),
        )));
        assert_eq!(report.generation, 1);
        assert_eq!(report.pages_transferred, 4);
        assert!(report.from.contains("bp-wrapper"));
        // The successor sees the inherited working set: a miss must
        // evict (no free frame claimed twice).
        let mut h = mgr.handle();
        let out = h.on_miss(10, None, &mut |_| true);
        assert!(
            out.victim().is_some(),
            "successor must own the resident set"
        );
        assert_eq!(mgr.swaps(), 1);
    }

    #[test]
    fn stale_handle_migrates_and_keeps_advice() {
        let inner = Arc::new(WrappedManager::new(Lru::new(4), WrapperConfig::default()));
        let mgr = SwapManager::new(Box::new(Arc::clone(&inner)));
        let mut h = mgr.handle();
        for i in 0..4u64 {
            h.on_miss(i, Some(i as u32), &mut |_| true);
        }
        // Queue advice, swap underneath the handle, then keep using it.
        h.on_hit(0, 0);
        h.on_hit(1, 1);
        let next = Arc::new(WrappedManager::new(Lru::new(4), WrapperConfig::default()));
        mgr.swap(Box::new(Arc::clone(&next)));
        h.on_hit(2, 2);
        h.flush();
        drop(h);
        assert_eq!(mgr.migrations(), 1);
        // All three hits committed into the successor, none lost.
        assert_eq!(next.wrapper().counters().committed.get(), 3);
    }

    #[test]
    fn static_managers_refuse_swap_to() {
        let coarse = CoarseManager::new(Lru::new(2));
        assert!(coarse.swap_to(wrapped(2)).is_none());
    }

    #[test]
    fn concurrent_hits_survive_swap_storm() {
        let mgr = Arc::new(SwapManager::new(wrapped(64)));
        {
            let mut h = mgr.handle();
            for i in 0..64u64 {
                h.on_miss(i, Some(i as u32), &mut |_| true);
            }
            h.flush();
        }
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let mgr = Arc::clone(&mgr);
                sc.spawn(move || {
                    let mut h = mgr.handle();
                    for i in 0..20_000u64 {
                        let f = (i + t) % 64;
                        h.on_hit(f, f as u32);
                    }
                });
            }
            let swapper = Arc::clone(&mgr);
            sc.spawn(move || {
                for _ in 0..50 {
                    swapper.swap(wrapped(64));
                }
            });
        });
        assert_eq!(mgr.swaps(), 50);
        assert_eq!(mgr.current_generation().gen, 50);
    }
}
