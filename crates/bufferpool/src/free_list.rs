//! Striped lock-free free list.
//!
//! The seed pool kept free frames in one `Mutex<Vec<FrameId>>` — a
//! single point of serialization on every miss and every frame repair,
//! defeating the per-shard miss locks. This replaces it with one
//! Treiber stack per page-table shard plus a *cold* stack:
//!
//! * `pop(home)` tries the caller's home stripe first, then steals from
//!   the other stripes, and drains the cold stack only when everything
//!   else is empty.
//! * `push(home, f)` returns a frame to its shard's stripe (eviction,
//!   invalidation).
//! * `push_cold(f)` parks a frame at the coldest point of the rotation
//!   — used for frames freed by I/O-failure repair, so a fault-prone
//!   frame is the *last* candidate for reuse instead of the first (the
//!   LIFO pathology: a persistently failing page would otherwise churn
//!   one frame forever).
//!
//! Each stack head packs a 32-bit ABA tag with the frame index; every
//! successful CAS bumps the tag, so a pop that observed head `A` cannot
//! succeed after a concurrent pop-push cycle reinstalls `A`. Per-frame
//! `next` links live in one atomic array — a frame is on at most one
//! stack at a time, so its link is owned by whichever stack holds it.

use std::sync::atomic::{AtomicUsize, Ordering};

// Head words and next links go through the dst shims: under the dst
// harness every load/CAS on them is a schedule point, so the window
// between reading a head and CASing it — where ABA lives — is
// explorable. In normal builds the shims are the bare std atomics.
use bpw_core::CachePadded;
use bpw_dst::shim::{AtomicU32, AtomicU64};
use bpw_replacement::FrameId;

use std::sync::atomic::AtomicU64 as StdAtomicU64;

/// Empty-stack sentinel in the index half of a head word.
const NIL: u32 = u32::MAX;

fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The stripe heads, padded one-per-cache-line by default. Dense
/// layout packs eight heads into one 64-byte line, so every CAS on one
/// stripe invalidates the line under the seven neighbours — false
/// sharing that serializes exactly the cross-shard traffic the striping
/// exists to spread. The dense variant is kept (hidden) so the scaling
/// bench can measure the before/after.
enum Heads {
    Padded(Vec<CachePadded<AtomicU64>>),
    Dense(Vec<AtomicU64>),
}

impl Heads {
    fn at(&self, i: usize) -> &AtomicU64 {
        match self {
            Heads::Padded(v) => &v[i],
            Heads::Dense(v) => &v[i],
        }
    }
}

/// Lock-free striped free list with work stealing and a cold stack.
pub struct StripedFreeList {
    /// One Treiber head per stripe; head `stripes` is the cold stack.
    heads: Heads,
    /// Per-frame successor link (index into itself, `NIL` at the end).
    next: Vec<AtomicU32>,
    /// Regular stripe count (excluding the cold stack).
    stripes: usize,
    /// Frames currently on any stack (exact when quiescent).
    count: AtomicUsize,
    /// Pops satisfied by a stripe other than the caller's home.
    steals: StdAtomicU64,
    /// Frames parked on the cold stack.
    cold_pushes: StdAtomicU64,
}

impl StripedFreeList {
    /// A free list over frames `0..frames`, striped `stripes` ways,
    /// with every frame initially free (frame `f` starts on stripe
    /// `f % stripes`).
    pub fn new(frames: usize, stripes: usize) -> Self {
        Self::build(frames, stripes, true)
    }

    /// The pre-padding dense head layout, for before/after measurement
    /// only (`miss_scaling`'s free-list section). Not for production
    /// use: adjacent stripe heads false-share.
    #[doc(hidden)]
    pub fn new_dense(frames: usize, stripes: usize) -> Self {
        Self::build(frames, stripes, false)
    }

    fn build(frames: usize, stripes: usize, padded: bool) -> Self {
        assert!(stripes >= 1, "need at least one stripe");
        let heads = if padded {
            Heads::Padded(
                (0..=stripes)
                    .map(|_| CachePadded::new(AtomicU64::new(pack(0, NIL))))
                    .collect(),
            )
        } else {
            Heads::Dense(
                (0..=stripes)
                    .map(|_| AtomicU64::new(pack(0, NIL)))
                    .collect(),
            )
        };
        let list = StripedFreeList {
            heads,
            next: (0..frames).map(|_| AtomicU32::new(NIL)).collect(),
            stripes,
            count: AtomicUsize::new(0),
            steals: StdAtomicU64::new(0),
            cold_pushes: StdAtomicU64::new(0),
        };
        // Reverse order so low frame ids pop first, like the seed's Vec.
        for f in (0..frames as u32).rev() {
            list.push(f as usize % stripes, f);
        }
        list
    }

    /// Whether the stripe heads are cache-line padded (false only for
    /// the hidden dense baseline).
    pub fn padded(&self) -> bool {
        matches!(self.heads, Heads::Padded(_))
    }

    /// Regular stripe count (the cold stack is extra).
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Frames currently free. Exact only when no pops/pushes race it.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// True when no frame is free (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cross-stripe steals served so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Frames parked cold (repair path) so far.
    pub fn cold_pushes(&self) -> u64 {
        self.cold_pushes.load(Ordering::Relaxed)
    }

    /// The ABA defence: every successful CAS bumps the head's tag.
    ///
    /// The `dst_mutation = "freelist"` mutant disables the bump — on
    /// *both* CAS sites, not just pop's. Skipping only pop's bump is
    /// provably undetectable: completing the ABA cycle (pop A, pop B,
    /// push A) always includes a push, whose bump alone keeps the head
    /// word from ever repeating. Disabling both recreates the classic
    /// untagged Treiber stack, whose double-allocation the dst free-list
    /// checker must catch.
    #[inline]
    fn bump(tag: u32) -> u32 {
        #[cfg(not(dst_mutation = "freelist"))]
        {
            tag.wrapping_add(1)
        }
        #[cfg(dst_mutation = "freelist")]
        {
            tag
        }
    }

    fn push_stack(&self, stack: usize, frame: u32) {
        let head = self.heads.at(stack);
        loop {
            let old = head.load(Ordering::Acquire);
            let (tag, idx) = unpack(old);
            self.next[frame as usize].store(idx, Ordering::Release);
            if head
                .compare_exchange_weak(
                    old,
                    pack(Self::bump(tag), frame),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.count.fetch_add(1, Ordering::AcqRel);
                bpw_dst::record(|| bpw_dst::Op::FreePush {
                    frame,
                    cold: stack == self.stripes,
                });
                return;
            }
        }
    }

    fn pop_stack(&self, stack: usize) -> Option<u32> {
        let head = self.heads.at(stack);
        loop {
            let old = head.load(Ordering::Acquire);
            let (tag, idx) = unpack(old);
            if idx == NIL {
                return None;
            }
            // A racing pop may free `idx` and a push may relink it
            // elsewhere before our CAS; the tag bump makes the CAS fail
            // then, so a stale `next` read is never acted on.
            let next = self.next[idx as usize].load(Ordering::Acquire);
            if head
                .compare_exchange_weak(
                    old,
                    pack(Self::bump(tag), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.count.fetch_sub(1, Ordering::AcqRel);
                bpw_dst::record(|| bpw_dst::Op::FreePop { frame: idx });
                return Some(idx);
            }
        }
    }

    /// Return `frame` to its home stripe.
    pub fn push(&self, home: usize, frame: FrameId) {
        self.push_stack(home % self.stripes, frame);
    }

    /// Park `frame` on the cold stack: it is reused only after every
    /// regular stripe is empty.
    pub fn push_cold(&self, frame: FrameId) {
        self.cold_pushes.fetch_add(1, Ordering::Relaxed);
        self.push_stack(self.stripes, frame);
    }

    /// Take a free frame, preferring the caller's `home` stripe, then
    /// stealing round-robin from the other stripes, then draining the
    /// cold stack. Returns `None` only when every stack was observed
    /// empty.
    pub fn pop(&self, home: usize) -> Option<FrameId> {
        let home = home % self.stripes;
        if let Some(f) = self.pop_stack(home) {
            return Some(f);
        }
        for i in 1..self.stripes {
            let s = (home + i) % self.stripes;
            if let Some(f) = self.pop_stack(s) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                bpw_trace::instant(bpw_trace::EventKind::FreeListSteal, s as u64);
                return Some(f);
            }
        }
        if let Some(f) = self.pop_stack(self.stripes) {
            self.steals.fetch_add(1, Ordering::Relaxed);
            bpw_trace::instant(bpw_trace::EventKind::FreeListSteal, self.stripes as u64);
            return Some(f);
        }
        None
    }
}

impl std::fmt::Debug for StripedFreeList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedFreeList")
            .field("stripes", &self.stripes)
            .field("len", &self.len())
            .field("steals", &self.steals())
            .field("cold_pushes", &self.cold_pushes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn starts_full_and_drains_unique() {
        let fl = StripedFreeList::new(64, 4);
        assert_eq!(fl.len(), 64);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(fl.pop(0).expect("frame available")));
        }
        assert!(fl.pop(0).is_none());
        assert!(fl.is_empty());
    }

    #[test]
    fn home_stripe_preferred_no_steal() {
        let fl = StripedFreeList::new(8, 4);
        // Frame f sits on stripe f % 4: popping home=1 gets 1 or 5 first.
        let f = fl.pop(1).unwrap();
        assert!(f % 4 == 1, "home stripe must serve first (got {f})");
        assert_eq!(fl.steals(), 0);
    }

    #[test]
    fn dry_stripe_steals_and_counts() {
        let fl = StripedFreeList::new(4, 4);
        assert_eq!(fl.pop(2).unwrap() % 4, 2);
        // Stripe 2 is now dry; next pop from it must steal.
        let f = fl.pop(2).unwrap();
        assert!(f % 4 != 2);
        assert_eq!(fl.steals(), 1);
    }

    #[test]
    fn cold_frames_reused_last() {
        let fl = StripedFreeList::new(4, 2);
        let victim = fl.pop(0).unwrap();
        fl.push_cold(victim);
        assert_eq!(fl.cold_pushes(), 1);
        // Three regular frames remain; the cold one must come out last.
        let mut order = Vec::new();
        while let Some(f) = fl.pop(0) {
            order.push(f);
        }
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), victim, "cold frame reused first");
    }

    #[test]
    fn padded_is_the_default_and_dense_behaves_identically() {
        assert!(StripedFreeList::new(8, 4).padded());
        let fl = StripedFreeList::new_dense(16, 4);
        assert!(!fl.padded());
        let mut seen = HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(fl.pop(0).expect("frame available")));
        }
        assert!(fl.pop(0).is_none());
        for &f in &seen {
            fl.push(f as usize, f);
        }
        assert_eq!(fl.len(), 16);
    }

    #[test]
    fn padded_heads_live_on_distinct_cache_lines() {
        let fl = StripedFreeList::new(8, 8);
        let Heads::Padded(heads) = &fl.heads else {
            panic!("default layout must be padded");
        };
        for pair in heads.windows(2) {
            let a = &pair[0] as *const _ as usize;
            let b = &pair[1] as *const _ as usize;
            assert!(b - a >= 64, "stripe heads share a cache line");
        }
    }

    #[test]
    fn push_pop_roundtrip_conserves_frames() {
        let fl = StripedFreeList::new(16, 4);
        let mut held = Vec::new();
        for _ in 0..10 {
            held.push(fl.pop(3).unwrap());
        }
        assert_eq!(fl.len(), 6);
        for f in held.drain(..) {
            fl.push(f as usize, f);
        }
        assert_eq!(fl.len(), 16);
    }

    #[test]
    fn concurrent_churn_never_duplicates_a_frame() {
        // 4 threads pop/push against 2 stripes; every popped frame is
        // "owned" until pushed back, so no frame may be popped twice
        // concurrently. Ownership is tracked with an atomic claim map.
        let frames = 32usize;
        let fl = StripedFreeList::new(frames, 2);
        let claimed: Vec<AtomicU32> = (0..frames).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let fl = &fl;
                let claimed = &claimed;
                s.spawn(move || {
                    let mut local = Vec::new();
                    for i in 0..5_000usize {
                        if let Some(f) = fl.pop(t) {
                            let was = claimed[f as usize].swap(1, Ordering::AcqRel);
                            assert_eq!(was, 0, "frame {f} popped while owned");
                            local.push(f);
                        }
                        if (i % 3 == 0 || fl.is_empty()) && !local.is_empty() {
                            let f = local.swap_remove(i % local.len());
                            claimed[f as usize].store(0, Ordering::Release);
                            if i % 7 == 0 {
                                fl.push_cold(f);
                            } else {
                                fl.push(t, f);
                            }
                        }
                    }
                    for f in local {
                        claimed[f as usize].store(0, Ordering::Release);
                        fl.push(t, f);
                    }
                });
            }
        });
        assert_eq!(fl.len(), frames, "frames leaked or duplicated");
        let mut seen = HashSet::new();
        while let Some(f) = fl.pop(0) {
            assert!(seen.insert(f), "duplicate frame {f}");
        }
        assert_eq!(seen.len(), frames);
    }
}
