//! A minimal write-ahead log with group commit.
//!
//! The paper's DBT-2 measurements are shaped by a second global lock:
//! "the contention on other locks, such as the one to serialize
//! Write-Ahead-Logging activities, becomes intensive with the growing
//! number of processors" (§IV-D). This module supplies that substrate
//! for the real (non-simulated) experiments: an append buffer under a
//! latch, a flush path with device latency, and classic leader/follower
//! **group commit** — which is to the WAL lock what BP-Wrapper's
//! batching is to the replacement lock: one expensive serialized
//! operation amortized over many logical requests.
//!
//! The buffer pool enforces WAL-before-data: a dirty page cannot be
//! written back until the log records covering it are flushed.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bpw_metrics::Counter;
use parking_lot::{Condvar, Mutex};

/// Log sequence number: byte offset of the end of a record.
pub type Lsn = u64;

#[derive(Debug)]
struct WalState {
    /// Bytes appended but not yet flushed.
    buffer: Vec<u8>,
    /// LSN of the last appended byte.
    append_lsn: Lsn,
    /// LSN up to which the log is durable.
    flushed_lsn: Lsn,
    /// A leader is currently flushing.
    flush_in_progress: bool,
}

/// The write-ahead log.
pub struct Wal {
    state: Mutex<WalState>,
    flushed: Condvar,
    flush_latency: Duration,
    /// The durable log: every flushed byte, in order (the "log file").
    log_file: Mutex<Vec<u8>>,
    /// Fault injection: the next N physical flushes fail (transient log
    /// device errors for tests and chaos runs).
    fail_next_flushes: AtomicU64,
    /// Records appended.
    pub appends: Counter,
    /// Physical flushes performed.
    pub flushes: Counter,
    /// Physical flushes that failed (injected or real).
    pub flush_errors: Counter,
    /// Commit requests served (each waits for durability of its LSN).
    pub commits: Counter,
    /// Commits that piggybacked on another leader's flush.
    pub group_commits: Counter,
}

impl Wal {
    /// A log whose flush costs `flush_latency` of device time.
    pub fn new(flush_latency: Duration) -> Self {
        Wal {
            state: Mutex::new(WalState {
                buffer: Vec::new(),
                append_lsn: 0,
                flushed_lsn: 0,
                flush_in_progress: false,
            }),
            flushed: Condvar::new(),
            flush_latency,
            log_file: Mutex::new(Vec::new()),
            fail_next_flushes: AtomicU64::new(0),
            appends: Counter::new(),
            flushes: Counter::new(),
            flush_errors: Counter::new(),
            commits: Counter::new(),
            group_commits: Counter::new(),
        }
    }

    /// An instant log for tests.
    pub fn instant() -> Self {
        Self::new(Duration::ZERO)
    }

    /// Append a record; returns its LSN. Cheap: one latch, one copy.
    pub fn append(&self, payload: &[u8]) -> Lsn {
        let mut s = self.state.lock();
        s.buffer
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        s.buffer.extend_from_slice(payload);
        s.append_lsn += 4 + payload.len() as Lsn;
        self.appends.incr();
        s.append_lsn
    }

    /// LSN up to which the log is durable.
    pub fn flushed_lsn(&self) -> Lsn {
        self.state.lock().flushed_lsn
    }

    /// Highest appended LSN.
    pub fn append_lsn(&self) -> Lsn {
        self.state.lock().append_lsn
    }

    /// Fail the next `n` physical flushes (fault injection; adds to any
    /// pending budget). Failed flushes leave the log exactly as it was:
    /// nothing becomes durable and the buffered records stay buffered,
    /// so a later retry re-covers them.
    pub fn fail_next_flushes(&self, n: u64) {
        self.fail_next_flushes.fetch_add(n, Ordering::Relaxed);
    }

    fn take_injected_flush_fault(&self) -> bool {
        self.fail_next_flushes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Make the log durable up to at least `lsn` (group commit):
    /// if a flush already covers it, return immediately; if one is in
    /// flight, wait for it (and re-check); otherwise become the leader
    /// and flush everything appended so far, releasing followers.
    ///
    /// On a flush error the leader restores the unflushed batch to the
    /// buffer (nothing is lost; a later commit retries it), wakes every
    /// follower, and returns the error. Woken followers whose LSN is
    /// still not durable become leaders themselves and retry, so a
    /// transient log-device fault never wedges a waiter.
    pub fn commit(&self, lsn: Lsn) -> io::Result<()> {
        self.commits.incr();
        let mut s = self.state.lock();
        let mut piggybacked = false;
        loop {
            if s.flushed_lsn >= lsn {
                if piggybacked {
                    self.group_commits.incr();
                }
                return Ok(());
            }
            if s.flush_in_progress {
                // Follower: sleep until the leader finishes (or fails).
                piggybacked = true;
                self.flushed.wait(&mut s);
                continue;
            }
            // Leader: flush the whole buffer (covers every follower that
            // appended before now).
            s.flush_in_progress = true;
            let batch_end = s.append_lsn;
            let batch = std::mem::take(&mut s.buffer);
            drop(s);
            let span = bpw_trace::span_start();
            Self::spin_for(self.flush_latency);
            let failed = self.take_injected_flush_fault();
            if !failed {
                self.log_file.lock().extend_from_slice(&batch);
                self.flushes.incr();
            }
            bpw_trace::span_end(bpw_trace::EventKind::WalFlush, span, batch.len() as u64);
            s = self.state.lock();
            if failed {
                // Unwind: put the batch back in front of anything
                // appended while we were flushing, so LSN order (and
                // replay order) is preserved.
                self.flush_errors.incr();
                let mut restored = batch;
                restored.append(&mut s.buffer);
                s.buffer = restored;
                s.flush_in_progress = false;
                self.flushed.notify_all();
                drop(s);
                return Err(io::Error::other("injected WAL flush fault"));
            }
            s.flushed_lsn = batch_end;
            s.flush_in_progress = false;
            self.flushed.notify_all();
        }
    }

    /// Iterate every *durable* record (in append order), calling
    /// `apply` with each payload. Unflushed records — appends whose
    /// transaction never committed before the crash — are not visible,
    /// which is exactly the durability contract.
    pub fn replay(&self, mut apply: impl FnMut(&[u8])) {
        let log = self.log_file.lock();
        let mut off = 0usize;
        while off + 4 <= log.len() {
            let len = u32::from_le_bytes(log[off..off + 4].try_into().expect("4 bytes")) as usize;
            off += 4;
            if off + len > log.len() {
                break; // torn tail (partial final flush): ignore, as recovery does
            }
            apply(&log[off..off + len]);
            off += len;
        }
    }

    /// Durable log size in bytes.
    pub fn durable_bytes(&self) -> usize {
        self.log_file.lock().len()
    }

    /// Commits amortized per physical flush so far.
    pub fn commits_per_flush(&self) -> f64 {
        let f = self.flushes.get();
        if f == 0 {
            0.0
        } else {
            self.commits.get() as f64 / f as f64
        }
    }

    fn spin_for(d: Duration) {
        if d.is_zero() {
            return;
        }
        if d < Duration::from_micros(100) {
            let t0 = std::time::Instant::now();
            while t0.elapsed() < d {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic() {
        let wal = Wal::instant();
        let a = wal.append(b"first");
        let b = wal.append(b"second");
        assert!(b > a);
        assert_eq!(wal.append_lsn(), b);
        assert_eq!(wal.flushed_lsn(), 0);
    }

    #[test]
    fn commit_makes_durable() {
        let wal = Wal::instant();
        let lsn = wal.append(b"record");
        wal.commit(lsn).unwrap();
        assert!(wal.flushed_lsn() >= lsn);
        assert_eq!(wal.flushes.get(), 1);
        // Re-commit is free (already durable).
        wal.commit(lsn).unwrap();
        assert_eq!(wal.flushes.get(), 1);
    }

    #[test]
    fn leader_flush_covers_followers() {
        let wal = Wal::instant();
        let a = wal.append(b"a");
        let b = wal.append(b"b");
        wal.commit(b).unwrap(); // flushes both
        assert_eq!(wal.flushes.get(), 1);
        wal.commit(a).unwrap(); // already durable
        assert_eq!(wal.flushes.get(), 1);
    }

    #[test]
    fn failed_flush_loses_nothing_and_retries() {
        let wal = Wal::instant();
        let a = wal.append(b"alpha");
        wal.fail_next_flushes(1);
        assert!(wal.commit(a).is_err(), "injected flush fault surfaces");
        assert_eq!(wal.flushed_lsn(), 0, "nothing became durable");
        assert_eq!(wal.flush_errors.get(), 1);
        // Records appended after the failure keep their order.
        let b = wal.append(b"beta");
        wal.commit(b).unwrap();
        assert_eq!(wal.flushed_lsn(), b);
        let mut seen = Vec::new();
        wal.replay(|p| seen.push(p.to_vec()));
        assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn failed_flush_releases_followers() {
        // A leader that fails must wake followers, who then retry as
        // leaders themselves — no waiter may wedge.
        let wal = std::sync::Arc::new(Wal::new(Duration::from_micros(200)));
        wal.fail_next_flushes(1);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let lsn = wal.append(&(t * 1000 + i).to_le_bytes());
                        // At most one commit errors (one injected fault);
                        // a retry must always succeed.
                        if wal.commit(lsn).is_err() {
                            wal.commit(lsn).unwrap();
                        }
                        assert!(wal.flushed_lsn() >= lsn);
                    }
                });
            }
        });
        assert_eq!(wal.flushed_lsn(), wal.append_lsn());
        assert_eq!(wal.flush_errors.get(), 1);
    }

    #[test]
    fn group_commit_amortizes_flushes() {
        let wal = std::sync::Arc::new(Wal::new(Duration::from_micros(300)));
        let threads = 4;
        let per_thread = 200u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let lsn = wal.append(&i.to_le_bytes());
                        wal.commit(lsn).unwrap();
                    }
                });
            }
        });
        let commits = wal.commits.get();
        let flushes = wal.flushes.get();
        assert_eq!(commits, threads * per_thread);
        assert!(
            flushes <= commits,
            "{flushes} flushes for {commits} commits"
        );
        assert_eq!(wal.flushed_lsn(), wal.append_lsn());
    }

    #[test]
    fn replay_sees_only_durable_records() {
        let wal = Wal::instant();
        let a = wal.append(b"alpha");
        wal.append(b"beta");
        wal.commit(a).unwrap(); // leader flushes BOTH appended records
        wal.append(b"gamma"); // never committed
        let mut seen = Vec::new();
        wal.replay(|payload| seen.push(payload.to_vec()));
        assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn stress_durability_invariant() {
        let wal = std::sync::Arc::new(Wal::instant());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let lsn = wal.append(&(t * 1_000_000 + i).to_le_bytes());
                        wal.commit(lsn).unwrap();
                        assert!(wal.flushed_lsn() >= lsn, "commit returned before durable");
                    }
                });
            }
        });
    }
}
