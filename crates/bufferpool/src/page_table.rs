//! The buffer look-up structure: a hash table sharded into many buckets,
//! each under its own reader-writer lock — the design the paper's §II
//! explains is *not* a scalability problem ("one lock for each bucket...
//! the possibility for multiple threads to compete for the same bucket
//! is low", and buckets change only on misses).

use std::collections::HashMap;

use bpw_replacement::{FrameId, PageId};
use parking_lot::RwLock;

/// Sharded page-id → frame-id map.
pub struct PageTable {
    shards: Vec<RwLock<HashMap<PageId, FrameId>>>,
    mask: u64,
}

impl PageTable {
    /// Create a table with `shards` buckets (rounded up to a power of
    /// two, minimum 16).
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(16);
        PageTable {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `page` hashes to. Public so pool-side structures
    /// (per-shard miss locks, striped free lists) can partition by the
    /// exact same function.
    pub fn shard_index(&self, page: PageId) -> usize {
        // splitmix64 avalanche so sequential page ids spread over shards.
        let mut x = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x & self.mask) as usize
    }

    fn shard(&self, page: PageId) -> &RwLock<HashMap<PageId, FrameId>> {
        &self.shards[self.shard_index(page)]
    }

    /// Visit every `(page, frame)` mapping (O(shards) lock rounds; for
    /// invariant checks and stats, not hot paths).
    pub fn for_each(&self, mut f: impl FnMut(PageId, FrameId)) {
        for shard in &self.shards {
            for (&page, &frame) in shard.read().iter() {
                f(page, frame);
            }
        }
    }

    /// Look up the frame caching `page`, if mapped. The yield point
    /// makes every lookup a schedule decision under the dst harness
    /// (the bucket lock itself is never held across a yield).
    pub fn get(&self, page: PageId) -> Option<FrameId> {
        bpw_dst::yield_point();
        self.shard(page).read().get(&page).copied()
    }

    /// Map `page` to `frame`. Returns the previous mapping, if any.
    pub fn insert(&self, page: PageId, frame: FrameId) -> Option<FrameId> {
        bpw_dst::yield_point();
        self.shard(page).write().insert(page, frame)
    }

    /// Remove the mapping for `page`. Returns the frame it mapped to.
    pub fn remove(&self, page: PageId) -> Option<FrameId> {
        bpw_dst::yield_point();
        self.shard(page).write().remove(&page)
    }

    /// Total mappings (O(shards); for stats/tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t = PageTable::new(4);
        assert_eq!(t.get(1), None);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.remove(1), Some(11));
        assert_eq!(t.get(1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn shard_count_rounds_up() {
        assert_eq!(PageTable::new(1).shards(), 16);
        assert_eq!(PageTable::new(17).shards(), 32);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let t = PageTable::new(8);
        for p in 0..10_000u64 {
            let i = t.shard_index(p);
            assert!(i < t.shards());
            assert_eq!(i, t.shard_index(p), "shard function must be pure");
        }
    }

    #[test]
    fn for_each_visits_all_mappings() {
        let t = PageTable::new(4);
        for p in 0..100u64 {
            t.insert(p, p as FrameId);
        }
        let mut seen = std::collections::HashSet::new();
        t.for_each(|page, frame| {
            assert_eq!(page as FrameId, frame);
            assert!(seen.insert(page));
        });
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = PageTable::new(64);
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        t.insert(k * 1000 + i, (k * 1000 + i) as FrameId);
                    }
                });
            }
        });
        assert_eq!(t.len(), 4000);
        for i in 0..4000u64 {
            assert_eq!(t.get(i), Some(i as FrameId));
        }
    }
}
