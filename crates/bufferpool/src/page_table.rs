//! The buffer look-up structure: a sharded page-id → frame-id map whose
//! **readers take no lock**. The paper's §II argues bucket locks are
//! rarely *contended* — but even an uncontended `RwLock` read is a
//! shared-cache-line RMW on acquire and another on release, which at
//! 8+ threads is most of what a cache hit pays. Here each shard is a
//! small open-addressing array of atomic `(page, frame)` slots guarded
//! by a seqlock version: readers probe with plain loads and validate
//! the version afterwards; writers (misses only) serialize on the
//! shard's `RwLock` as before and flip the version odd around their
//! critical section. A reader that observes a torn state (odd version,
//! version change, or a shard with spilled entries) falls back to the
//! locked path and counts the event.
//!
//! Why seqlock-versioned shards rather than packing `(page, frame)`
//! into one atomic word: `PageId` is a full `u64`, so a packed entry
//! would cap the page space at ~2^24; the seqlock keeps both fields
//! full-width *and* makes the whole probe sequence consistent, not just
//! one slot. (DESIGN.md §17 has the full argument.)
//!
//! Fixed-capacity slots ([`SLOT_CAP`] per shard, ~4× the expected load
//! at the pool's default shards = frames/4 sizing) with an overflow
//! `HashMap` as the correctness backstop for pathological skew: spilled
//! shards force their readers onto the locked path until removes drain
//! the spill back into slots.

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use bpw_replacement::{FrameId, PageId};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Slots per shard. With the pool's default sizing (one shard per four
/// frames) average occupancy is 4/16 = 25%, so probes are short and
/// spill to the overflow map needs a 4× hash skew within one shard.
const SLOT_CAP: usize = 16;
/// Slot holds no mapping and never has (or was compacted): probes may
/// stop here.
const EMPTY: u64 = u64::MAX;
/// Slot held a since-removed mapping: probes must continue past it.
/// Pages >= TOMBSTONE (the top two ids) live in the overflow map so the
/// sentinels stay unambiguous.
const TOMBSTONE: u64 = u64::MAX - 1;

/// One open-addressing slot. The two fields are only ever interpreted
/// together under an even, unchanged shard version (optimistic readers)
/// or the shard lock (writers, fallback readers), so no ordering
/// stronger than the shard's seqlock fences is needed on the fields
/// themselves.
#[derive(Debug)]
struct Slot {
    page: AtomicU64,
    frame: AtomicU32,
}

impl Slot {
    fn new() -> Self {
        Slot {
            page: AtomicU64::new(EMPTY),
            frame: AtomicU32::new(0),
        }
    }
}

/// Writer-side shard state, guarded by the shard `RwLock`.
#[derive(Debug, Default)]
struct Spill {
    /// Mappings that did not fit in the slot array (and any page id
    /// colliding with the sentinels). Invariant: while this map is
    /// non-empty the slot array contains no `EMPTY` slot — removes
    /// leave tombstones and only compaction (which drains the spill
    /// first) re-creates `EMPTY` — so every slot stays probe-reachable.
    map: HashMap<PageId, FrameId>,
    /// Tombstoned slots; compacted away once they exceed `SLOT_CAP / 2`.
    tombstones: usize,
}

struct Shard {
    /// Seqlock: odd while a writer is mutating; even otherwise.
    version: AtomicU64,
    /// Mirror of `spill.map.len()` readable outside the lock, so
    /// optimistic readers know when a probe miss is inconclusive.
    spill_len: AtomicU64,
    slots: [Slot; SLOT_CAP],
    lock: RwLock<Spill>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            version: AtomicU64::new(0),
            spill_len: AtomicU64::new(0),
            slots: std::array::from_fn(|_| Slot::new()),
            lock: RwLock::new(Spill::default()),
        }
    }

    /// dst-aware lock acquisition: blocking inside a simulation task
    /// would wedge the token-passing scheduler, so spin on the `try_`
    /// variant and yield the token between attempts (the same pattern
    /// as `InstrumentedLock`).
    fn lock_read(&self) -> RwLockReadGuard<'_, Spill> {
        if bpw_dst::in_task() {
            loop {
                if let Some(g) = self.lock.try_read() {
                    return g;
                }
                bpw_dst::yield_now();
            }
        } else {
            self.lock.read()
        }
    }

    fn lock_write(&self) -> RwLockWriteGuard<'_, Spill> {
        if bpw_dst::in_task() {
            loop {
                if let Some(g) = self.lock.try_write() {
                    return g;
                }
                bpw_dst::yield_now();
            }
        } else {
            self.lock.write()
        }
    }

    /// Probe the slot array for `page` (any locking/validation is the
    /// caller's). Returns the frame, or `None` for a definitive miss
    /// *in the slots* (the spill map may still hold the page).
    fn probe(&self, home: usize, page: PageId) -> Option<FrameId> {
        for i in 0..SLOT_CAP {
            let slot = &self.slots[(home + i) % SLOT_CAP];
            let p = slot.page.load(Ordering::Relaxed);
            if p == EMPTY {
                return None;
            }
            if p == page {
                return Some(slot.frame.load(Ordering::Relaxed));
            }
        }
        None
    }

    /// Locked (fallback / writer-side) lookup: slots + spill map.
    fn get_locked(&self, spill: &Spill, home: usize, page: PageId) -> Option<FrameId> {
        self.probe(home, page)
            .or_else(|| spill.map.get(&page).copied())
    }
}

/// RAII seqlock write window: flips the shard version odd on entry and
/// back to even (one generation later) on drop, with the fences that
/// order the slot mutations inside the window. Must only be created
/// while holding the shard's write lock.
struct WriteWindow<'a> {
    shard: &'a Shard,
    v: u64,
}

impl<'a> WriteWindow<'a> {
    fn open(shard: &'a Shard) -> Self {
        let v = shard.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 0, "nested write window");
        shard.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // Expose the in-progress write to the dst scheduler: readers
        // interleaved here observe the odd version and must take the
        // fallback path.
        bpw_dst::yield_point();
        WriteWindow { shard, v }
    }
}

impl Drop for WriteWindow<'_> {
    fn drop(&mut self) {
        self.shard.version.store(self.v + 2, Ordering::Release);
    }
}

/// Sharded page-id → frame-id map with lock-free reads.
pub struct PageTable {
    shards: Vec<Shard>,
    mask: u64,
    /// Optimistic reads that had to retry through the locked path
    /// (torn read, writer in progress, or a spilled shard).
    fallback_reads: AtomicU64,
}

impl PageTable {
    /// Create a table with `shards` buckets (rounded up to a power of
    /// two, minimum 16).
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(16);
        PageTable {
            shards: (0..n).map(|_| Shard::new()).collect(),
            mask: (n - 1) as u64,
            fallback_reads: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// splitmix64 avalanche so sequential page ids spread over shards
    /// and slots.
    fn hash(page: PageId) -> u64 {
        let mut x = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// The shard index `page` hashes to. Public so pool-side structures
    /// (per-shard miss locks, striped free lists) can partition by the
    /// exact same function.
    pub fn shard_index(&self, page: PageId) -> usize {
        (Self::hash(page) & self.mask) as usize
    }

    /// Slot-probe start within a shard: independent bits of the same
    /// avalanche, so pages sharing a shard still spread over its slots.
    fn home_index(page: PageId) -> usize {
        (Self::hash(page) >> 32) as usize % SLOT_CAP
    }

    /// Reads that fell back to the locked path (scraped into
    /// `bpw_page_table_fallback_reads_total`).
    pub fn fallback_reads(&self) -> u64 {
        self.fallback_reads.load(Ordering::Relaxed)
    }

    /// Visit every `(page, frame)` mapping (O(shards) lock rounds; for
    /// invariant checks and stats, not hot paths).
    pub fn for_each(&self, mut f: impl FnMut(PageId, FrameId)) {
        for shard in &self.shards {
            let spill = shard.lock_read();
            for slot in &shard.slots {
                let p = slot.page.load(Ordering::Relaxed);
                if p != EMPTY && p != TOMBSTONE {
                    f(p, slot.frame.load(Ordering::Relaxed));
                }
            }
            for (&page, &frame) in spill.map.iter() {
                f(page, frame);
            }
        }
    }

    /// Look up the frame caching `page`, if mapped — **lock-free** on
    /// the common path: a seqlock-validated probe of the shard's atomic
    /// slots. The yield point makes every lookup a schedule decision
    /// under the dst harness.
    pub fn get(&self, page: PageId) -> Option<FrameId> {
        bpw_dst::yield_point();
        let shard = &self.shards[self.shard_index(page)];
        let home = Self::home_index(page);
        if page < TOMBSTONE {
            let v1 = shard.version.load(Ordering::Acquire);
            // A writer mid-mutation (odd) or a spilled shard (probe
            // misses are inconclusive) can't be decided optimistically.
            if v1 & 1 == 0 && shard.spill_len.load(Ordering::Relaxed) == 0 {
                let found = shard.probe(home, page);
                fence(Ordering::Acquire);
                let v2 = shard.version.load(Ordering::Relaxed);
                if v1 == v2 {
                    return found;
                }
            }
        }
        // Fallback: a torn read means a writer is (or was just) active;
        // the shard lock serializes against it. Rare, so the counter
        // RMW is off the hot path.
        self.fallback_reads.fetch_add(1, Ordering::Relaxed);
        let spill = shard.lock_read();
        shard.get_locked(&spill, home, page)
    }

    /// Map `page` to `frame`. Returns the previous mapping, if any.
    /// Writers serialize on the shard lock (misses only — never on the
    /// hit path).
    pub fn insert(&self, page: PageId, frame: FrameId) -> Option<FrameId> {
        bpw_dst::yield_point();
        let shard = &self.shards[self.shard_index(page)];
        let home = Self::home_index(page);
        let mut spill = shard.lock_write();
        let window = WriteWindow::open(shard);
        if page >= TOMBSTONE {
            // Sentinel-colliding ids live in the spill map only.
            let prev = spill.map.insert(page, frame);
            shard
                .spill_len
                .store(spill.map.len() as u64, Ordering::Relaxed);
            drop(window);
            return prev;
        }
        if spill.tombstones > SLOT_CAP / 2 && spill.map.is_empty() {
            Self::compact(shard, &mut spill);
        }
        // Pass 1: existing entry (update in place) or first free slot.
        let mut free = None;
        for i in 0..SLOT_CAP {
            let idx = (home + i) % SLOT_CAP;
            let slot = &shard.slots[idx];
            let p = slot.page.load(Ordering::Relaxed);
            if p == page {
                let prev = slot.frame.load(Ordering::Relaxed);
                slot.frame.store(frame, Ordering::Relaxed);
                drop(window);
                return Some(prev);
            }
            if p == EMPTY {
                if free.is_none() {
                    free = Some(idx);
                }
                break;
            }
            if p == TOMBSTONE && free.is_none() {
                free = Some(idx);
            }
        }
        if let Some(prev) = spill.map.get_mut(&page) {
            let old = *prev;
            *prev = frame;
            drop(window);
            return Some(old);
        }
        match free {
            Some(idx) => {
                let slot = &shard.slots[idx];
                if slot.page.load(Ordering::Relaxed) == TOMBSTONE {
                    spill.tombstones -= 1;
                }
                slot.frame.store(frame, Ordering::Relaxed);
                slot.page.store(page, Ordering::Relaxed);
            }
            None => {
                // Shard array full: spill. Readers of this shard take
                // the locked path until removes drain the spill.
                spill.map.insert(page, frame);
                shard
                    .spill_len
                    .store(spill.map.len() as u64, Ordering::Relaxed);
            }
        }
        drop(window);
        None
    }

    /// Remove the mapping for `page`. Returns the frame it mapped to.
    pub fn remove(&self, page: PageId) -> Option<FrameId> {
        bpw_dst::yield_point();
        let shard = &self.shards[self.shard_index(page)];
        let home = Self::home_index(page);
        let mut spill = shard.lock_write();
        let window = WriteWindow::open(shard);
        let mut removed = None;
        if page < TOMBSTONE {
            for i in 0..SLOT_CAP {
                let slot = &shard.slots[(home + i) % SLOT_CAP];
                let p = slot.page.load(Ordering::Relaxed);
                if p == EMPTY {
                    break;
                }
                if p == page {
                    removed = Some(slot.frame.load(Ordering::Relaxed));
                    slot.page.store(TOMBSTONE, Ordering::Relaxed);
                    spill.tombstones += 1;
                    break;
                }
            }
        }
        if removed.is_none() {
            removed = spill.map.remove(&page);
            shard
                .spill_len
                .store(spill.map.len() as u64, Ordering::Relaxed);
        }
        // Drain one spilled mapping into the freed tombstone so skewed
        // shards return to the lock-free read path as they empty out.
        // Any slot is probe-reachable here: while the spill is
        // non-empty no EMPTY slot exists (see `Spill::map`).
        if removed.is_some() && !spill.map.is_empty() && spill.tombstones > 0 {
            if let Some((&p2, &f2)) = spill.map.iter().next() {
                if p2 < TOMBSTONE {
                    for slot in &shard.slots {
                        if slot.page.load(Ordering::Relaxed) == TOMBSTONE {
                            slot.frame.store(f2, Ordering::Relaxed);
                            slot.page.store(p2, Ordering::Relaxed);
                            spill.tombstones -= 1;
                            spill.map.remove(&p2);
                            shard
                                .spill_len
                                .store(spill.map.len() as u64, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
        drop(window);
        removed
    }

    /// Rewrite a shard's slots without tombstones (writer-side, inside
    /// a write window). Only runs when the spill map is empty, so the
    /// `EMPTY` slots it creates cannot strand a spilled entry.
    fn compact(shard: &Shard, spill: &mut RwLockWriteGuard<'_, Spill>) {
        let mut live: Vec<(u64, u32)> = Vec::with_capacity(SLOT_CAP);
        for slot in &shard.slots {
            let p = slot.page.load(Ordering::Relaxed);
            if p != EMPTY && p != TOMBSTONE {
                live.push((p, slot.frame.load(Ordering::Relaxed)));
            }
            slot.page.store(EMPTY, Ordering::Relaxed);
        }
        spill.tombstones = 0;
        for (p, f) in live {
            let home = Self::home_index(p);
            for i in 0..SLOT_CAP {
                let slot = &shard.slots[(home + i) % SLOT_CAP];
                if slot.page.load(Ordering::Relaxed) == EMPTY {
                    slot.frame.store(f, Ordering::Relaxed);
                    slot.page.store(p, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    /// Total mappings (O(shards); for stats/tests).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let spill = shard.lock_read();
                let in_slots = shard
                    .slots
                    .iter()
                    .filter(|s| {
                        let p = s.page.load(Ordering::Relaxed);
                        p != EMPTY && p != TOMBSTONE
                    })
                    .count();
                in_slots + spill.map.len()
            })
            .sum()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t = PageTable::new(4);
        assert_eq!(t.get(1), None);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.remove(1), Some(11));
        assert_eq!(t.get(1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn shard_count_rounds_up() {
        assert_eq!(PageTable::new(1).shards(), 16);
        assert_eq!(PageTable::new(17).shards(), 32);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let t = PageTable::new(8);
        for p in 0..10_000u64 {
            let i = t.shard_index(p);
            assert!(i < t.shards());
            assert_eq!(i, t.shard_index(p), "shard function must be pure");
        }
    }

    #[test]
    fn for_each_visits_all_mappings() {
        let t = PageTable::new(4);
        for p in 0..100u64 {
            t.insert(p, p as FrameId);
        }
        let mut seen = std::collections::HashSet::new();
        t.for_each(|page, frame| {
            assert_eq!(page as FrameId, frame);
            assert!(seen.insert(page));
        });
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = PageTable::new(64);
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        t.insert(k * 1000 + i, (k * 1000 + i) as FrameId);
                    }
                });
            }
        });
        assert_eq!(t.len(), 4000);
        for i in 0..4000u64 {
            assert_eq!(t.get(i), Some(i as FrameId));
        }
    }

    #[test]
    fn uncontended_reads_never_fall_back() {
        let t = PageTable::new(8);
        for p in 0..32u64 {
            t.insert(p, p as FrameId);
        }
        let base = t.fallback_reads();
        for _ in 0..4 {
            for p in 0..64u64 {
                let _ = t.get(p);
            }
        }
        assert_eq!(
            t.fallback_reads(),
            base,
            "quiescent lookups must stay on the optimistic path"
        );
    }

    #[test]
    fn spill_and_drain_round_trip() {
        // 16 shards × 16 slots = 256 slot capacity; 2000 mappings must
        // spill, survive lookups (via the locked fallback), and drain
        // back out on removal.
        let t = PageTable::new(1);
        let n = 2000u64;
        for p in 0..n {
            assert_eq!(t.insert(p, p as FrameId), None);
        }
        assert_eq!(t.len(), n as usize);
        for p in 0..n {
            assert_eq!(t.get(p), Some(p as FrameId), "spilled page {p} lost");
        }
        assert!(
            t.fallback_reads() > 0,
            "spilled shards must route reads through the fallback"
        );
        for p in 0..n {
            assert_eq!(t.remove(p), Some(p as FrameId), "page {p} not removed");
        }
        assert!(t.is_empty());
        // Fully drained: the optimistic path works again.
        let base = t.fallback_reads();
        for p in 0..n {
            assert_eq!(t.get(p), None);
        }
        assert_eq!(
            t.fallback_reads(),
            base,
            "drained shards must not fall back"
        );
    }

    #[test]
    fn tombstones_do_not_break_probes() {
        // Churn one shard's worth of keys so probe chains cross
        // tombstones and compaction triggers; every surviving mapping
        // must stay reachable.
        let t = PageTable::new(1);
        for round in 0..50u64 {
            for k in 0..8u64 {
                let p = round * 8 + k;
                t.insert(p, p as FrameId);
            }
            for k in 0..8u64 {
                let p = round * 8 + k;
                assert_eq!(t.get(p), Some(p as FrameId));
                if k % 2 == 0 {
                    assert_eq!(t.remove(p), Some(p as FrameId));
                }
            }
        }
        let mut count = 0;
        t.for_each(|page, frame| {
            assert_eq!(page as FrameId, frame);
            count += 1;
        });
        assert_eq!(count, t.len());
    }

    #[test]
    fn sentinel_colliding_pages_work() {
        // The top two page ids collide with the slot sentinels and must
        // route through the spill map.
        let t = PageTable::new(4);
        for p in [u64::MAX, u64::MAX - 1] {
            assert_eq!(t.insert(p, 7), None);
            assert_eq!(t.get(p), Some(7));
            assert_eq!(t.insert(p, 8), Some(7));
            assert_eq!(t.remove(p), Some(8));
            assert_eq!(t.get(p), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn readers_race_writers_consistently() {
        // Readers hammer a key range while writers insert/remove it;
        // every observed frame must be the one its page was mapped to
        // (frame = page here), torn states must only ever cause
        // fallbacks, never wrong values.
        let t = PageTable::new(4);
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = &t;
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        for p in 0..64u64 {
                            if let Some(f) = t.get(p) {
                                assert_eq!(f, p as FrameId, "torn read returned wrong frame");
                            }
                        }
                    }
                });
            }
            for k in 0..2u64 {
                let t = &t;
                s.spawn(move || {
                    for round in 0..2000u64 {
                        for p in (k * 32)..(k * 32 + 32) {
                            if round % 2 == 0 {
                                t.insert(p, p as FrameId);
                            } else {
                                t.remove(p);
                            }
                        }
                    }
                });
            }
            // Writers finish first; then release the readers.
            // (scope join handles: spawn order — writers are the last
            // two handles, but scope joins all at the end; use a simple
            // completion flag instead.)
            std::thread::sleep(std::time::Duration::from_millis(100));
            stop.store(1, Ordering::Relaxed);
        });
    }
}
