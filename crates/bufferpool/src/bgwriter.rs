//! Background writer: cleans dirty buffers ahead of eviction, so the
//! miss path rarely stalls on a synchronous write-back — PostgreSQL's
//! `bgwriter`, the substrate component that keeps the Fig. 8 I/O-bound
//! runs from serializing evictions behind writes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bpw_replacement::FrameId;

use crate::managers::ReplacementManager;
use crate::pool::BufferPool;

impl<M: ReplacementManager> BufferPool<M> {
    /// Write back up to `max` dirty, unpinned frames (WAL-first), clearing
    /// their dirty flags. Returns how many were cleaned. Safe to run
    /// concurrently with fetches: content is copied under the frame's
    /// data latch and re-dirtying during the write is preserved.
    pub fn flush_dirty_pages(&self, max: usize) -> usize {
        let span = bpw_trace::span_start();
        let mut cleaned = 0;
        for f in 0..self.frames() as FrameId {
            if cleaned >= max {
                break;
            }
            if self.clean_one(f) {
                cleaned += 1;
            }
        }
        bpw_trace::span_end(bpw_trace::EventKind::BgwriterPass, span, cleaned as u64);
        cleaned
    }

    /// Attempt to clean frame `f`. See `flush_dirty_pages`.
    ///
    /// The content is copied under the frame's data latch and the latch
    /// released *before* the WAL commit and device write, so writers to
    /// the page are never blocked for the flush+write latency. A pin is
    /// held across the I/O so the frame cannot be evicted meanwhile (a
    /// concurrent eviction's write-back of newer bytes could otherwise
    /// be clobbered by this copy landing late); readers and writers pin
    /// concurrently as usual, and a racing write re-dirties the frame so
    /// nothing is lost.
    fn clean_one(&self, f: FrameId) -> bool {
        // Lock order everywhere: data latch before descriptor latch.
        let copy;
        let (page, lsn) = {
            let data = self.data_lock(f);
            let mut s = self.desc(f).lock();
            if !(s.valid && s.dirty && !s.io_in_progress) {
                return false;
            }
            s.dirty = false; // a racing write re-dirties after us: no loss
            s.pins += 1; // hold the frame against eviction across the I/O
            copy = data.clone();
            bpw_dst::record(|| bpw_dst::Op::Pin {
                page: s.tag,
                pins: s.pins,
            });
            (s.tag, s.lsn)
        }; // both latches released; I/O proceeds on the copy
        let result = self.io_with_retries(page, || {
            if let (Some(wal), true) = (self.wal(), lsn > 0) {
                wal.commit(lsn)?; // WAL-before-data
            }
            self.storage().write_page(page, &copy)
        });
        let mut s = self.desc(f).lock();
        s.pins -= 1;
        bpw_dst::record(|| bpw_dst::Op::Unpin { page, pins: s.pins });
        match result {
            Ok(()) => {
                self.stats().writebacks.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // Put the dirt back so a later pass (or eviction-time
                // write-back) retries; the bytes are still in the frame.
                s.dirty = true;
                s.lsn = s.lsn.max(lsn);
                false
            }
        }
    }
}

/// Handle to a running background-writer thread; stops and joins on drop.
pub struct BgWriter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BgWriter {
    /// Spawn a background writer over `pool`, cleaning up to `batch`
    /// frames every `interval`.
    pub fn spawn<M: ReplacementManager + 'static>(
        pool: Arc<BufferPool<M>>,
        interval: Duration,
        batch: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                pool.flush_dirty_pages(batch);
                std::thread::sleep(interval);
            }
            // Final sweep so shutdown leaves the pool clean.
            pool.flush_dirty_pages(usize::MAX);
        });
        BgWriter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the writer and wait for its final sweep.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BgWriter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::managers::CoarseManager;
    use crate::storage::SimDisk;
    use bpw_replacement::TwoQ;

    fn pool(frames: usize) -> BufferPool<CoarseManager<TwoQ>> {
        BufferPool::new(
            frames,
            64,
            CoarseManager::new(TwoQ::new(frames)),
            Arc::new(SimDisk::instant()),
        )
    }

    #[test]
    fn flush_cleans_dirty_frames() {
        let p = pool(8);
        let mut s = p.session();
        for page in 0..4u64 {
            s.fetch(page).unwrap().write(|d| d[10] = page as u8 + 1);
        }
        assert_eq!(p.flush_dirty_pages(2), 2, "bounded batch");
        assert_eq!(p.flush_dirty_pages(usize::MAX), 2, "rest cleaned");
        assert_eq!(p.storage().writes(), 4);
        assert_eq!(p.flush_dirty_pages(usize::MAX), 0, "nothing left");
    }

    #[test]
    fn cleaned_evictions_need_no_writeback() {
        let p = pool(2);
        let mut s = p.session();
        s.fetch(1).unwrap().write(|d| d[10] = 1);
        s.fetch(2).unwrap().write(|d| d[10] = 2);
        p.flush_dirty_pages(usize::MAX);
        let writes_before = p.storage().writes();
        // Evict both: no further write-backs needed.
        drop(s.fetch(3).unwrap());
        drop(s.fetch(4).unwrap());
        assert_eq!(
            p.storage().writes(),
            writes_before,
            "eviction found clean pages"
        );
    }

    #[test]
    fn redirty_during_clean_is_not_lost() {
        let p = pool(2);
        let mut s = p.session();
        s.fetch(1).unwrap().write(|d| d[10] = 1);
        p.flush_dirty_pages(usize::MAX);
        // Dirty again; the flag must be back.
        s.fetch(1).unwrap().write(|d| d[10] = 2);
        assert_eq!(
            p.flush_dirty_pages(usize::MAX),
            1,
            "re-dirtied page cleaned again"
        );
        // Verify the latest version is what storage holds.
        let mut buf = vec![0u8; 64];
        p.storage().read_page(1, &mut buf).unwrap();
        assert_eq!(buf[10], 2);
    }

    #[test]
    fn failed_clean_redirties_the_frame() {
        use crate::pool::RetryPolicy;
        use crate::storage::{FaultPlan, FaultyDisk, Storage};
        let disk = Arc::new(FaultyDisk::new(
            Arc::new(SimDisk::instant()),
            FaultPlan::default(),
        ));
        let p = BufferPool::new(
            4,
            64,
            CoarseManager::new(TwoQ::new(4)),
            Arc::clone(&disk) as Arc<dyn Storage>,
        )
        .with_retry_policy(RetryPolicy::none());
        let mut s = p.session();
        let pin = s.fetch(1).unwrap();
        let frame = pin.frame();
        pin.write(|d| d[10] = 0x11);
        drop(pin);
        disk.break_page_writes(1);
        assert_eq!(p.flush_dirty_pages(usize::MAX), 0, "clean must fail");
        assert_eq!(p.stats().io_errors.load(Ordering::Relaxed), 1);
        assert!(p.desc(frame).snapshot().dirty, "frame must be re-dirtied");
        assert_eq!(p.desc(frame).snapshot().pins, 0, "bgwriter pin released");
        // Device heals: the same dirt cleans on the next pass.
        disk.clear_faults();
        assert_eq!(p.flush_dirty_pages(usize::MAX), 1);
        let mut buf = vec![0u8; 64];
        p.storage().read_page(1, &mut buf).unwrap();
        assert_eq!(buf[10], 0x11, "the write eventually lands");
    }

    #[test]
    fn writers_not_blocked_during_clean_io() {
        // The satellite fix: a slow device write must not hold the data
        // latch — a writer to the same page proceeds while the bgwriter
        // flushes its copy.
        let disk = Arc::new(SimDisk::new(Duration::ZERO, Duration::from_millis(30)));
        let p = BufferPool::new(2, 64, CoarseManager::new(TwoQ::new(2)), disk);
        let mut s = p.session();
        let frame = {
            let pin = s.fetch(1).unwrap();
            pin.write(|d| d[10] = 1);
            pin.frame()
        };
        std::thread::scope(|sc| {
            let p = &p;
            let t = sc.spawn(move || p.flush_dirty_pages(usize::MAX));
            // The bgwriter clears `dirty` under the latches when it takes
            // its copy, *before* starting the 30 ms device write — wait
            // for that observable point instead of guessing with a sleep.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while p.desc(frame).snapshot().dirty {
                assert!(
                    std::time::Instant::now() < deadline,
                    "bgwriter never took its copy of the dirty frame"
                );
                std::thread::yield_now();
            }
            let t0 = std::time::Instant::now();
            let mut s2 = p.session();
            s2.fetch(1).unwrap().write(|d| d[10] = 2);
            assert!(
                t0.elapsed() < Duration::from_millis(20),
                "writer blocked for the device write: {:?}",
                t0.elapsed()
            );
            t.join().unwrap();
        });
        // The racing write re-dirtied the frame; nothing lost.
        assert_eq!(p.flush_dirty_pages(usize::MAX), 1);
        let mut buf = vec![0u8; 64];
        p.storage().read_page(1, &mut buf).unwrap();
        assert_eq!(buf[10], 2);
    }

    #[test]
    fn bgwriter_thread_cleans_concurrently() {
        let p = Arc::new(pool(64));
        let writer = BgWriter::spawn(Arc::clone(&p), Duration::from_micros(200), 16);
        std::thread::scope(|sc| {
            let p = &p;
            sc.spawn(move || {
                let mut s = p.session();
                for page in 0..500u64 {
                    s.fetch(page % 64)
                        .unwrap()
                        .write(|d| d[12] = (page % 251) as u8);
                }
            });
        });
        writer.shutdown(); // final sweep
        assert_eq!(
            p.flush_dirty_pages(usize::MAX),
            0,
            "shutdown sweep left dirt"
        );
        assert!(p.storage().writes() > 0);
    }
}
