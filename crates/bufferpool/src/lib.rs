//! # bpw-bufferpool
//!
//! A DBMS-style buffer pool substrate for the BP-Wrapper reproduction:
//! a sharded page table (concurrent lookups, per-bucket locks), buffer
//! descriptors with pin counts and per-frame latches, simulated storage,
//! and pluggable replacement managers covering the paper's three
//! synchronization schemes (coarse lock per access, lock-free CLOCK
//! hits, and BP-Wrapper).
//!
//! ```
//! use std::sync::Arc;
//! use bpw_bufferpool::{BufferPool, WrappedManager, SimDisk};
//! use bpw_core::WrapperConfig;
//! use bpw_replacement::TwoQ;
//!
//! let pool = BufferPool::new(
//!     1024,                     // frames
//!     8192,                     // page size
//!     WrappedManager::new(TwoQ::new(1024), WrapperConfig::default()),
//!     Arc::new(SimDisk::instant()),
//! );
//! let mut session = pool.session();
//! let page = session.fetch(42).expect("storage I/O failed");
//! page.read(|bytes| assert_eq!(bytes.len(), 8192));
//! ```

pub mod bgwriter;
pub mod desc;
pub mod free_list;
pub mod managers;
pub mod page_table;
pub mod pool;
pub mod storage;
pub mod swap;
pub mod wal;

pub use bgwriter::BgWriter;
pub use desc::{BufferDesc, DescState, MutexDesc, PinAttempt, UnpinOutcome};
pub use free_list::StripedFreeList;
pub use managers::{
    ClockManager, CoarseManager, ManagerHandle, ReplacementManager, WrappedManager,
};
pub use page_table::PageTable;
pub use pool::{BufferPool, InvalidateOutcome, PinnedPage, PoolSession, PoolStats, RetryPolicy};
pub use storage::{FaultPlan, FaultyDisk, SimDisk, Storage};
pub use swap::{SwapManager, SwapReport};
pub use wal::{Lsn, Wal};
