//! Storage substrate: where pages live when they are not in the buffer
//! pool. The paper's machines used RAID arrays; we simulate a device
//! with configurable access latency so the Fig. 8 experiments (buffer
//! smaller than data, systems I/O-bound vs scalability-bound) can be
//! reproduced on any host.
//!
//! Both operations are fallible: real devices time out, return media
//! errors, and degrade under load. [`FaultyDisk`] decorates any
//! [`Storage`] with a deterministic, seeded fault plan (transient
//! fail-next-N, persistent per-page error sets, probabilistic transient
//! faults, latency spikes) so every error path in the pool can be
//! exercised repeatably.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bpw_replacement::PageId;
use parking_lot::Mutex;

/// A page-granular storage device.
pub trait Storage: Send + Sync {
    /// Read `page` into `buf` (exactly one page). On `Err`, `buf`'s
    /// contents are unspecified and must not be served.
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()>;

    /// Write `buf` as the new contents of `page`. On `Err` the page's
    /// previous durable contents are still intact (no torn pages).
    fn write_page(&self, page: PageId, buf: &[u8]) -> io::Result<()>;

    /// Pages read so far (successful reads only).
    fn reads(&self) -> u64;

    /// Pages written so far (successful writes only).
    fn writes(&self) -> u64;
}

/// Deterministic simulated disk: unwritten pages read back as a pure
/// function of the page id (verifiable), written pages are retained and
/// read back exactly (write-back durability), and each access spins for
/// a configurable latency to model device time.
pub struct SimDisk {
    read_latency: Duration,
    write_latency: Duration,
    written: Mutex<HashMap<PageId, Box<[u8]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl SimDisk {
    /// A disk with the given per-access latencies.
    pub fn new(read_latency: Duration, write_latency: Duration) -> Self {
        SimDisk {
            read_latency,
            write_latency,
            written: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Number of distinct pages that have been written.
    pub fn written_pages(&self) -> usize {
        self.written.lock().len()
    }

    /// A latency-free disk (pure function of page id), for tests and
    /// hit-path benchmarks.
    pub fn instant() -> Self {
        Self::new(Duration::ZERO, Duration::ZERO)
    }

    /// First byte a page's content is filled with (test helper).
    pub fn fill_byte(page: PageId) -> u8 {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
    }

    fn spin_for(d: Duration) {
        if d.is_zero() {
            return;
        }
        // Busy-wait below a scheduling quantum, sleep above it: short
        // device latencies would otherwise be swamped by timer slack.
        if d < Duration::from_micros(100) {
            let start = std::time::Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(d);
        }
    }
}

impl Storage for SimDisk {
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()> {
        Self::spin_for(self.read_latency);
        if let Some(stored) = self.written.lock().get(&page) {
            let n = stored.len().min(buf.len());
            buf[..n].copy_from_slice(&stored[..n]);
            // A stored page shorter than the frame must not leave the
            // tail holding the evicted victim's stale bytes.
            buf[n..].fill(0);
        } else {
            buf.fill(Self::fill_byte(page));
            if buf.len() >= 8 {
                buf[..8].copy_from_slice(&page.to_le_bytes());
            }
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> io::Result<()> {
        Self::spin_for(self.write_latency);
        self.written
            .lock()
            .insert(page, buf.to_vec().into_boxed_slice());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

// --- Fault injection --------------------------------------------------------

/// A declarative fault plan for [`FaultyDisk`]. Everything is
/// deterministic given `seed` and the sequence of operations issued.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the probabilistic fault draws.
    pub seed: u64,
    /// Fail the next N reads (transient; decrements per injected fault).
    pub fail_next_reads: u64,
    /// Fail the next N writes (transient).
    pub fail_next_writes: u64,
    /// Pages whose reads always fail until the plan is cleared.
    pub broken_read_pages: Vec<PageId>,
    /// Pages whose writes always fail until the plan is cleared.
    pub broken_write_pages: Vec<PageId>,
    /// Per-million probability that any read fails (transient).
    pub read_fail_ppm: u32,
    /// Per-million probability that any write fails (transient).
    pub write_fail_ppm: u32,
    /// Per-million probability that an access takes a latency spike.
    pub spike_ppm: u32,
    /// Duration of an injected latency spike.
    pub spike: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_17,
            fail_next_reads: 0,
            fail_next_writes: 0,
            broken_read_pages: Vec::new(),
            broken_write_pages: Vec::new(),
            read_fail_ppm: 0,
            write_fail_ppm: 0,
            spike_ppm: 0,
            spike: Duration::from_micros(500),
        }
    }
}

#[derive(Debug)]
struct FaultState {
    rng: u64,
    fail_next_reads: u64,
    fail_next_writes: u64,
    broken_reads: HashSet<PageId>,
    broken_writes: HashSet<PageId>,
    read_fail_ppm: u32,
    write_fail_ppm: u32,
    spike_ppm: u32,
    spike: Duration,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A decorator that injects faults into any [`Storage`] according to a
/// [`FaultPlan`]. The same seed and the same operation sequence produce
/// the same fault sequence, so chaos runs are replayable.
pub struct FaultyDisk {
    inner: std::sync::Arc<dyn Storage>,
    state: Mutex<FaultState>,
    /// Read faults injected so far.
    pub injected_read_faults: AtomicU64,
    /// Write faults injected so far.
    pub injected_write_faults: AtomicU64,
    /// Latency spikes injected so far.
    pub injected_spikes: AtomicU64,
}

impl FaultyDisk {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: std::sync::Arc<dyn Storage>, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            state: Mutex::new(FaultState {
                rng: plan.seed,
                fail_next_reads: plan.fail_next_reads,
                fail_next_writes: plan.fail_next_writes,
                broken_reads: plan.broken_read_pages.into_iter().collect(),
                broken_writes: plan.broken_write_pages.into_iter().collect(),
                read_fail_ppm: plan.read_fail_ppm,
                write_fail_ppm: plan.write_fail_ppm,
                spike_ppm: plan.spike_ppm,
                spike: plan.spike,
            }),
            injected_read_faults: AtomicU64::new(0),
            injected_write_faults: AtomicU64::new(0),
            injected_spikes: AtomicU64::new(0),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &std::sync::Arc<dyn Storage> {
        &self.inner
    }

    /// Fail the next `n` reads (adds to any pending budget).
    pub fn fail_next_reads(&self, n: u64) {
        self.state.lock().fail_next_reads += n;
    }

    /// Fail the next `n` writes (adds to any pending budget).
    pub fn fail_next_writes(&self, n: u64) {
        self.state.lock().fail_next_writes += n;
    }

    /// Make every read of `page` fail until [`clear_faults`](Self::clear_faults).
    pub fn break_page_reads(&self, page: PageId) {
        self.state.lock().broken_reads.insert(page);
    }

    /// Make every write of `page` fail until [`clear_faults`](Self::clear_faults).
    pub fn break_page_writes(&self, page: PageId) {
        self.state.lock().broken_writes.insert(page);
    }

    /// Remove every pending and persistent fault; the device becomes
    /// healthy again (latency spikes included).
    pub fn clear_faults(&self) {
        let mut s = self.state.lock();
        s.fail_next_reads = 0;
        s.fail_next_writes = 0;
        s.broken_reads.clear();
        s.broken_writes.clear();
        s.read_fail_ppm = 0;
        s.write_fail_ppm = 0;
        s.spike_ppm = 0;
    }

    /// Total faults injected (reads + writes).
    pub fn injected_faults(&self) -> u64 {
        self.injected_read_faults.load(Ordering::Relaxed)
            + self.injected_write_faults.load(Ordering::Relaxed)
    }

    /// Decide the fate of one access. Returns `(inject_fault, spike)`.
    fn draw(&self, page: PageId, write: bool) -> (bool, Option<Duration>) {
        let mut s = self.state.lock();
        let broken = if write {
            s.broken_writes.contains(&page)
        } else {
            s.broken_reads.contains(&page)
        };
        let spike = if s.spike_ppm > 0 && splitmix64(&mut s.rng) % 1_000_000 < s.spike_ppm as u64 {
            Some(s.spike)
        } else {
            None
        };
        if broken {
            return (true, spike);
        }
        let budget = if write {
            &mut s.fail_next_writes
        } else {
            &mut s.fail_next_reads
        };
        if *budget > 0 {
            *budget -= 1;
            return (true, spike);
        }
        let ppm = if write {
            s.write_fail_ppm
        } else {
            s.read_fail_ppm
        };
        let fault = ppm > 0 && splitmix64(&mut s.rng) % 1_000_000 < ppm as u64;
        (fault, spike)
    }
}

impl Storage for FaultyDisk {
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()> {
        let (fault, spike) = self.draw(page, false);
        if let Some(d) = spike {
            self.injected_spikes.fetch_add(1, Ordering::Relaxed);
            SimDisk::spin_for(d);
        }
        if fault {
            self.injected_read_faults.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "injected read fault on page {page}"
            )));
        }
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> io::Result<()> {
        let (fault, spike) = self.draw(page, true);
        if let Some(d) = spike {
            self.injected_spikes.fetch_add(1, Ordering::Relaxed);
            SimDisk::spin_for(d);
        }
        if fault {
            self.injected_write_faults.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "injected write fault on page {page}"
            )));
        }
        self.inner.write_page(page, buf)
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reads_are_deterministic_and_tagged() {
        let d = SimDisk::instant();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        d.read_page(7, &mut a).unwrap();
        d.read_page(7, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(u64::from_le_bytes(a[..8].try_into().unwrap()), 7);
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn different_pages_differ() {
        let d = SimDisk::instant();
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        d.read_page(1, &mut a).unwrap();
        d.read_page(2, &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn latency_is_applied() {
        let d = SimDisk::new(Duration::from_micros(200), Duration::ZERO);
        let mut buf = vec![0u8; 8];
        let t0 = std::time::Instant::now();
        d.read_page(1, &mut buf).unwrap();
        assert!(t0.elapsed() >= Duration::from_micros(150));
    }

    #[test]
    fn write_counter() {
        let d = SimDisk::instant();
        d.write_page(3, &[0u8; 8]).unwrap();
        d.write_page(4, &[0u8; 8]).unwrap();
        assert_eq!(d.writes(), 2);
        assert_eq!(d.reads(), 0);
        assert_eq!(d.written_pages(), 2);
    }

    #[test]
    fn written_pages_read_back_exactly() {
        let d = SimDisk::instant();
        let payload = [7u8; 32];
        d.write_page(42, &payload).unwrap();
        let mut buf = [0u8; 32];
        d.read_page(42, &mut buf).unwrap();
        assert_eq!(buf, payload, "written data must persist");
        // Other pages still synthesize deterministic content.
        d.read_page(43, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), 43);
    }

    #[test]
    fn short_stored_page_zero_fills_the_tail() {
        let d = SimDisk::instant();
        // Leave victim bytes in the buffer, then read a page whose
        // stored copy is shorter than the frame.
        d.write_page(9, &[0xEE; 16]).unwrap();
        let mut buf = vec![0xA5u8; 64];
        d.read_page(9, &mut buf).unwrap();
        assert!(buf[..16].iter().all(|&b| b == 0xEE));
        assert!(
            buf[16..].iter().all(|&b| b == 0),
            "tail must be zero-filled, not stale victim bytes: {:?}",
            &buf[16..]
        );
    }

    #[test]
    fn faulty_disk_fail_next_reads_is_transient() {
        let d = FaultyDisk::new(Arc::new(SimDisk::instant()), FaultPlan::default());
        d.fail_next_reads(2);
        let mut buf = vec![0u8; 16];
        assert!(d.read_page(1, &mut buf).is_err());
        assert!(d.read_page(1, &mut buf).is_err());
        assert!(d.read_page(1, &mut buf).is_ok());
        assert_eq!(d.injected_read_faults.load(Ordering::Relaxed), 2);
        assert_eq!(d.reads(), 1, "failed reads never reach the device");
    }

    #[test]
    fn faulty_disk_persistent_pages_fail_until_cleared() {
        let d = FaultyDisk::new(Arc::new(SimDisk::instant()), FaultPlan::default());
        d.break_page_reads(7);
        d.break_page_writes(8);
        let mut buf = vec![0u8; 16];
        for _ in 0..5 {
            assert!(d.read_page(7, &mut buf).is_err());
            assert!(d.write_page(8, &buf).is_err());
        }
        assert!(d.read_page(6, &mut buf).is_ok(), "other pages unaffected");
        d.clear_faults();
        assert!(d.read_page(7, &mut buf).is_ok());
        assert!(d.write_page(8, &buf).is_ok());
    }

    #[test]
    fn faulty_disk_same_seed_same_fault_sequence() {
        let plan = FaultPlan {
            seed: 42,
            read_fail_ppm: 300_000,
            write_fail_ppm: 150_000,
            ..FaultPlan::default()
        };
        let mk = || FaultyDisk::new(Arc::new(SimDisk::instant()), plan.clone());
        let (a, b) = (mk(), mk());
        let mut buf = vec![0u8; 16];
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for i in 0..200u64 {
            if i % 3 == 0 {
                seq_a.push(a.write_page(i, &buf).is_err());
                seq_b.push(b.write_page(i, &buf).is_err());
            } else {
                seq_a.push(a.read_page(i, &mut buf).is_err());
                seq_b.push(b.read_page(i, &mut buf).is_err());
            }
        }
        assert_eq!(seq_a, seq_b, "same seed must give the same fault plan");
        assert!(seq_a.iter().any(|&f| f), "some faults must fire at 30%");
        assert!(!seq_a.iter().all(|&f| f), "not every access faults");
    }

    #[test]
    fn faulty_disk_different_seeds_diverge() {
        let mk = |seed| {
            FaultyDisk::new(
                Arc::new(SimDisk::instant()),
                FaultPlan {
                    seed,
                    read_fail_ppm: 500_000,
                    ..FaultPlan::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        let seq = |d: &FaultyDisk| {
            (0..128u64)
                .map(|i| d.read_page(i, &mut [0u8; 16]).is_err())
                .collect::<Vec<_>>()
        };
        assert_ne!(seq(&a), seq(&b), "different seeds should diverge");
    }

    #[test]
    fn faulty_disk_passes_content_through() {
        let d = FaultyDisk::new(Arc::new(SimDisk::instant()), FaultPlan::default());
        d.write_page(3, &[9u8; 16]).unwrap();
        let mut buf = vec![0u8; 16];
        d.read_page(3, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 16]);
        assert_eq!(d.injected_faults(), 0);
    }
}
