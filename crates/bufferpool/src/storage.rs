//! Storage substrate: where pages live when they are not in the buffer
//! pool. The paper's machines used RAID arrays; we simulate a device
//! with configurable access latency so the Fig. 8 experiments (buffer
//! smaller than data, systems I/O-bound vs scalability-bound) can be
//! reproduced on any host.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bpw_replacement::PageId;
use parking_lot::Mutex;

/// A page-granular storage device.
pub trait Storage: Send + Sync {
    /// Read `page` into `buf` (exactly one page).
    fn read_page(&self, page: PageId, buf: &mut [u8]);

    /// Write `buf` as the new contents of `page`.
    fn write_page(&self, page: PageId, buf: &[u8]);

    /// Pages read so far.
    fn reads(&self) -> u64;

    /// Pages written so far.
    fn writes(&self) -> u64;
}

/// Deterministic simulated disk: unwritten pages read back as a pure
/// function of the page id (verifiable), written pages are retained and
/// read back exactly (write-back durability), and each access spins for
/// a configurable latency to model device time.
pub struct SimDisk {
    read_latency: Duration,
    write_latency: Duration,
    written: Mutex<HashMap<PageId, Box<[u8]>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl SimDisk {
    /// A disk with the given per-access latencies.
    pub fn new(read_latency: Duration, write_latency: Duration) -> Self {
        SimDisk {
            read_latency,
            write_latency,
            written: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Number of distinct pages that have been written.
    pub fn written_pages(&self) -> usize {
        self.written.lock().len()
    }

    /// A latency-free disk (pure function of page id), for tests and
    /// hit-path benchmarks.
    pub fn instant() -> Self {
        Self::new(Duration::ZERO, Duration::ZERO)
    }

    /// First byte a page's content is filled with (test helper).
    pub fn fill_byte(page: PageId) -> u8 {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
    }

    fn spin_for(d: Duration) {
        if d.is_zero() {
            return;
        }
        // Busy-wait below a scheduling quantum, sleep above it: short
        // device latencies would otherwise be swamped by timer slack.
        if d < Duration::from_micros(100) {
            let start = std::time::Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(d);
        }
    }
}

impl Storage for SimDisk {
    fn read_page(&self, page: PageId, buf: &mut [u8]) {
        Self::spin_for(self.read_latency);
        if let Some(stored) = self.written.lock().get(&page) {
            let n = stored.len().min(buf.len());
            buf[..n].copy_from_slice(&stored[..n]);
        } else {
            buf.fill(Self::fill_byte(page));
            if buf.len() >= 8 {
                buf[..8].copy_from_slice(&page.to_le_bytes());
            }
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn write_page(&self, page: PageId, buf: &[u8]) {
        Self::spin_for(self.write_latency);
        self.written
            .lock()
            .insert(page, buf.to_vec().into_boxed_slice());
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_deterministic_and_tagged() {
        let d = SimDisk::instant();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        d.read_page(7, &mut a);
        d.read_page(7, &mut b);
        assert_eq!(a, b);
        assert_eq!(u64::from_le_bytes(a[..8].try_into().unwrap()), 7);
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn different_pages_differ() {
        let d = SimDisk::instant();
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        d.read_page(1, &mut a);
        d.read_page(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn latency_is_applied() {
        let d = SimDisk::new(Duration::from_micros(200), Duration::ZERO);
        let mut buf = vec![0u8; 8];
        let t0 = std::time::Instant::now();
        d.read_page(1, &mut buf);
        assert!(t0.elapsed() >= Duration::from_micros(150));
    }

    #[test]
    fn write_counter() {
        let d = SimDisk::instant();
        d.write_page(3, &[0u8; 8]);
        d.write_page(4, &[0u8; 8]);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.reads(), 0);
        assert_eq!(d.written_pages(), 2);
    }

    #[test]
    fn written_pages_read_back_exactly() {
        let d = SimDisk::instant();
        let payload = [7u8; 32];
        d.write_page(42, &payload);
        let mut buf = [0u8; 32];
        d.read_page(42, &mut buf);
        assert_eq!(buf, payload, "written data must persist");
        // Other pages still synthesize deterministic content.
        d.read_page(43, &mut buf);
        assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), 43);
    }
}
