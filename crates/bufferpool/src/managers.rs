//! Replacement managers: how the pool talks to its replacement
//! algorithm. Three synchronization styles, matching the paper's tested
//! systems:
//!
//! * [`CoarseManager`] — any policy behind one lock, acquired on every
//!   access (the `pgQ` baseline, and `pgPre` when built with a
//!   prefetching wrapper config).
//! * [`ClockManager`] — CLOCK with PostgreSQL's lock-free hit path
//!   (atomic reference bits); the lock is taken only on misses
//!   (`pgClock`, the scalability gold standard).
//! * [`WrappedManager`] — any policy behind BP-Wrapper (`pgBat`,
//!   `pgBatPre`, and every configuration in between).

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use bpw_core::{BpWrapper, CombiningSnapshot, InstrumentedLock, WrapperConfig};
use bpw_metrics::{LockSnapshot, LockStats};
use bpw_replacement::{FrameId, MissOutcome, PageId, ReplacementPolicy};

/// How a pool thread reports accesses to the replacement algorithm.
/// One handle per thread; handles hold whatever per-thread state the
/// scheme needs (BP-Wrapper's private FIFO queue, in particular).
pub trait ManagerHandle {
    /// A pinned page was found in `frame`.
    fn on_hit(&mut self, page: PageId, frame: FrameId);

    /// `page` missed; choose (and record) a frame for it.
    fn on_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome;

    /// Commit any deferred bookkeeping (end of a thread's run).
    fn flush(&mut self) {}

    /// Manager hot-swap: surrender any thread-private deferred accesses
    /// *without* committing them into the (retiring) manager, so the
    /// swap coordinator can replay them into the successor. Handles
    /// with no deferred state return an empty vec.
    fn take_for_swap(&mut self) -> Vec<(PageId, FrameId)> {
        Vec::new()
    }

    /// Manager hot-swap: adopt accesses recorded against a predecessor
    /// manager. The default replays them as ordinary hits; BP-Wrapper
    /// handles override this to re-queue quietly (the accesses were
    /// already counted and recorded once).
    fn absorb(&mut self, entries: &[(PageId, FrameId)]) {
        for &(page, frame) in entries {
            self.on_hit(page, frame);
        }
    }
}

/// A replacement algorithm plus its synchronization scheme.
pub trait ReplacementManager: Send + Sync {
    /// Scheme name for reports.
    fn name(&self) -> String;

    /// Per-thread access handle.
    fn handle(&self) -> Box<dyn ManagerHandle + '_>;

    /// Forget `frame` entirely (invalidation path; rare, takes the lock).
    fn invalidate(&self, frame: FrameId);

    /// Lock statistics for the replacement lock.
    fn lock_snapshot(&self) -> LockSnapshot;

    /// Combining-commit counters, for managers that batch through a
    /// BP-Wrapper publication board. `None` for managers with no
    /// combining machinery at all.
    fn combining_snapshot(&self) -> Option<CombiningSnapshot> {
        None
    }

    /// Manager hot-swap: the resident `(frame, page)` set this manager
    /// believes in, for transfer into a successor. Callers must freeze
    /// residency (hold every pool miss-shard lock) first.
    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        Vec::new()
    }

    /// Manager hot-swap: seed a *fresh* manager with a predecessor's
    /// resident set before it is installed (so its first miss decision
    /// already sees the inherited working set).
    fn import_state(&self, _state: &[(FrameId, PageId)]) {}

    /// Manager hot-swap: drain any published-but-undrained combining
    /// batches off this (retiring) manager, returning the raw accesses
    /// so the coordinator can replay them into the successor. Managers
    /// without a publication board return an empty vec.
    fn take_published(&self) -> Vec<(PageId, FrameId)> {
        Vec::new()
    }

    /// Hot-swap the live manager for `next`, if this manager supports
    /// it ([`SwapManager`](crate::swap::SwapManager) does; static
    /// managers return `None` and drop `next`). Callers must freeze
    /// residency first — [`BufferPool::swap_manager`](crate::BufferPool::swap_manager)
    /// is the safe entry point.
    fn swap_to(&self, next: Box<dyn ReplacementManager>) -> Option<crate::swap::SwapReport> {
        drop(next);
        None
    }
}

// Boxed managers forward, so a pool's synchronization scheme can be
// chosen at runtime: `BufferPool<Box<dyn ReplacementManager>>`.
impl<M: ReplacementManager + ?Sized> ReplacementManager for Box<M> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        (**self).handle()
    }

    fn invalidate(&self, frame: FrameId) {
        (**self).invalidate(frame)
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        (**self).lock_snapshot()
    }

    fn combining_snapshot(&self) -> Option<CombiningSnapshot> {
        (**self).combining_snapshot()
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        (**self).export_state()
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        (**self).import_state(state)
    }

    fn take_published(&self) -> Vec<(PageId, FrameId)> {
        (**self).take_published()
    }

    fn swap_to(&self, next: Box<dyn ReplacementManager>) -> Option<crate::swap::SwapReport> {
        (**self).swap_to(next)
    }
}

// Arc'd managers forward too, so tests and drivers can keep a typed
// reference to a manager they also hand to a [`SwapManager`] slot.
impl<M: ReplacementManager> ReplacementManager for Arc<M> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        (**self).handle()
    }

    fn invalidate(&self, frame: FrameId) {
        (**self).invalidate(frame)
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        (**self).lock_snapshot()
    }

    fn combining_snapshot(&self) -> Option<CombiningSnapshot> {
        (**self).combining_snapshot()
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        (**self).export_state()
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        (**self).import_state(state)
    }

    fn take_published(&self) -> Vec<(PageId, FrameId)> {
        (**self).take_published()
    }

    fn swap_to(&self, next: Box<dyn ReplacementManager>) -> Option<crate::swap::SwapReport> {
        (**self).swap_to(next)
    }
}

// --- Coarse: one lock, acquired per access -------------------------------

/// Any policy behind a single lock taken on every hit and miss.
pub struct CoarseManager<P: ReplacementPolicy> {
    lock: InstrumentedLock<P>,
}

impl<P: ReplacementPolicy> CoarseManager<P> {
    /// Wrap `policy`.
    pub fn new(policy: P) -> Self {
        CoarseManager {
            lock: InstrumentedLock::new(policy, Arc::new(LockStats::new())),
        }
    }
}

impl<P: ReplacementPolicy> ReplacementManager for CoarseManager<P> {
    fn name(&self) -> String {
        format!("coarse({})", self.lock.lock().name())
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        Box::new(CoarseHandle { mgr: self })
    }

    fn invalidate(&self, frame: FrameId) {
        self.lock.lock().remove(frame);
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        self.lock.stats().snapshot()
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        self.lock.lock().resident_pages()
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        let mut g = self.lock.lock();
        for &(frame, page) in state {
            let out = g.record_miss(page, Some(frame), &mut |_| true);
            debug_assert_eq!(out, MissOutcome::AdmittedFree(frame));
        }
    }
}

struct CoarseHandle<'m, P: ReplacementPolicy> {
    mgr: &'m CoarseManager<P>,
}

impl<'m, P: ReplacementPolicy> ManagerHandle for CoarseHandle<'m, P> {
    fn on_hit(&mut self, _page: PageId, frame: FrameId) {
        let mut g = self.mgr.lock.lock();
        g.record_hit(frame);
        g.cover_accesses(1);
    }

    fn on_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let mut g = self.mgr.lock.lock();
        let out = g.record_miss(page, free, evictable);
        g.cover_accesses(1);
        out
    }
}

// --- Clock: lock-free hit path --------------------------------------------

struct ClockCore {
    page_of: Vec<PageId>,
    present: Vec<bool>,
    hand: usize,
    resident: usize,
}

/// PostgreSQL-style CLOCK: hits set an atomic reference bit (no lock);
/// the sweep on a miss runs under the lock.
pub struct ClockManager {
    referenced: Vec<AtomicU8>,
    lock: InstrumentedLock<ClockCore>,
    hits: AtomicUsize,
}

impl ClockManager {
    /// A clock over `frames` frames.
    pub fn new(frames: usize) -> Self {
        ClockManager {
            referenced: (0..frames).map(|_| AtomicU8::new(0)).collect(),
            lock: InstrumentedLock::new(
                ClockCore {
                    page_of: vec![0; frames],
                    present: vec![false; frames],
                    hand: 0,
                    resident: 0,
                },
                Arc::new(LockStats::new()),
            ),
            hits: AtomicUsize::new(0),
        }
    }

    fn frames(&self) -> usize {
        self.referenced.len()
    }
}

impl ReplacementManager for ClockManager {
    fn name(&self) -> String {
        "clock(lock-free hits)".to_owned()
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        Box::new(ClockHandle { mgr: self })
    }

    fn invalidate(&self, frame: FrameId) {
        let mut g = self.lock.lock();
        if g.present[frame as usize] {
            g.present[frame as usize] = false;
            g.resident -= 1;
        }
        self.referenced[frame as usize].store(0, Ordering::Relaxed);
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        self.lock.stats().snapshot()
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        let g = self.lock.lock();
        (0..self.frames())
            .filter(|&f| g.present[f])
            .map(|f| (f as FrameId, g.page_of[f]))
            .collect()
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        let mut g = self.lock.lock();
        for &(frame, page) in state {
            let f = frame as usize;
            debug_assert!(!g.present[f], "import into occupied frame {frame}");
            g.page_of[f] = page;
            g.present[f] = true;
            g.resident += 1;
            // Inherited pages get one sweep of protection, like a fresh
            // admission would.
            self.referenced[f].store(1, Ordering::Relaxed);
        }
    }
}

struct ClockHandle<'m> {
    mgr: &'m ClockManager,
}

impl<'m> ManagerHandle for ClockHandle<'m> {
    fn on_hit(&mut self, _page: PageId, frame: FrameId) {
        // The whole point of pgClock: no latch, one relaxed store.
        self.mgr.referenced[frame as usize].store(1, Ordering::Relaxed);
        self.mgr.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn on_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        let n = self.mgr.frames();
        let mut g = self.mgr.lock.lock();
        g.cover_accesses(1);
        if let Some(f) = free {
            g.page_of[f as usize] = page;
            g.present[f as usize] = true;
            g.resident += 1;
            self.mgr.referenced[f as usize].store(1, Ordering::Relaxed);
            return MissOutcome::AdmittedFree(f);
        }
        let mut steps = 0;
        while steps < 3 * n {
            let f = g.hand;
            g.hand = (g.hand + 1) % n;
            steps += 1;
            if !g.present[f] {
                continue;
            }
            if self.mgr.referenced[f].swap(0, Ordering::Relaxed) != 0 {
                continue; // second chance
            }
            if evictable(f as FrameId) {
                let victim = g.page_of[f];
                g.page_of[f] = page;
                self.mgr.referenced[f].store(1, Ordering::Relaxed);
                return MissOutcome::Evicted {
                    frame: f as FrameId,
                    victim,
                };
            }
        }
        MissOutcome::NoEvictableFrame
    }
}

// --- Wrapped: BP-Wrapper ---------------------------------------------------

/// Any policy behind the BP-Wrapper framework.
pub struct WrappedManager<P: ReplacementPolicy> {
    wrapper: BpWrapper<P>,
}

impl<P: ReplacementPolicy> WrappedManager<P> {
    /// Wrap `policy` with `config`.
    pub fn new(policy: P, config: WrapperConfig) -> Self {
        WrappedManager {
            wrapper: BpWrapper::new(policy, config),
        }
    }

    /// The underlying wrapper (counters, config).
    pub fn wrapper(&self) -> &BpWrapper<P> {
        &self.wrapper
    }
}

impl<P: ReplacementPolicy> ReplacementManager for WrappedManager<P> {
    fn name(&self) -> String {
        let c = self.wrapper.config();
        format!(
            "bp-wrapper(batch={}, prefetch={}, S={}, T={})",
            c.batching, c.prefetching, c.queue_size, c.batch_threshold
        )
    }

    fn handle(&self) -> Box<dyn ManagerHandle + '_> {
        Box::new(WrappedHandle {
            handle: self.wrapper.handle(),
        })
    }

    fn invalidate(&self, frame: FrameId) {
        self.wrapper.with_locked(|p| {
            p.remove(frame);
        });
    }

    fn lock_snapshot(&self) -> LockSnapshot {
        self.wrapper.lock_stats().snapshot()
    }

    fn combining_snapshot(&self) -> Option<CombiningSnapshot> {
        Some(self.wrapper.combining_snapshot())
    }

    fn export_state(&self) -> Vec<(FrameId, PageId)> {
        self.wrapper.with_locked(|p| p.resident_pages())
    }

    fn import_state(&self, state: &[(FrameId, PageId)]) {
        self.wrapper.with_locked(|p| {
            for &(frame, page) in state {
                let out = p.record_miss(page, Some(frame), &mut |_| true);
                debug_assert_eq!(out, MissOutcome::AdmittedFree(frame));
            }
        });
    }

    fn take_published(&self) -> Vec<(PageId, FrameId)> {
        self.wrapper
            .drain_published()
            .into_iter()
            .map(|e| (e.page, e.frame))
            .collect()
    }
}

struct WrappedHandle<'m, P: ReplacementPolicy> {
    handle: bpw_core::AccessHandle<'m, P>,
}

impl<'m, P: ReplacementPolicy> ManagerHandle for WrappedHandle<'m, P> {
    fn on_hit(&mut self, page: PageId, frame: FrameId) {
        self.handle.record_hit(page, frame);
    }

    fn on_miss(
        &mut self,
        page: PageId,
        free: Option<FrameId>,
        evictable: &mut dyn FnMut(FrameId) -> bool,
    ) -> MissOutcome {
        self.handle.record_miss(page, free, evictable)
    }

    fn flush(&mut self) {
        self.handle.flush();
    }

    fn take_for_swap(&mut self) -> Vec<(PageId, FrameId)> {
        self.handle.take_for_swap()
    }

    fn absorb(&mut self, entries: &[(PageId, FrameId)]) {
        self.handle.absorb(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpw_replacement::TwoQ;

    #[test]
    fn coarse_manager_locks_per_access() {
        let m = CoarseManager::new(TwoQ::new(4));
        let mut h = m.handle();
        for i in 0..4u64 {
            h.on_miss(i, Some(i as u32), &mut |_| true);
        }
        h.on_hit(0, 0);
        h.on_hit(1, 1);
        drop(h);
        let snap = m.lock_snapshot();
        assert_eq!(snap.acquisitions, 6);
        assert_eq!(snap.accesses_covered, 6);
    }

    #[test]
    fn clock_manager_hits_without_lock() {
        let m = ClockManager::new(4);
        let mut h = m.handle();
        for i in 0..4u64 {
            h.on_miss(i, Some(i as u32), &mut |_| true);
        }
        let before = m.lock_snapshot().acquisitions;
        for _ in 0..100 {
            h.on_hit(0, 0);
        }
        assert_eq!(m.lock_snapshot().acquisitions, before, "hits must not lock");
        let out = h.on_miss(10, None, &mut |_| true);
        assert!(out.victim().is_some());
    }

    #[test]
    fn clock_manager_second_chance() {
        let m = ClockManager::new(3);
        let mut h = m.handle();
        for i in 1..=3u64 {
            h.on_miss(i, Some((i - 1) as u32), &mut |_| true);
        }
        // All ref bits set by admission; this miss clears them, evicts
        // frame 0 and leaves the hand at frame 1.
        let out = h.on_miss(10, None, &mut |_| true);
        assert_eq!(
            out,
            MissOutcome::Evicted {
                frame: 0,
                victim: 1
            }
        );
        // Protect frame 1 (page 2): the next sweep must skip it and take
        // frame 2 (page 3) instead.
        h.on_hit(2, 1);
        let out = h.on_miss(11, None, &mut |_| true);
        assert_eq!(
            out,
            MissOutcome::Evicted {
                frame: 2,
                victim: 3
            }
        );
    }

    #[test]
    fn clock_invalidate_and_refill() {
        let m = ClockManager::new(2);
        let mut h = m.handle();
        h.on_miss(1, Some(0), &mut |_| true);
        m.invalidate(0);
        let out = h.on_miss(2, Some(0), &mut |_| true);
        assert_eq!(out, MissOutcome::AdmittedFree(0));
    }

    #[test]
    fn wrapped_manager_batches() {
        let m = WrappedManager::new(TwoQ::new(8), WrapperConfig::default());
        let mut h = m.handle();
        for i in 0..8u64 {
            h.on_miss(i, Some(i as u32), &mut |_| true);
        }
        let before = m.lock_snapshot().acquisitions;
        for k in 0..16u64 {
            h.on_hit(k % 8, (k % 8) as u32);
        }
        // 16 hits with T=32: still queued, no lock taken.
        assert_eq!(m.lock_snapshot().acquisitions, before);
        h.flush();
        assert!(m.lock_snapshot().acquisitions > before);
        drop(h);
        assert_eq!(m.wrapper().counters().committed.get(), 16);
    }

    #[test]
    fn names_are_informative() {
        assert!(CoarseManager::new(TwoQ::new(2)).name().contains("2Q"));
        assert!(ClockManager::new(2).name().contains("clock"));
        let w = WrappedManager::new(TwoQ::new(2), WrapperConfig::default());
        assert!(w.name().contains("S=64"));
    }
}
