//! Release-profile regression for the unpin-underflow bugfix.
//!
//! The seed guarded `unpin` with `debug_assert!(s.pins > 0)` — which
//! compiles to nothing under `--release`, so a pin/unpin imbalance
//! would have decremented `pins: u32` straight through zero. In the
//! packed-atomic header that wrap would be catastrophic rather than
//! just wrong: the borrow would rip through the valid/dirty/io flag
//! bits and the version field. The checked decrement saturates at zero
//! and reports [`UnpinOutcome::Underflow`] instead, in **every**
//! profile.
//!
//! Run under `--release` in CI (like `release_teardown.rs`): the
//! release half below is exactly the code path debug builds cannot
//! reach (their `debug_assert!` aborts first, which
//! `unpin_underflow_still_panics_in_debug` pins down).

#![cfg(not(feature = "dst"))]

use bpw_bufferpool::BufferDesc;
#[cfg(not(debug_assertions))]
use bpw_bufferpool::UnpinOutcome;

fn valid_desc(tag: u64) -> BufferDesc {
    let d = BufferDesc::new();
    {
        let mut s = d.lock();
        s.tag = tag;
        s.valid = true;
        s.dirty = true;
    }
    d
}

#[cfg(not(debug_assertions))]
#[test]
fn release_unpin_underflow_saturates_and_reports() {
    let d = valid_desc(9);
    assert_eq!(d.unpin(), UnpinOutcome::Underflow, "first extra unpin");
    assert_eq!(d.unpin(), UnpinOutcome::Underflow, "stays saturated");
    let s = d.snapshot();
    assert_eq!(s.pins, 0, "count must saturate at zero, not wrap");
    assert!(s.valid && s.dirty, "flag bits must survive the underflow");
    assert_eq!(s.tag, 9, "tag must survive the underflow");
    // The descriptor is still fully functional afterwards.
    assert!(d.try_pin(9).pinned);
    assert_eq!(d.snapshot().pins, 1);
    assert_eq!(d.unpin(), UnpinOutcome::Released);
    assert_eq!(d.snapshot().pins, 0);
}

#[cfg(not(debug_assertions))]
#[test]
fn release_underflow_under_concurrent_pin_traffic() {
    // The saturating decrement is a CAS loop; make sure a racing
    // legitimate pin/unpin stream never lets an underflow slip a wrap
    // through (the interleaving the single-threaded test can't see).
    let d = valid_desc(3);
    std::thread::scope(|sc| {
        for _ in 0..4 {
            sc.spawn(|| {
                for _ in 0..10_000 {
                    if d.try_pin(3).pinned {
                        // A rogue unpin may steal this pin, making our
                        // own release saturate — both outcomes are
                        // legal; what matters is the count never wraps.
                        let _ = d.unpin();
                    }
                }
            });
        }
        sc.spawn(|| {
            for _ in 0..1_000 {
                // Unmatched unpins racing the balanced traffic.
                let _ = d.unpin();
            }
        });
    });
    let s = d.snapshot();
    assert!(
        s.pins <= 1_000,
        "pin count wrapped or leaked: {} outstanding",
        s.pins
    );
    assert!(
        s.valid && s.dirty,
        "flags corrupted by concurrent underflow"
    );
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "unpin without pin")]
fn unpin_underflow_still_panics_in_debug() {
    let d = valid_desc(1);
    let _ = d.unpin();
}
